"""Multi-source linking: commuting card -> CDR -> card payments.

The paper's introduction lists *several* services that each see a slice
of a person's movement.  This example observes one population with
three services, links them pairwise with global one-to-one assignment,
chains the per-hop links into end-to-end identities, and performs the
three-way trajectory enrichment of Fig. 2 — producing, for each chained
identity, a merged trajectory far richer than any single source.

Run:  python examples/multi_source_enrichment.py
"""

import numpy as np

from repro.config import FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.core.multisource import chain_accuracy, enrich_chain, link_chain
from repro.geo.units import days_to_seconds
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    TowerSnapNoise,
    generate_population,
)


def main() -> None:
    rng = np.random.default_rng(51)
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_agents=20, duration_s=days_to_seconds(8), rng=rng,
        mobility="taxi",
    )

    services = [
        ("transit", ObservationService("transit", 0.6, GaussianNoise(60.0))),
        ("cdr", ObservationService("cdr", 1.0, TowerSnapNoise(city))),
        ("payments", ObservationService("payments", 0.25, GaussianNoise(30.0))),
    ]
    prefixes = ["T", "M", "B"]
    databases = []
    truths: list[dict] = [{}, {}]
    observed = {}
    for prefix, (name, svc) in zip(prefixes, services):
        db = TrajectoryDatabase(name=name)
        for agent in agents:
            traj = svc.observe(agent.path, rng, traj_id=f"{prefix}{agent.agent_id}")
            if len(traj) >= 2:
                db.add(traj)
        observed[prefix] = db
        databases.append(db)
    for agent in agents:
        t, m, b = (f"T{agent.agent_id}", f"M{agent.agent_id}",
                   f"B{agent.agent_id}")
        if t in observed["T"] and m in observed["M"]:
            truths[0][t] = m
        if m in observed["M"] and b in observed["B"]:
            truths[1][m] = b

    for db in databases:
        print(f"{db.name:<10} {len(db):>3} trajectories, "
              f"{db.total_records():>6} records")

    chains = link_chain(databases, FTLConfig(), rng, method="optimal")
    accuracy = chain_accuracy(chains, truths)
    print(f"\nchained {len(chains)} identities across 3 sources "
          f"(end-to-end accuracy {accuracy:.2f})\n")

    for chain in chains[:5]:
        merged = enrich_chain(chain, databases)
        parts = " + ".join(
            f"{len(db[tid])} {db.name}" for tid, db in zip(chain.ids, databases)
        )
        print(f"  {' -> '.join(map(str, chain.ids))}: "
              f"{parts} = {len(merged)} merged records")

    richest = max(
        (enrich_chain(c, databases) for c in chains), key=len
    )
    single_best = max(
        len(databases[0][richest.traj_id[0]]),
        len(databases[1][richest.traj_id[1]]),
        len(databases[2][richest.traj_id[2]]),
    )
    print(f"\nrichest enriched identity: {len(richest)} records vs "
          f"{single_best} in its best single source "
          f"({len(richest) / single_best:.1f}x enrichment)")


if __name__ == "__main__":
    main()
