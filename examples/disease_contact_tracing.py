"""Example 1 from the paper: disease-control contact tracing.

An infected person rode buses before diagnosis.  The health agency
knows the anonymous commuting-card IDs of everyone who shared those
buses and wants real identities.  Commuting-card taps form anonymous
trajectories; CDR pings (identity-registered SIM cards) form eponymous
trajectories.  FTL links the two: for each exposed card ID it returns a
small ranked set of mobile subscribers for manual follow-up.

Run:  python examples/disease_contact_tracing.py
"""

import numpy as np

from repro import FTLConfig, FTLLinker
from repro.geo.units import days_to_seconds
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    TowerSnapNoise,
    generate_population,
    make_paired_databases,
)

#: Fictional subscriber names so the output reads like the paper's Fig. 1.
NAMES = [
    "Alice", "Bob", "Charlie", "David", "Eve", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Ken", "Laura", "Mallory", "Niaj", "Olivia", "Peggy",
    "Quentin", "Rupert", "Sybil", "Trent", "Uma", "Victor", "Wendy",
    "Xavier", "Yolanda", "Zach",
]


def main() -> None:
    rng = np.random.default_rng(11)
    city = CityModel.generate(rng)

    # Commuters with home/work routines observed for two weeks.
    agents = generate_population(
        city, n_agents=26, duration_s=days_to_seconds(14), rng=rng,
        mobility="commuter",
    )

    # Anonymous commuting-card taps: sparse, GPS-accurate (bus stops).
    transit = ObservationService(
        "transit", rate_per_hour=0.35, noise=GaussianNoise(80.0),
        day_fraction=0.95,
    )
    # Eponymous CDR: more frequent, tower-snapped locations.
    cdr = ObservationService(
        "CDR", rate_per_hour=1.0, noise=TowerSnapNoise(city), day_fraction=0.9,
    )
    pair = make_paired_databases(agents, transit, cdr, rng)

    # Rename CDR trajectories with subscriber names (identity-registered).
    subscriber_of = {
        qid: NAMES[i % len(NAMES)] for i, qid in enumerate(pair.q_db.ids())
    }

    linker = FTLLinker(FTLConfig(), phi_r=0.3).fit(pair.p_db, pair.q_db, rng)

    # The investigation: three exposed card IDs from bus manifests.
    exposed_cards = pair.sample_queries(3, rng)
    print("Exposed commuting cards:", ", ".join(f"#{c}" for c in exposed_cards))
    print()

    for card in exposed_cards:
        result = linker.link(pair.p_db[card], method="naive-bayes")
        print(f"card #{card}: {len(result)} candidate subscriber(s)")
        for candidate in result.candidates:
            name = subscriber_of[candidate.candidate_id]
            is_true = candidate.candidate_id == pair.truth[card]
            tag = "  <-- ground truth" if is_true else ""
            print(
                f"    {name:<10} score={candidate.score:.3f} "
                f"(mutual segments: {candidate.n_mutual}, "
                f"incompatible: {candidate.n_incompatible}){tag}"
            )
        if not result.candidates:
            print("    no confident match; investigators must widen the net")
        print()

    hits = sum(
        1
        for card in exposed_cards
        if linker.link(pair.p_db[card]).contains(pair.truth[card])
    )
    print(f"{hits}/{len(exposed_cards)} exposed cards resolved to the right "
          f"subscriber (brute-force follow-up prunes any false positives)")


if __name__ == "__main__":
    main()
