"""Privacy study: which defenses actually stop fuzzy trajectory linking?

The paper's conclusion flags FTL as a privacy threat and leaves the
defense question open.  This example publishes a commuting-card
database under four defense families at increasing strengths and
attacks each with an *adaptive* FTL adversary (one who re-fits the
models on the defended data), reporting linkability against utility
loss.

The headline finding: FTL's evidence lives in the *timing* of mutual
segments, so temporal cloaking collapses linkability quickly, while
spatial cloaking at city-block scale barely helps.

Run:  python examples/privacy_defense_study.py
"""

import numpy as np

from repro.config import FTLConfig
from repro.datasets import build_scenario
from repro.privacy import (
    GaussianPerturbation,
    RecordSuppression,
    SpatialCloaking,
    TemporalCloaking,
    evaluate_defense_sweep,
)
from repro.privacy.evaluation import format_defense_sweep


def main() -> None:
    rng = np.random.default_rng(3)
    pair = build_scenario("SC-mini")
    config = FTLConfig()

    defenses = [
        TemporalCloaking(300.0),        # 5-minute windows
        TemporalCloaking(900.0),        # 15-minute windows
        TemporalCloaking(3600.0),       # 1-hour windows
        SpatialCloaking(500.0),         # city-block generalisation
        SpatialCloaking(4000.0),        # district generalisation
        GaussianPerturbation(500.0),    # geo-indistinguishability noise
        GaussianPerturbation(2000.0),
        RecordSuppression(0.5),         # publish half the records
        RecordSuppression(0.8),         # publish one fifth
    ]

    print("Attacking a published commuting database (SC-mini) with an "
          "adaptive FTL adversary:\n")
    points = evaluate_defense_sweep(
        pair, defenses, config, rng, n_queries=30, phi_r=0.2
    )
    print(format_defense_sweep(points))

    baseline = points[0].linkability
    print(f"\nundefended linkability: {baseline:.2f}")
    effective = [
        p for p in points[1:] if p.linkability <= 0.5 * baseline
    ]
    print("defenses that at least halve linkability:")
    for p in effective:
        cost = (f"{p.spatial_distortion_m:.0f} m spatial"
                if p.spatial_distortion_m
                else f"{p.temporal_distortion_s:.0f} s temporal"
                if p.temporal_distortion_s
                else "record loss only")
        print(f"  - {p.defense}(strength={p.strength:g}): "
              f"linkability {p.linkability:.2f}, utility cost: {cost}")
    print("\ntakeaway: blur *when*, not *where* - FTL's evidence is "
          "temporal compatibility, so coarse timestamps defeat it at "
          "zero spatial utility cost.")


if __name__ == "__main__":
    main()
