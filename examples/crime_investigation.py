"""Example 2 from the paper: identifying a station-violence suspect.

Violence erupted in a train station; the suspect tapped a commuting
card at 12:11 pm.  Station logs narrow the pool to the cards that
entered in that window, but cards are anonymous.  Police match the
candidate card trajectories against CDR data to obtain a ranked list
of identifiable mobile subscribers.

This example exercises the *ranking* machinery (paper Section V):
candidates are ordered by the Eq. 2 score v = p1 * (1 - p2), and the
investigator works down the list.

Run:  python examples/crime_investigation.py
"""

import numpy as np

from repro import FTLConfig
from repro.core.models import CompatibilityModel
from repro.core.ranking import rank_candidates
from repro.geo.units import days_to_seconds, hours_to_seconds
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    TowerSnapNoise,
    generate_population,
    make_paired_databases,
)


def main() -> None:
    rng = np.random.default_rng(23)
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_agents=40, duration_s=days_to_seconds(10), rng=rng,
        mobility="commuter",
    )
    transit = ObservationService(
        "transit", rate_per_hour=0.4, noise=GaussianNoise(60.0), day_fraction=0.95
    )
    cdr = ObservationService(
        "CDR", rate_per_hour=1.2, noise=TowerSnapNoise(city), day_fraction=0.9
    )
    pair = make_paired_databases(agents, transit, cdr, rng)

    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)

    # The incident: day 3, 12:11 pm.  Cards that tapped within the
    # surrounding window are the anonymous suspect pool.
    incident_t = days_to_seconds(3) + hours_to_seconds(12) + 11 * 60
    window = hours_to_seconds(1.0)
    suspect_cards = [
        traj.traj_id
        for traj in pair.p_db
        if np.any(np.abs(traj.ts - incident_t) <= window)
    ]
    print(f"{len(suspect_cards)} cards tapped within +-1 h of the incident")

    # The (hidden) actual offender, for scoring the investigation.
    true_card = suspect_cards[0]
    print(f"(ground truth for this demo: card #{true_card} -> "
          f"subscriber {pair.truth[true_card]})\n")

    # Rank CDR subscribers for each suspect card; an investigator would
    # interview in rank order, so report the rank of the true subscriber.
    for card in suspect_cards[:5]:
        ranked = rank_candidates(pair.p_db[card], pair.q_db, mr, ma)
        true_rank = next(
            (i + 1 for i, c in enumerate(ranked)
             if c.candidate_id == pair.truth.get(card)),
            None,
        )
        top3 = ", ".join(
            f"{c.candidate_id}(v={c.score:.2f})" for c in ranked[:3]
        )
        print(f"card #{card}: top-3 = [{top3}]  "
              f"true subscriber at rank {true_rank}")

    ranks = []
    for card in suspect_cards:
        ranked = rank_candidates(pair.p_db[card], pair.q_db, mr, ma)
        rank = next(
            (i + 1 for i, c in enumerate(ranked)
             if c.candidate_id == pair.truth.get(card)),
            len(ranked),
        )
        ranks.append(rank)
    print(f"\nmedian rank of the true subscriber over "
          f"{len(suspect_cards)} suspect cards: {int(np.median(ranks))} "
          f"(out of {len(pair.q_db)} subscribers)")

    # Accountability: before acting, the investigator inspects *why* the
    # top match was made (per-segment evidence breakdown).
    from repro.core.explain import explain_pair

    top_match = rank_candidates(pair.p_db[true_card], pair.q_db, mr, ma)[0]
    explanation = explain_pair(
        pair.p_db[true_card], pair.q_db[top_match.candidate_id], mr, ma
    )
    print(f"\nevidence for card #{true_card} -> {top_match.candidate_id}:")
    print(explanation.summary(k=4))


if __name__ == "__main__":
    main()
