"""The paper's flagship scenario, modelled faithfully end to end.

Anonymous commuting cards tap **only at bus stops, only when boarding
or alighting** — not Poisson samples of a path — while a telco's CDR
pings the same people at cell-tower granularity throughout the day.
This example builds that world from the ground up (road network ->
transit lines -> timetabled commuters) and shows FTL de-anonymising the
cards against the CDR database, exactly the Fig. 1 situation.

Run:  python examples/transit_card_linkage.py
"""

import numpy as np

from repro.config import FTLConfig
from repro.core.linker import FTLLinker
from repro.geo.units import days_to_seconds
from repro.synth.city import CityModel
from repro.synth.noise import TowerSnapNoise
from repro.synth.observation import ObservationService
from repro.synth.roads import build_road_network, detour_ratio
from repro.synth.transit import build_transit_system, make_transit_scenario


def main() -> None:
    rng = np.random.default_rng(77)

    # --- The city, its streets, and its bus lines ---------------------
    city = CityModel.generate(rng)
    network = build_road_network(city, rng)
    transit = build_transit_system(
        network, rng, n_routes=8, headway_s=600.0, speed_kph=35.0
    )
    print(f"city: {city.bbox.width / 1000:.0f} x "
          f"{city.bbox.height / 1000:.0f} km, "
          f"{network.n_nodes} intersections "
          f"(detour ratio {detour_ratio(network, rng, 30):.2f})")
    print(f"transit: {len(transit)} routes, "
          f"{sum(r.n_stops for r in transit.routes)} stops, "
          f"10-minute headways\n")

    # --- Thirty commuters observed by both systems --------------------
    cdr = ObservationService(
        "CDR", rate_per_hour=1.1, noise=TowerSnapNoise(city), day_fraction=0.9
    )
    pair = make_transit_scenario(
        city, transit, n_agents=30, duration_s=days_to_seconds(14),
        rng=rng, cdr_service=cdr,
    )
    print(f"card database: {len(pair.p_db)} cards, "
          f"{pair.p_db.total_records()} taps "
          f"({pair.p_db.total_records() / len(pair.p_db) / 14:.1f} taps/day)")
    print(f"CDR database:  {len(pair.q_db)} subscribers, "
          f"{pair.q_db.total_records()} tower pings\n")

    # --- De-anonymisation ---------------------------------------------
    linker = FTLLinker(FTLConfig(), phi_r=0.2).fit(pair.p_db, pair.q_db, rng)
    hits = 0
    total_candidates = 0
    query_ids = pair.sample_queries(min(20, len(pair.truth)), rng)
    for card in query_ids:
        result = linker.link(pair.p_db[card])
        total_candidates += len(result)
        found = result.contains(pair.truth[card])
        hits += found
        top = result.candidates[0].candidate_id if result.candidates else "-"
        print(f"  card {card:<8} -> top candidate {top:<8} "
              f"({len(result)} returned){'  <- correct' if found else ''}")

    print(f"\nperceptiveness: {hits / len(query_ids):.2f}  "
          f"mean candidates/card: {total_candidates / len(query_ids):.1f}")
    print("taps alone (4 events/day at bus stops) suffice to re-identify "
          "cardholders against CDR data - the paper's central privacy point.")


if __name__ == "__main__":
    main()
