"""Section VI theory, validated against simulation.

Prints the exact mutual-segment count pmf fX, the paper's Poisson
approximation, and Monte-Carlo estimates for both Fig. 4 settings, then
verifies Corollary 6.2 (mutual segment lengths ~ Exponential(lam_p +
lam_q)) and the E(X) bound of Corollary 6.1.

Run:  python examples/theory_validation.py
"""

import numpy as np

from repro.stats.theory import (
    expected_mutual_segments,
    expected_mutual_segments_approx,
    mutual_segment_count_pmf,
    mutual_segment_count_pmf_poisson,
    mutual_segment_length_pdf,
    simulate_mutual_segment_counts,
    simulate_mutual_segment_lengths,
)


def show_panel(lam_p: float, lam_q: float, max_x: int, rng) -> None:
    print(f"\n=== lam_p = {lam_p}, lam_q = {lam_q} ===")
    exact = expected_mutual_segments(lam_p, lam_q)
    approx = expected_mutual_segments_approx(lam_p, lam_q)
    print(f"E(X) = {exact:.4f}   E^(X) = {approx:.4f}   "
          f"bound 2*min = {2 * min(lam_p, lam_q):.1f}")
    assert approx <= 2 * min(lam_p, lam_q) + 1e-12  # Corollary 6.1

    fx = mutual_segment_count_pmf(lam_p, lam_q, max_x)
    fhat = mutual_segment_count_pmf_poisson(lam_p, lam_q, max_x)
    sim = simulate_mutual_segment_counts(lam_p, lam_q, 50_000, rng)
    print(f"{'x':>3} {'fX(x)':>9} {'Pois(E^)':>9} {'Monte-Carlo':>12}")
    for x in range(max_x + 1):
        print(f"{x:>3} {fx[x]:>9.5f} {fhat[x]:>9.5f} "
              f"{(sim == x).mean():>12.5f}")


def show_lengths(lam_p: float, lam_q: float, rng) -> None:
    print(f"\n=== Corollary 6.2: segment lengths, lam_p={lam_p}, "
          f"lam_q={lam_q} ===")
    lengths = simulate_mutual_segment_lengths(lam_p, lam_q, 30_000.0, rng)
    theory_mean = 1.0 / (lam_p + lam_q)
    print(f"theoretical mean = {theory_mean:.4f}, "
          f"observed mean = {lengths.mean():.4f} "
          f"over {lengths.size} mutual segments")
    edges = np.linspace(0, 4 * theory_mean, 7)
    centres = (edges[:-1] + edges[1:]) / 2
    hist, _ = np.histogram(lengths, bins=edges, density=True)
    pdf = mutual_segment_length_pdf(lam_p, lam_q, centres)
    print(f"{'y':>7} {'gY(y)':>9} {'observed':>9}")
    for y, g, h in zip(centres, pdf, hist):
        print(f"{y:>7.3f} {g:>9.4f} {h:>9.4f}")


def main() -> None:
    rng = np.random.default_rng(0)
    show_panel(0.5, 2.0, 6, rng)    # Fig. 4(a)
    show_panel(4.0, 10.0, 14, rng)  # Fig. 4(b)
    show_lengths(0.5, 2.0, rng)
    print("\nall theoretical predictions confirmed by simulation")


if __name__ == "__main__":
    main()
