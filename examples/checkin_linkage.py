"""Linking check-in-style data loaded from CSV, with persistent models.

Demonstrates the data-engineering path a real deployment would take:

1. generate a check-in-like scenario and export both databases to CSV
   (the format any public check-in corpus can be converted to);
2. load the CSVs back, archive them in a SQLite store;
3. fit the FTL models once and cache them as JSON;
4. reload everything and run linking from the cached artifacts.

Run:  python examples/checkin_linkage.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import FTLConfig, FTLLinker
from repro.geo.units import days_to_seconds
from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.io.jsonl_io import load_model_json, save_model_json
from repro.io.sqlite_store import SQLiteTrajectoryStore
from repro.core.models import CompatibilityModel
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    generate_population,
    make_paired_databases,
)


def main() -> None:
    rng = np.random.default_rng(31)
    workdir = Path(tempfile.mkdtemp(prefix="ftl-checkin-"))
    print(f"working directory: {workdir}")

    # --- 1. Generate and export -------------------------------------
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_agents=35, duration_s=days_to_seconds(21), rng=rng,
        mobility="commuter",
    )
    # Check-ins are rare, deliberate, daytime events with good GPS.
    checkins = ObservationService(
        "checkins", rate_per_hour=0.12, noise=GaussianNoise(25.0),
        day_fraction=0.98,
    )
    # A ride-hailing service logs pickups more often.
    rides = ObservationService(
        "rides", rate_per_hour=0.5, noise=GaussianNoise(40.0), day_fraction=0.95
    )
    pair = make_paired_databases(agents, checkins, rides, rng)
    write_trajectories_csv(pair.p_db, workdir / "checkins.csv")
    write_trajectories_csv(pair.q_db, workdir / "rides.csv")
    print(f"exported {pair.p_db.total_records()} check-ins and "
          f"{pair.q_db.total_records()} ride records")

    # --- 2. Load + archive ------------------------------------------
    p_db = read_trajectories_csv(workdir / "checkins.csv", name="checkins")
    q_db = read_trajectories_csv(workdir / "rides.csv", name="rides")
    with SQLiteTrajectoryStore(workdir / "archive.db") as store:
        store.save(p_db, "checkins")
        store.save(q_db, "rides")
        print(f"archived {store.count_points('checkins')} + "
              f"{store.count_points('rides')} points in SQLite")

    # --- 3. Fit once, cache the models ------------------------------
    config = FTLConfig(vmax_kph=140.0)  # the loose city-wide cap
    mr = CompatibilityModel.fit_rejection([p_db, q_db], config)
    ma = CompatibilityModel.fit_acceptance([p_db, q_db], config, rng)
    save_model_json(mr, workdir / "rejection_model.json")
    save_model_json(ma, workdir / "acceptance_model.json")
    print("fitted and cached the rejection/acceptance models")

    # --- 4. Cold start from the cached artifacts ---------------------
    with SQLiteTrajectoryStore(workdir / "archive.db") as store:
        p_db = store.load("checkins")
        q_db = store.load("rides")
    linker = FTLLinker(config, phi_r=0.25).with_models(
        load_model_json(workdir / "rejection_model.json"),
        load_model_json(workdir / "acceptance_model.json"),
        q_db,
    )

    hits = 0
    query_ids = [str(qid) for qid in pair.sample_queries(12, rng)]
    for pid in query_ids:
        result = linker.link(p_db[pid])
        found = result.contains(str(pair.truth[pid]))
        hits += found
        print(f"  {pid}: {len(result)} candidates "
              f"{'(true match found)' if found else '(missed)'}")
    print(f"\nlinked {hits}/{len(query_ids)} check-in users to their "
          f"ride-hailing accounts")


if __name__ == "__main__":
    main()
