"""Streaming FTL: watch the evidence converge as records arrive.

A live-investigation twist on the paper's Example 2: the police hold
one anonymous commuting-card trajectory (the query) and subscribe to a
live feed of CDR pings for a handful of suspects.  A
:class:`~repro.core.streaming.StreamingLinker` updates each suspect's
posterior with every arriving record — O(log n) per record instead of
re-aligning from scratch — and the example prints the log-posterior
trajectory of the true suspect vs the best decoy day by day.

Run:  python examples/streaming_investigation.py
"""

import numpy as np

from repro.config import FTLConfig
from repro.core.models import CompatibilityModel
from repro.core.streaming import StreamingLinker
from repro.geo.units import SECONDS_PER_DAY, days_to_seconds
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    TowerSnapNoise,
    generate_population,
    make_paired_databases,
)


def main() -> None:
    rng = np.random.default_rng(17)
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_agents=20, duration_s=days_to_seconds(10), rng=rng,
        mobility="taxi",
    )
    transit = ObservationService("transit", 0.5, GaussianNoise(60.0))
    cdr = ObservationService("CDR", 1.0, TowerSnapNoise(city))
    pair = make_paired_databases(agents, transit, cdr, rng)

    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)

    # The case: one card under investigation, five suspect subscribers.
    card_id = next(iter(pair.truth))
    true_subscriber = pair.truth[card_id]
    suspects = [true_subscriber] + [
        qid for qid in pair.q_db.ids() if qid != true_subscriber
    ][:4]
    print(f"card under investigation: {card_id}")
    print(f"suspect subscribers: {suspects} "
          f"(ground truth: {true_subscriber})\n")

    linker = StreamingLinker(mr, ma, phi_r=0.1)
    for suspect in suspects:
        linker.add_candidate(suspect)

    # Merge all feeds into one time-ordered event stream.
    events = [(r.t, "query", None, r) for r in pair.p_db[card_id]]
    for suspect in suspects:
        events += [(r.t, "cand", suspect, r) for r in pair.q_db[suspect]]
    events.sort(key=lambda e: e[0])

    print(f"{'day':>4} {'events':>7} {'true LPR':>9} {'best decoy LPR':>15} "
          f"{'matches':>8}")
    day_mark = SECONDS_PER_DAY
    seen = 0
    for t, kind, suspect, record in events:
        if kind == "query":
            linker.observe_query(record)
        else:
            linker.observe_candidate(suspect, record)
        seen += 1
        if t >= day_mark:
            decisions = {d.candidate_id: d for d in linker.decisions()}
            true_lpr = decisions[true_subscriber].log_posterior_ratio
            decoy_lpr = max(
                d.log_posterior_ratio
                for cid, d in decisions.items()
                if cid != true_subscriber
            )
            n_matches = len(linker.matches())
            print(f"{day_mark / SECONDS_PER_DAY:>4.0f} {seen:>7} "
                  f"{true_lpr:>9.1f} {decoy_lpr:>15.1f} {n_matches:>8}")
            day_mark += SECONDS_PER_DAY

    final = linker.matches()
    print(f"\nfinal positives: {[d.candidate_id for d in final]}")
    verdict = (
        "correct - the evidence singled out the true subscriber"
        if [d.candidate_id for d in final] == [true_subscriber]
        else "inconclusive - investigators must gather more data"
    )
    print(verdict)


if __name__ == "__main__":
    main()
