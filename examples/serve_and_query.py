"""Serve a sharded linking daemon and query it concurrently over HTTP.

Builds a small two-service scenario, fits the FTL models, starts the
JSON-over-HTTP linking daemon on an ephemeral port with **two shard
worker processes** (the pool is partitioned by home cell and every
``/v1/link`` is a scatter-gather; ``workers=1`` would serve the same
bytes in-process), then fires a burst of concurrent queries at it from
worker threads — exactly how a deployment would call the service.
Each response is decoded back into a
:class:`~repro.core.engine.LinkResult` and the top-ranked candidates
are printed with the ground truth marked.

The client speaks the versioned v1 wire API (docs/api-v1.md): JSON
responses arrive in an envelope carrying ``api_version``,
``shard_count`` and per-shard scatter provenance next to the ``data``
payload; ``ServiceClient`` unwraps it.  Sharded or not, the responses
are bit-identical to calling the engine in-process; the daemon adds
batching, sharding, backpressure and metrics, not approximation.

Run:  python examples/serve_and_query.py
"""

import threading

import numpy as np

from repro.config import FTLConfig
from repro.core.engine import LinkEngine, LinkOptions
from repro.core.models import CompatibilityModel
from repro.geo.units import days_to_seconds
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, ServerConfig
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    generate_population,
    make_paired_databases,
)


def main() -> None:
    rng = np.random.default_rng(11)

    # 1. A scenario: two services observing the same 30 taxis for 3 days.
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_agents=30, duration_s=days_to_seconds(3), rng=rng,
        mobility="taxi",
    )
    service_p = ObservationService("P", rate_per_hour=0.8, noise=GaussianNoise(50.0))
    service_q = ObservationService("Q", rate_per_hour=0.4, noise=GaussianNoise(50.0))
    pair = make_paired_databases(agents, service_p, service_q, rng)

    # 2. Fit the models and build the serving engine.
    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    options = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0,
                          top_k=3)
    engine = LinkEngine(mr, ma, options=options)
    pool = list(pair.q_db)

    # 3. Serve the Q database across two forked shard workers; port=0
    #    binds an ephemeral port.
    server_config = ServerConfig(port=0, max_batch_size=16, max_wait_ms=2.0,
                                 workers=2)
    query_ids = pair.sample_queries(8, rng)
    results: dict[object, object] = {}
    lock = threading.Lock()

    with BackgroundServer(engine, pool, options=options,
                          config=server_config) as background:
        host, port = background.address
        print(f"daemon listening on http://{host}:{port} "
              f"(pool={len(pool)} candidates)\n")

        # 4. Concurrent clients, one thread each (ServiceClient is
        #    cheap but not thread-safe — one instance per thread).
        def query_worker(pid: object) -> None:
            with ServiceClient(host, port) as client:
                result = client.link(pair.p_db[pid])
            with lock:
                results[pid] = result

        threads = [
            threading.Thread(target=query_worker, args=(pid,))
            for pid in query_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # 5. Report: top-k candidates per query, ground truth starred.
        hits = 0
        for pid in query_ids:
            result = results[pid]
            truth = pair.truth[pid]
            ranked = [
                f"{c.candidate_id}{'*' if c.candidate_id == truth else ''}"
                f" (v={c.score:.3f})"
                for c in result.candidates
            ]
            hits += any(c.candidate_id == truth for c in result.candidates)
            print(f"query {pid}: true={truth} -> {ranked or '(no match)'}")
        print(f"\ntruth in top-{options.top_k}: {hits}/{len(query_ids)} queries")

        # 6. The v1 envelope exposes the scatter: which shard scanned
        #    how many candidates, and the worker fleet's health.
        from repro.service.protocol import trajectory_to_wire

        with ServiceClient(host, port) as client:
            envelope = client.link_raw(
                {"query": trajectory_to_wire(pair.p_db[query_ids[0]])}
            )
            health = client.healthz()
            metrics = client.metrics()
        scatter = ", ".join(
            f"shard {s['shard']}: {s['n_candidates']} candidates "
            f"in {s['elapsed_ms']:.1f}ms"
            for s in envelope["shards"]
        )
        print(f"\nscatter across {envelope['shard_count']} shards -> {scatter}")
        for worker in health["workers"]:
            print(f"worker {worker['shard']}: pid={worker['pid']} "
                  f"alive={worker['alive']} pool={worker['pool_size']}")
        counters = metrics["counters"]
        print(f"served {counters.get('link_requests_total', 0)} /v1/link "
              f"requests in {counters.get('batches_total', 0)} batches")
    print("daemon drained; bye")


if __name__ == "__main__":
    main()
