"""Feasibility planning: how much data does an investigation need?

Section VI closes with: the analysis "is useful in evaluating the
feasibility of FTL when real values for lam_p and lam_q are known."
This example plays a data-sharing negotiation: an agency knows the
access rates of several candidate service pairs and wants to know —
*before* requesting any data — which pairs can support linking, and how
many days of records to ask for.

Models are fitted once on a reference scenario (they capture city
geometry and sensor noise, not the rates), then
:func:`repro.stats.feasibility.assess_feasibility` projects each
service pair's evidence accumulation.  A quick empirical spot-check
confirms the prediction's ordering.

Run:  python examples/feasibility_planning.py
"""

import numpy as np

from repro.config import FTLConfig
from repro.core.linker import FTLLinker
from repro.datasets import build_scenario
from repro.pipeline.experiment import fit_model_pair
from repro.stats.feasibility import assess_feasibility
from repro.geo.units import days_to_seconds
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    generate_population,
    make_paired_databases,
)

#: Candidate service pairs: (label, query-rate/h, candidate-rate/h).
SERVICE_PAIRS = [
    ("transit x CDR", 0.4, 1.2),
    ("check-ins x CDR", 0.1, 1.2),
    ("transit x card payments", 0.4, 0.25),
    ("check-ins x card payments", 0.1, 0.25),
]


def main() -> None:
    rng = np.random.default_rng(61)
    config = FTLConfig()

    # Reference models: fitted on a seeded catalog scenario.
    reference = build_scenario("SB-mini")
    mr, ma = fit_model_pair(reference, config, rng)

    print("Predicted data requirements (target: decisive evidence, "
          "posterior odds x1000):\n")
    reports = {}
    for label, lam_p, lam_q in SERVICE_PAIRS:
        report = assess_feasibility(lam_p, lam_q, mr, ma)
        reports[label] = report
        print(f"  {label:<28} {report.summary()}")

    # Empirical spot-check: simulate the best and worst pair for 7 days
    # and compare realised perceptiveness.
    ordered = sorted(reports, key=lambda k: reports[k].days_to_decisive)
    best, worst = ordered[0], ordered[-1]
    print(f"\nspot check over 7 simulated days: "
          f"'{best}' (predicted easiest) vs '{worst}' (predicted hardest)")

    outcomes = {}
    for label in (best, worst):
        lam_p, lam_q = next(
            (p, q) for lab, p, q in SERVICE_PAIRS if lab == label
        )
        local = np.random.default_rng(62)
        city = CityModel.generate(local)
        agents = generate_population(city, 40, days_to_seconds(7), local)
        pair = make_paired_databases(
            agents,
            ObservationService("P", lam_p, GaussianNoise(60.0)),
            ObservationService("Q", lam_q, GaussianNoise(60.0)),
            local,
        )
        linker = FTLLinker(config, phi_r=0.1).fit(pair.p_db, pair.q_db, local)
        qids = pair.sample_queries(min(20, len(pair.truth)), local)
        hits = sum(
            1
            for pid in qids
            if linker.link(pair.p_db[pid]).contains(pair.truth[pid])
        )
        outcomes[label] = hits / len(qids)
        print(f"  {label:<28} realised perceptiveness {outcomes[label]:.2f}")

    agrees = outcomes[best] >= outcomes[worst]
    print(f"\nprediction {'confirmed' if agrees else 'NOT confirmed'}: "
          f"the pair with fewer predicted days-to-decisive linked "
          f"{'at least as' if agrees else 'less'} well.")


if __name__ == "__main__":
    main()
