"""Quickstart: link trajectories across two simulated services.

Builds a small city, simulates 40 taxis observed by two independent
services (a frequent GPS "log" service and a sparse "trip" service),
fits the FTL models, and links a handful of queries — printing the
ranked candidates and the resulting perceptiveness/selectiveness.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FTLConfig, FTLLinker
from repro.core.metrics import perceptiveness, selectiveness
from repro.geo.units import days_to_seconds
from repro.synth import (
    CityModel,
    GaussianNoise,
    ObservationService,
    generate_population,
    make_paired_databases,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A city and a population of taxi-style agents over one week.
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_agents=40, duration_s=days_to_seconds(7), rng=rng, mobility="taxi"
    )

    # 2. Two services observe the same agents independently at Poisson
    #    random instants (they essentially never coincide), each with
    #    its own GPS noise.
    log_service = ObservationService("log", rate_per_hour=0.8, noise=GaussianNoise(60.0))
    trip_service = ObservationService("trip", rate_per_hour=0.35, noise=GaussianNoise(60.0))
    pair = make_paired_databases(agents, log_service, trip_service, rng)
    print(f"P database: {len(pair.p_db)} trajectories, "
          f"{pair.p_db.total_records()} records")
    print(f"Q database: {len(pair.q_db)} trajectories, "
          f"{pair.q_db.total_records()} records")

    # 3. Fit the rejection/acceptance models and link.
    config = FTLConfig(vmax_kph=120.0, time_unit_s=60.0)
    linker = FTLLinker(config, phi_r=0.05).fit(pair.p_db, pair.q_db, rng)

    results = {}
    query_ids = pair.sample_queries(10, rng)
    for pid in query_ids:
        link = linker.link(pair.p_db[pid], method="naive-bayes")
        results[pid] = link.candidate_ids()
        marks = [
            f"{c.candidate_id}{'*' if c.candidate_id == pair.truth[pid] else ''}"
            f" (v={c.score:.3f})"
            for c in link.candidates
        ]
        print(f"query {pid}: true={pair.truth[pid]} -> {marks or '(no match)'}")

    # 4. The paper's two metrics.
    print(f"\nperceptiveness = {perceptiveness(results, pair.truth):.2f}")
    print(f"selectiveness  = {selectiveness(results, len(pair.q_db)):.4f}")

    # 5. Trajectory enrichment (Fig. 2): merge a linked pair.
    pid = query_ids[0]
    link = linker.link(pair.p_db[pid])
    if link.candidates:
        merged = linker.enrich(pair.p_db[pid], link.candidates[0].candidate_id)
        print(f"\nenriched trajectory {merged.traj_id}: {len(merged)} records "
              f"spanning {merged.duration / 86400:.1f} days")


if __name__ == "__main__":
    main()
