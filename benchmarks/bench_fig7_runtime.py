"""Fig. 7: per-query runtime of both algorithms across all configs.

Reproduces the paper's finding that Naive-Bayes-matching answers
queries much faster than (alpha1, alpha2)-filtering (which evaluates
two Poisson-Binomial tails per candidate), and that runtime grows with
trajectory duration and update frequency.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    cached_scenario,
    is_full_scale,
    print_header,
    scale_name,
)
from repro.pipeline.runtime_eval import format_runtime, run_runtime_eval

GROUPS = [
    ("Fig. 7(a): S-data", ["SA", "SB", "SC", "SD", "SE", "SF"]),
    ("Fig. 7(b): T-data", ["TA", "TB", "TC", "TD", "TE", "TF"]),
]


@pytest.mark.parametrize("title,names", GROUPS)
def test_fig7_runtime(benchmark, config, title, names):
    n_queries = 200 if is_full_scale() else 15
    results = []

    def run_all():
        collected = []
        for name in names:
            scaled = scale_name(name)
            pair = cached_scenario(scaled)
            rng = np.random.default_rng(7)
            collected.append(
                run_runtime_eval(
                    pair, config, rng, n_queries=n_queries, dataset=scaled
                )
            )
        return collected

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header(title)
    print(format_runtime(results))

    # Paper claim: NB is faster than alpha-filtering on every config.
    for result in results:
        assert result.naive_bayes_s < result.alpha_filter_s, result
