"""Engine bench: profile-once batch linking vs the seed per-candidate loop.

The seed ``FTLLinker.link()`` computed every ``(query, candidate)``
mutual-segment profile twice — once inside the decision rule's
``decide()`` and again when re-scoring the matched set — and paid the
Poisson-Binomial tails twice for every matched candidate.
``_seed_link_loop`` below reproduces that exact per-candidate code path
as the baseline; :class:`~repro.core.engine.LinkEngine` is the batch
replacement.  Results are asserted bit-identical before any timing is
reported.

Two workloads are timed:

* **ranking** — alpha-filter with ``alpha1=0, alpha2=1`` (every
  candidate is scored and ranked, the exhaustive-retrieval setting
  where the seed's double computation bites hardest);
* **naive-bayes** — the default matcher, where only the matched few are
  re-scored by the seed.

A second bench, :func:`run_profile_kernel_benchmark`, isolates the
mutual-segment profile stage and times each kernel backend (pure-python
per-pair reference, the batched NumPy kernel, and numba when the
container has it) over the same pool, asserting token-identical profile
output and identical ``link_batch`` rankings before reporting.

Timings are written to ``BENCH_engine.json`` (each bench merges its own
section, so running one never clobbers the other).  Run standalone
(``python -m benchmarks.bench_engine_batch``) or through pytest; the
tier-1 suite exercises a tiny smoke configuration on every run.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.config import FTLConfig
from repro.core.alignment import (
    FlatPool,
    batch_mutual_segment_profiles,
    mutual_segment_profile,
)
from repro.core.engine import Candidate, LinkEngine, LinkOptions, LinkResult
from repro.core.filtering import AlphaFilter
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.geo.units import days_to_seconds
from repro.kernels import numba_available
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import make_paired_databases

DEFAULT_OUT = "BENCH_engine.json"


def _merge_into(out_path: str | Path, updates: dict) -> None:
    """Merge ``updates`` into the JSON report at ``out_path``.

    Top-level merge so the engine bench and the kernel bench can each
    refresh their own section without erasing the other's numbers.
    """
    path = Path(out_path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(updates)
    path.write_text(json.dumps(data, indent=2) + "\n")


def _seed_link_loop(query, pool, mr, ma, options: LinkOptions) -> LinkResult:
    """The seed per-candidate path: decide per pair, then re-score matches."""
    config = mr.config
    if options.method == "alpha-filter":
        matcher = AlphaFilter(mr, ma, options.alpha1, options.alpha2)
        matched = [c for c in pool if matcher.decide(query, c).accepted]
    else:
        matcher = NaiveBayesMatcher(mr, ma, options.phi_r)
        matched = [c for c in pool if matcher.decide(query, c).same_person]
    scored = []
    for candidate in matched:
        profile = mutual_segment_profile(query, candidate, config)
        within = profile.within_horizon(mr.n_buckets)
        p1 = rejection_pvalue(profile, mr)
        p2 = acceptance_pvalue(profile, ma)
        scored.append(
            Candidate(
                candidate_id=candidate.traj_id,
                score=p1 * (1.0 - p2),
                p_rejection=p1,
                p_acceptance=p2,
                n_mutual=within.n_total,
                n_incompatible=within.n_incompatible,
            )
        )
    scored.sort(key=lambda c: -c.score)
    return LinkResult(query.traj_id, options.method, tuple(scored))


def _build_pair(n_candidates: int, rng: np.random.Generator):
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_candidates, days_to_seconds(3), rng, mobility="taxi"
    )
    service_p = ObservationService("P", rate_per_hour=0.8, noise=GaussianNoise(50.0))
    service_q = ObservationService("Q", rate_per_hour=0.4, noise=GaussianNoise(50.0))
    return make_paired_databases(agents, service_p, service_q, rng)


def run_engine_benchmark(
    n_candidates: int = 200,
    n_queries: int = 10,
    seed: int = 7,
    repeats: int = 3,
    out_path: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Time seed loop vs batch engine on both workloads; verify bit-identity.

    Each side is timed ``repeats`` times and the minimum is reported
    (min-of-N discards OS scheduling noise, which dominates on small
    shared machines).  The engine is rebuilt per repeat so the profile
    cache and tail memo start cold every time.

    Returns (and optionally writes as JSON) a dict with per-workload
    seconds, speedups, and the profile-cache counters proving the
    engine computed each pair's profile exactly once.
    """
    rng = np.random.default_rng(seed)
    pair = _build_pair(n_candidates, rng)
    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    qids = pair.sample_queries(min(n_queries, len(pair.truth)), rng)
    queries = [pair.p_db[qid] for qid in qids]
    pool = list(pair.q_db)

    workloads = {
        "ranking": LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0),
        "naive-bayes": LinkOptions(method="naive-bayes", phi_r=0.05),
    }
    report: dict = {
        "n_candidates": len(pool),
        "n_queries": len(queries),
        "seed": seed,
        "repeats": repeats,
        "workloads": {},
    }
    for name, options in workloads.items():
        seed_s = math.inf
        expected = None
        for _ in range(repeats):
            start = time.perf_counter()
            got = [_seed_link_loop(q, pool, mr, ma, options) for q in queries]
            seed_s = min(seed_s, time.perf_counter() - start)
            expected = got

        engine_s = math.inf
        stats = None
        for _ in range(repeats):
            engine = LinkEngine(mr, ma, options=options)
            start = time.perf_counter()
            got = engine.link_batch(queries, pool)
            engine_s = min(engine_s, time.perf_counter() - start)
            stats = engine.cache.stats
            for a, b in zip(got, expected):
                assert a == b, f"engine diverged from seed path on {name}"

        assert stats.n_computed == len(queries) * len(pool), (
            "engine must compute each (query, candidate) profile exactly once"
        )
        report["workloads"][name] = {
            "seed_per_candidate_s": seed_s,
            "engine_batch_s": engine_s,
            "speedup": seed_s / engine_s if engine_s > 0 else float("inf"),
            "profiles_computed": stats.n_computed,
            "profile_cache_hits": stats.hits,
        }

    if out_path is not None:
        _merge_into(out_path, report)
    return report


def run_profile_kernel_benchmark(
    n_candidates: int = 200,
    n_queries: int = 20,
    seed: int = 7,
    repeats: int = 5,
    out_path: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Time the mutual-segment profile stage under each kernel backend.

    The timed region mirrors exactly what ``LinkEngine.link_batch``
    does per batch and backend: flatten the candidate pool once, then
    compute every query's profiles against the full pool through
    :func:`repro.core.alignment.batch_mutual_segment_profiles` (one
    kernel invocation per query on the batched backends, one call per
    pair on the ``python`` reference).  Before any timing is reported,
    every backend's profiles are checked token-identical against the
    pure-python per-pair reference, and a full ``link_batch`` run per
    backend is checked to produce identical rankings.

    Results land in ``BENCH_engine.json`` under ``"profile_kernel"``.
    """
    rng = np.random.default_rng(seed)
    pair = _build_pair(n_candidates, rng)
    config = FTLConfig()
    qids = pair.sample_queries(min(n_queries, len(pair.truth)), rng)
    queries = [pair.p_db[qid] for qid in qids]
    pool = list(pair.q_db)

    backends = ["python", "numpy"] + (["numba"] if numba_available() else [])

    # Correctness gate 1: token-identical profiles versus the reference.
    reference = {
        q.traj_id: batch_mutual_segment_profiles(q, pool, config, backend="python")
        for q in queries
    }
    for backend in backends[1:]:
        flat = FlatPool(pool)
        for q in queries:
            got = batch_mutual_segment_profiles(
                q, pool, config, backend=backend, flat=flat
            )
            for have, want in zip(got, reference[q.traj_id]):
                assert np.array_equal(have.buckets, want.buckets), (
                    f"{backend} bucket mismatch vs python for query {q.traj_id}"
                )
                assert np.array_equal(have.incompatible, want.incompatible), (
                    f"{backend} flag mismatch vs python for query {q.traj_id}"
                )

    # Correctness gate 2: identical end-to-end rankings per backend.
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    rank_options = {
        backend: LinkOptions(
            method="alpha-filter", alpha1=0.0, alpha2=1.0, kernel_backend=backend
        )
        for backend in backends
    }
    rankings = {
        backend: LinkEngine(mr, ma, options=options).link_batch(queries, pool)
        for backend, options in rank_options.items()
    }
    for backend in backends[1:]:
        assert rankings[backend] == rankings["python"], (
            f"link_batch ranking diverged between {backend} and python"
        )

    # Timing: min-of-N with the pool flattened inside the timed region,
    # once per repeat, exactly as the engine amortises it per batch.
    # Backends are interleaved within each repeat so machine-load drift
    # hits all of them alike.
    results: dict = {backend: {"profile_stage_s": math.inf} for backend in backends}
    for _ in range(repeats):
        for backend in backends:
            start = time.perf_counter()
            if backend == "python":
                for q in queries:
                    batch_mutual_segment_profiles(q, pool, config, backend=backend)
            else:
                flat = FlatPool(pool)
                for q in queries:
                    batch_mutual_segment_profiles(
                        q, pool, config, backend=backend, flat=flat
                    )
            elapsed = time.perf_counter() - start
            row = results[backend]
            row["profile_stage_s"] = min(row["profile_stage_s"], elapsed)
    for backend in backends:
        row = results[backend]
        row["per_query_ms"] = row["profile_stage_s"] / len(queries) * 1e3
    for backend in backends:
        results[backend]["speedup_vs_python"] = (
            results["python"]["profile_stage_s"]
            / results[backend]["profile_stage_s"]
        )

    section = {
        "n_candidates": len(pool),
        "n_queries": len(queries),
        "seed": seed,
        "repeats": repeats,
        "numba_available": numba_available(),
        "rankings_identical": True,
        "backends": results,
    }
    if out_path is not None:
        _merge_into(out_path, {"profile_kernel": section})
    return section


def _print_report(report: dict) -> None:
    print(
        f"engine batch vs seed loop — {report['n_queries']} queries x "
        f"{report['n_candidates']} candidates "
        f"(min of {report['repeats']} repeats)"
    )
    print(f"{'workload':<14} {'seed (s)':>10} {'engine (s)':>11} {'speedup':>9}")
    for name, row in report["workloads"].items():
        print(
            f"{name:<14} {row['seed_per_candidate_s']:>10.3f} "
            f"{row['engine_batch_s']:>11.3f} {row['speedup']:>8.2f}x"
        )


def _print_kernel_report(section: dict) -> None:
    print(
        f"profile kernel backends — {section['n_queries']} queries x "
        f"{section['n_candidates']} candidates "
        f"(min of {section['repeats']} repeats)"
    )
    print(f"{'backend':<10} {'stage (ms)':>11} {'per query (ms)':>15} {'speedup':>9}")
    for backend, row in section["backends"].items():
        print(
            f"{backend:<10} {row['profile_stage_s'] * 1e3:>11.2f} "
            f"{row['per_query_ms']:>15.3f} {row['speedup_vs_python']:>8.2f}x"
        )


def test_engine_batch_speedup(benchmark):
    """Full-size bench: >= 2x on the ranking workload at 200 candidates."""
    report = benchmark.pedantic(
        run_engine_benchmark,
        kwargs={"n_candidates": 200, "n_queries": 10, "repeats": 5},
        rounds=1,
        iterations=1,
    )
    _print_report(report)
    assert report["workloads"]["ranking"]["speedup"] >= 2.0
    # The NB workload re-scores only matched candidates, so the gain is
    # smaller; it must still never be slower than the seed loop.
    assert report["workloads"]["naive-bayes"]["speedup"] >= 1.0


def test_profile_kernel_speedup(benchmark):
    """The batched NumPy kernel must beat pure python >= 10x at 200 cands."""
    section = benchmark.pedantic(
        run_profile_kernel_benchmark,
        kwargs={"n_candidates": 200, "n_queries": 20, "repeats": 5},
        rounds=1,
        iterations=1,
    )
    _print_kernel_report(section)
    assert section["rankings_identical"]
    assert section["backends"]["numpy"]["speedup_vs_python"] >= 10.0


if __name__ == "__main__":
    _print_report(run_engine_benchmark())
    _print_kernel_report(run_profile_kernel_benchmark())
