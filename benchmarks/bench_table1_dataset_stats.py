"""Table I: statistics of the twelve dataset configurations.

Regenerates the paper's Table I layout (one column per config, the
record-count and inter-record-gap rows) from the synthetic catalog.
The benchmark measures the statistics computation over all configs.
"""

import pytest

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.datasets.catalog import catalog_entry
from repro.pipeline.tables import render_table1, table1_column

S_NAMES = [f"S{letter}" for letter in "ABCDEF"]
T_NAMES = [f"T{letter}" for letter in "ABCDEF"]


def _nominal_duration(name: str) -> float:
    entry = catalog_entry(name)
    return entry.trim_days if entry.trim_days is not None else entry.duration_days


@pytest.mark.parametrize("group,names", [("S", S_NAMES), ("T", T_NAMES)])
def test_table1(benchmark, group, names):
    scaled = [scale_name(n) for n in names]
    pairs = {name: cached_scenario(name) for name in scaled}
    durations = {name: _nominal_duration(name) for name in scaled}

    def compute():
        return {name: table1_column(pairs[name], durations[name]) for name in scaled}

    columns = benchmark(compute)
    print_header(f"Table I ({group}-data configs)")
    print(render_table1(pairs, durations))
    # Sanity: every config produced non-trivial databases.
    for name, column in columns.items():
        assert column[1] > 0, f"{name}: empty P database"
        assert column[5] > 0, f"{name}: empty Q database"
