"""Benchmark package: one module per paper table/figure plus ablations."""
