"""Extension bench: defense sweep (the paper's open privacy question).

Measures how each publisher-side defense degrades an adaptive FTL
attacker's linkability, and at what utility cost.  Not a paper figure —
this is the experiment the paper's conclusion proposes as future work.
"""

import numpy as np

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.privacy import (
    GaussianPerturbation,
    RecordSuppression,
    SpatialCloaking,
    TemporalCloaking,
    evaluate_defense_sweep,
)
from repro.privacy.evaluation import format_defense_sweep

DEFENSES = [
    TemporalCloaking(300.0),
    TemporalCloaking(900.0),
    TemporalCloaking(3600.0),
    SpatialCloaking(500.0),
    SpatialCloaking(4000.0),
    GaussianPerturbation(1000.0),
    RecordSuppression(0.5),
    RecordSuppression(0.8),
]


def test_privacy_defense_sweep(benchmark, config):
    pair = cached_scenario(scale_name("SC"))
    rng = np.random.default_rng(13)
    points = benchmark.pedantic(
        evaluate_defense_sweep,
        args=(pair, DEFENSES, config, rng),
        kwargs={"n_queries": 25, "phi_r": 0.2},
        rounds=1,
        iterations=1,
    )
    print_header("Privacy extension: adaptive-attacker defense sweep")
    print(format_defense_sweep(points))

    baseline = points[0].linkability
    by_name = {}
    for p in points[1:]:
        by_name.setdefault(p.defense, []).append(p)

    # Temporal cloaking at 1 h must collapse linkability ...
    strongest_temporal = min(
        by_name["TemporalCloaking"], key=lambda p: -p.strength
    )
    assert strongest_temporal.linkability <= 0.4 * max(baseline, 0.25)
    # ... while block-scale spatial cloaking barely dents it.
    weakest_spatial = min(by_name["SpatialCloaking"], key=lambda p: p.strength)
    assert weakest_spatial.linkability >= 0.7 * baseline
