"""Service load bench: micro-batched serving vs batch-size-1 serving.

A closed-loop load generator drives a real :class:`BackgroundServer`
over TCP at several concurrency levels, once with the micro-batching
scheduler enabled (``max_batch_size=16``) and once degenerated to
per-request serving (``max_batch_size=1``), and reports throughput and
p50/p99 latency for each.

The workload is the 200-candidate *ranking* setting (alpha-filter with
``alpha1=0, alpha2=1``: every candidate scored and ranked).  The engine
is pre-warmed with one direct ``link_batch`` pass over the query set so
both configurations serve from hot profile/tail caches; what remains —
and what the two configurations differ in — is the per-request serving
overhead (event-loop wakeups, executor handoffs, response scheduling)
that micro-batching amortises over up to 16 requests per engine call.
Correctness is asserted before any timing is recorded: each mode's
first response must equal the direct in-process
:meth:`~repro.core.engine.LinkEngine.link_batch` result bit for bit.

The report also measures the **observability overhead**: the same
workload at the highest concurrency with the per-stage span timers
enabled (the default) vs disabled (``ServerConfig(spans=False)``),
reported as ``span_overhead.regression_pct``.  The full-size bench
asserts it stays under 5%.

``sharded_scaling`` measures the prefork scatter-gather
(``ServerConfig(workers=N)``, see :mod:`repro.service.supervisor`):
the ranking workload at high concurrency served in-process
(``workers=1``) vs by a 4-worker shard fleet, after asserting the
sharded responses are bit-identical.  ``cpu_count`` is recorded
alongside because the speedup is a *parallelism* claim: the full-size
bench asserts >= 2.5x at 4 workers only when the host actually has
four cores to run them on.

``sustained_ingest`` measures the **continuous-linkage** path
(:mod:`repro.stream`, see ``docs/streaming.md``): a store-backed
daemon with standing queries registered, driven by repeated
ingest-and-flush rounds.  Each flush appends to the store, writes an
index delta block, and incrementally re-scores only the affected
pairs; the section reports sustained ingest throughput (records/s)
and the update-staleness percentiles observed on ``/v1/watch``, and
asserts the incremental invariant — the total pairs re-scored stay
strictly below what per-update full recomputes would have cost.

Results are written to ``BENCH_service.json``.  Run standalone
(``python -m benchmarks.bench_service_load``, or ``--sustained`` for
just the streaming section merged into an existing report) or through
pytest; the tier-1 suite exercises a tiny smoke configuration on
every run (see ``tests/test_service.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.config import FTLConfig
from repro.core.engine import LinkEngine, LinkOptions
from repro.core.models import CompatibilityModel
from repro.geo.units import days_to_seconds
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, ServerConfig
from repro.store import TrajectoryStore
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import make_paired_databases

DEFAULT_OUT = "BENCH_service.json"

#: The ranking workload: every candidate is scored and ranked.
RANKING_OPTIONS = LinkOptions(
    method="alpha-filter", alpha1=0.0, alpha2=1.0, top_k=10
)


def _build_pair(n_candidates: int, rng: np.random.Generator):
    city = CityModel.generate(rng)
    agents = generate_population(
        city, n_candidates, days_to_seconds(3), rng, mobility="taxi"
    )
    service_p = ObservationService("P", rate_per_hour=0.8, noise=GaussianNoise(50.0))
    service_q = ObservationService("Q", rate_per_hour=0.4, noise=GaussianNoise(50.0))
    return make_paired_databases(agents, service_p, service_q, rng)


def _percentile(sorted_s: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples, in seconds."""
    if not sorted_s:
        return 0.0
    rank = min(len(sorted_s) - 1, max(0, int(round(q * (len(sorted_s) - 1)))))
    return sorted_s[rank]


def _run_level(
    address: tuple[str, int],
    queries,
    concurrency: int,
    requests_per_client: int,
) -> dict:
    """Closed-loop load: each of ``concurrency`` clients issues its
    requests back to back; wall time runs from a shared barrier to the
    last response."""
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    barrier = threading.Barrier(concurrency + 1)

    def client_main(tid: int) -> None:
        with ServiceClient(*address, timeout_s=120.0) as client:
            barrier.wait()
            for i in range(requests_per_client):
                query = queries[(tid + i) % len(queries)]
                started = time.perf_counter()
                try:
                    client.link(query)
                except Exception:  # noqa: BLE001 - tallied, not raised
                    errors[tid] += 1
                else:
                    latencies[tid].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client_main, args=(tid,), daemon=True)
        for tid in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    flat = sorted(lat for per_client in latencies for lat in per_client)
    n_ok = len(flat)
    return {
        "concurrency": concurrency,
        "n_requests": n_ok,
        "n_errors": sum(errors),
        "wall_s": wall_s,
        "throughput_rps": n_ok / wall_s if wall_s > 0 else float("inf"),
        "p50_ms": _percentile(flat, 0.50) * 1e3,
        "p99_ms": _percentile(flat, 0.99) * 1e3,
    }


def _measure_span_overhead(
    engine,
    pool,
    queries,
    concurrency: int,
    requests_per_client: int,
    max_batch_size: int,
    max_wait_ms: float,
    rounds: int = 2,
) -> dict:
    """Throughput with stage timers on vs off, best of ``rounds`` each.

    Spans-on is the production default, so the regression is quoted
    relative to spans-off: ``(off - on) / off * 100`` in percent.
    Taking the best round per configuration damps scheduler noise —
    the comparison is between each configuration's ceiling.
    """
    best: dict[str, dict] = {}
    for label, spans in (("spans_on", True), ("spans_off", False)):
        server_config = ServerConfig(
            port=0,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            spans=spans,
        )
        with BackgroundServer(
            engine, pool, options=RANKING_OPTIONS, config=server_config
        ) as background:
            with ServiceClient(*background.address) as probe:
                probe.link(queries[0])
            for _ in range(rounds):
                row = _run_level(
                    background.address, queries, concurrency,
                    requests_per_client,
                )
                if (
                    label not in best
                    or row["throughput_rps"] > best[label]["throughput_rps"]
                ):
                    best[label] = row
    on_rps = best["spans_on"]["throughput_rps"]
    off_rps = best["spans_off"]["throughput_rps"]
    return {
        "spans_on": best["spans_on"],
        "spans_off": best["spans_off"],
        "regression_pct": (
            (off_rps - on_rps) / off_rps * 100.0 if off_rps > 0 else 0.0
        ),
    }


def _measure_sharded_scaling(
    engine,
    pool,
    queries,
    expected,
    concurrency: int,
    requests_per_client: int,
    workers: int,
    max_batch_size: int,
    max_wait_ms: float,
) -> dict:
    """Throughput in-process vs a ``workers``-shard prefork fleet.

    Each configuration first proves bit-identity against the direct
    ``link_batch`` results, then serves the closed-loop load.  The
    speedup is meaningful only when the host has at least ``workers``
    cores, so ``cpu_count`` is recorded for the asserting caller.
    """
    rows: dict[str, dict] = {}
    for n_workers in (1, workers):
        server_config = ServerConfig(
            port=0,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            workers=n_workers,
        )
        with BackgroundServer(
            engine, pool, options=RANKING_OPTIONS, config=server_config
        ) as background:
            with ServiceClient(*background.address) as probe:
                got = probe.link(queries[0])
                assert got == expected[0], (
                    f"sharded serving diverged from link_batch at "
                    f"workers={n_workers}"
                )
            rows[str(n_workers)] = _run_level(
                background.address, queries, concurrency, requests_per_client
            )
    base_rps = rows["1"]["throughput_rps"]
    sharded_rps = rows[str(workers)]["throughput_rps"]
    return {
        "cpu_count": os.cpu_count(),
        "concurrency": concurrency,
        "n_workers": workers,
        "workers": rows,
        "speedup": sharded_rps / base_rps if base_rps > 0 else float("inf"),
    }


def _measure_sustained_ingest(
    engine,
    pool,
    queries,
    rounds: int,
    records_per_round: int,
    n_standing: int,
) -> dict:
    """Sustained ingest against a store-backed daemon with standing
    queries registered.

    Each round flushes one new candidate whose records sit inside a
    standing query's time window, so every flush provably reaches the
    incremental path: store append -> index delta block -> affected-id
    probe -> re-score -> ``/v1/watch`` event.  Staleness is sampled
    from the events themselves (``staleness_s`` spans flush start to
    ranking refresh).  Asserts ``rescored < full``: the pairs actually
    re-scored must undercut per-update full recomputes over the pool.
    """
    n_standing = max(1, min(n_standing, len(queries)))
    staleness_s: list[float] = []
    n_records = 0
    n_updates = 0
    full_recompute_pairs = 0
    with tempfile.TemporaryDirectory(prefix="ftl-bench-stream-") as tmp:
        store = TrajectoryStore.create(Path(tmp) / "stream-store", pool)
        served = list(store.load())
        server_config = ServerConfig(
            port=0, max_wait_ms=1.0, session_ttl_s=3600.0
        )
        with BackgroundServer(
            engine, served, options=RANKING_OPTIONS, config=server_config,
            store=store,
        ) as background:
            with ServiceClient(
                *background.address, timeout_s=120.0
            ) as client:
                seqs = {
                    f"standing-{i}": client.register_query(
                        queries[i], query_id=f"standing-{i}"
                    )["seq"]
                    for i in range(n_standing)
                }
                started = time.perf_counter()
                for r in range(rounds):
                    target = f"standing-{r % n_standing}"
                    query = queries[r % n_standing]
                    records = [
                        (float(t), float(x) + 10.0 * (r + 1), float(y))
                        for t, x, y in zip(
                            query.ts[:records_per_round],
                            query.xs[:records_per_round],
                            query.ys[:records_per_round],
                        )
                    ]
                    client.ingest(
                        "sustained",
                        candidate_records={f"stream-{r:03d}": records},
                        decide=False,
                        flush=True,
                    )
                    n_records += len(records)
                    pool_size = len(served) + r + 1
                    for qid in seqs:
                        # The flush re-scores synchronously, so the
                        # targeted query's event is already buffered;
                        # the others are drained without blocking.
                        got = client.watch(
                            qid,
                            since=seqs[qid],
                            wait_ms=10_000.0 if qid == target else 0.0,
                        )
                        seqs[qid] = got["seq"]
                        for event in got["events"]:
                            if event["kind"] != "update":
                                continue
                            n_updates += 1
                            full_recompute_pairs += pool_size
                            if "staleness_s" in event:
                                staleness_s.append(event["staleness_s"])
                wall_s = time.perf_counter() - started
                counters = client.metrics()["counters"]
    rescored = counters.get("standing_rescored_pairs_total", 0)
    assert n_updates >= rounds, (
        f"every flush must reach at least its targeted standing query, "
        f"got {n_updates} updates over {rounds} rounds"
    )
    assert rescored < full_recompute_pairs, (
        f"incremental re-scoring must touch fewer pairs than full "
        f"recomputes: rescored {rescored} vs full {full_recompute_pairs}"
    )
    flat = sorted(staleness_s)
    return {
        "n_pool_initial": len(pool),
        "n_standing_queries": n_standing,
        "rounds": rounds,
        "records_per_round": records_per_round,
        "n_records_flushed": n_records,
        "n_updates": n_updates,
        "wall_s": wall_s,
        "records_per_s": n_records / wall_s if wall_s > 0 else float("inf"),
        "staleness_p50_ms": _percentile(flat, 0.50) * 1e3,
        "staleness_p99_ms": _percentile(flat, 0.99) * 1e3,
        "rescored_pairs_total": rescored,
        "full_recompute_pairs": full_recompute_pairs,
        "rescored_over_full": (
            rescored / full_recompute_pairs if full_recompute_pairs else 0.0
        ),
    }


def run_service_load_benchmark(
    n_candidates: int = 200,
    n_queries: int = 10,
    concurrency_levels: tuple[int, ...] = (1, 4, 16),
    requests_per_client: int = 6,
    seed: int = 7,
    max_batch_size: int = 16,
    max_wait_ms: float = 2.0,
    sharded_concurrency: int = 64,
    sharded_workers: int = 4,
    sustained_rounds: int = 8,
    sustained_records: int = 6,
    sustained_standing: int = 2,
    out_path: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Drive micro-batched vs batch-size-1 serving; write the report.

    Both modes serve the *same* pre-warmed engine over the same pool,
    so the engine-side work per request is identical; the measured
    difference is the serving architecture.  Returns (and optionally
    writes) a dict with one row per concurrency level per mode plus
    the micro/batch1 throughput ratio.
    """
    rng = np.random.default_rng(seed)
    pair = _build_pair(n_candidates, rng)
    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    engine = LinkEngine(mr, ma, options=RANKING_OPTIONS)
    pool = list(pair.q_db)
    qids = pair.sample_queries(min(n_queries, len(pair.truth)), rng)
    queries = [pair.p_db[qid] for qid in qids]
    # Warm the profile cache and tail memo once, and keep the expected
    # results for the correctness assertion below.
    expected = engine.link_batch(queries, pool)

    modes = {
        "micro": ServerConfig(
            port=0, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
        ),
        "batch1": ServerConfig(port=0, max_batch_size=1, max_wait_ms=0.0),
    }
    report: dict = {
        "workload": "ranking",
        "n_candidates": len(pool),
        "n_queries": len(queries),
        "seed": seed,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "requests_per_client": requests_per_client,
        "levels": {},
    }
    level_rows: dict[int, dict] = {c: {} for c in concurrency_levels}
    for mode, server_config in modes.items():
        with BackgroundServer(
            engine, pool, options=RANKING_OPTIONS, config=server_config
        ) as background:
            with ServiceClient(*background.address) as probe:
                got = probe.link(queries[0])
                assert got == expected[0], (
                    f"served result diverged from link_batch in mode {mode}"
                )
            for concurrency in concurrency_levels:
                level_rows[concurrency][mode] = _run_level(
                    background.address, queries, concurrency,
                    requests_per_client,
                )
            with ServiceClient(*background.address) as probe:
                level_rows_metrics = probe.metrics()
            report[f"{mode}_batches_total"] = level_rows_metrics[
                "counters"
            ].get("batches_total", 0)
            report[f"{mode}_requests_total"] = level_rows_metrics[
                "counters"
            ].get("batched_requests_total", 0)
    for concurrency, rows in level_rows.items():
        ratio = (
            rows["micro"]["throughput_rps"] / rows["batch1"]["throughput_rps"]
            if rows["batch1"]["throughput_rps"] > 0
            else float("inf")
        )
        report["levels"][str(concurrency)] = {
            "micro": rows["micro"],
            "batch1": rows["batch1"],
            "micro_over_batch1": ratio,
        }
    report["span_overhead"] = _measure_span_overhead(
        engine, pool, queries,
        concurrency=max(concurrency_levels),
        requests_per_client=requests_per_client,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
    )
    report["sharded_scaling"] = _measure_sharded_scaling(
        engine, pool, queries, expected,
        concurrency=sharded_concurrency,
        requests_per_client=requests_per_client,
        workers=sharded_workers,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
    )
    report["sustained_ingest"] = _measure_sustained_ingest(
        engine, pool, queries,
        rounds=sustained_rounds,
        records_per_round=sustained_records,
        n_standing=sustained_standing,
    )

    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_sustained_ingest_benchmark(
    n_candidates: int = 200,
    n_queries: int = 10,
    seed: int = 7,
    rounds: int = 8,
    records_per_round: int = 6,
    n_standing: int = 2,
    out_path: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run only the ``sustained_ingest`` section (``--sustained``).

    Builds the same workload as the full bench, measures the
    continuous-linkage path, and merges the section into an existing
    ``BENCH_service.json`` without disturbing the other sections.
    """
    rng = np.random.default_rng(seed)
    pair = _build_pair(n_candidates, rng)
    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    engine = LinkEngine(mr, ma, options=RANKING_OPTIONS)
    pool = list(pair.q_db)
    qids = pair.sample_queries(min(n_queries, len(pair.truth)), rng)
    queries = [pair.p_db[qid] for qid in qids]
    section = _measure_sustained_ingest(
        engine, pool, queries,
        rounds=rounds,
        records_per_round=records_per_round,
        n_standing=n_standing,
    )
    if out_path is not None:
        path = Path(out_path)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["sustained_ingest"] = section
        path.write_text(json.dumps(report, indent=2) + "\n")
    return section


def _print_report(report: dict) -> None:
    print(
        f"service load — {report['n_queries']} queries x "
        f"{report['n_candidates']} candidates, ranking workload, "
        f"max_batch_size={report['max_batch_size']}"
    )
    print(
        f"{'conc':>5} {'micro rps':>10} {'batch1 rps':>11} {'ratio':>7} "
        f"{'micro p99':>10} {'batch1 p99':>11}"
    )
    for level, row in report["levels"].items():
        print(
            f"{level:>5} {row['micro']['throughput_rps']:>10.1f} "
            f"{row['batch1']['throughput_rps']:>11.1f} "
            f"{row['micro_over_batch1']:>6.2f}x "
            f"{row['micro']['p99_ms']:>9.1f}ms "
            f"{row['batch1']['p99_ms']:>10.1f}ms"
        )
    overhead = report.get("span_overhead")
    if overhead:
        print(
            f"span overhead at concurrency "
            f"{overhead['spans_on']['concurrency']}: "
            f"{overhead['spans_on']['throughput_rps']:.1f} rps on vs "
            f"{overhead['spans_off']['throughput_rps']:.1f} rps off "
            f"({overhead['regression_pct']:+.1f}%)"
        )
    sharded = report.get("sharded_scaling")
    if sharded:
        base = sharded["workers"]["1"]
        fleet = sharded["workers"][str(sharded["n_workers"])]
        print(
            f"sharded scaling at concurrency {sharded['concurrency']} "
            f"(cpu_count={sharded['cpu_count']}): "
            f"{base['throughput_rps']:.1f} rps at 1 worker vs "
            f"{fleet['throughput_rps']:.1f} rps at "
            f"{sharded['n_workers']} workers "
            f"({sharded['speedup']:.2f}x)"
        )
    sustained = report.get("sustained_ingest")
    if sustained:
        _print_sustained(sustained)


def _print_sustained(sustained: dict) -> None:
    print(
        f"sustained ingest over {sustained['rounds']} flush rounds "
        f"({sustained['n_standing_queries']} standing queries, pool "
        f"{sustained['n_pool_initial']}): "
        f"{sustained['records_per_s']:.1f} records/s, staleness "
        f"p50 {sustained['staleness_p50_ms']:.1f}ms / "
        f"p99 {sustained['staleness_p99_ms']:.1f}ms, rescored "
        f"{sustained['rescored_pairs_total']} of "
        f"{sustained['full_recompute_pairs']} full-recompute pairs "
        f"({sustained['rescored_over_full']:.3f}x)"
    )


def test_service_load_micro_batching_wins(benchmark):
    """Full-size bench: micro-batching beats batch-1 at concurrency >= 16."""
    report = benchmark.pedantic(
        run_service_load_benchmark,
        kwargs={"n_candidates": 200, "n_queries": 10},
        rounds=1,
        iterations=1,
    )
    _print_report(report)
    for level, row in report["levels"].items():
        assert row["micro"]["n_errors"] == 0
        assert row["batch1"]["n_errors"] == 0
        if int(level) >= 16:
            assert row["micro_over_batch1"] > 1.0, (
                f"micro-batching must beat batch-size-1 serving at "
                f"concurrency {level}, got {row['micro_over_batch1']:.2f}x"
            )
    overhead = report["span_overhead"]
    assert overhead["spans_on"]["n_errors"] == 0
    assert overhead["spans_off"]["n_errors"] == 0
    assert overhead["regression_pct"] < 5.0, (
        f"stage timers must cost < 5% throughput, measured "
        f"{overhead['regression_pct']:.1f}%"
    )
    sharded = report["sharded_scaling"]
    for row in sharded["workers"].values():
        assert row["n_errors"] == 0
    # The scatter-gather speedup is a parallelism claim; only assert it
    # where the 4 workers actually get 4 cores.
    if sharded["cpu_count"] is not None and sharded["cpu_count"] >= 4:
        assert sharded["speedup"] >= 2.5, (
            f"4-worker sharding must reach >= 2.5x at concurrency "
            f"{sharded['concurrency']}, measured {sharded['speedup']:.2f}x "
            f"on {sharded['cpu_count']} cores"
        )
    sustained = report["sustained_ingest"]
    assert sustained["n_updates"] >= sustained["rounds"]
    # The incremental invariant at full scale: re-scoring the affected
    # pairs must cost well under a tenth of per-update full recomputes.
    assert sustained["rescored_over_full"] < 0.1, (
        f"incremental re-scoring should be <10% of full recompute at "
        f"pool {sustained['n_pool_initial']}, measured "
        f"{sustained['rescored_over_full']:.3f}x"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sustained", action="store_true",
        help="run only the sustained-ingest (streaming) section and "
             "merge it into the existing report",
    )
    parser.add_argument("--out", default=DEFAULT_OUT)
    cli_args = parser.parse_args()
    if cli_args.sustained:
        _print_sustained(run_sustained_ingest_benchmark(
            out_path=cli_args.out
        ))
    else:
        _print_report(run_service_load_benchmark(out_path=cli_args.out))
