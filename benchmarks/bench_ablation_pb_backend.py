"""Ablation: Poisson-Binomial backend accuracy and speed.

Compares the exact convolution DP (the production backend), the paper's
Eq. 1 recursion, and the refined normal approximation on profiles of
growing length, quantifying (a) tail-probability error versus the DP
and (b) evaluation time.  This motivates DESIGN.md's choice of the DP
as the default: the recursion's alternating sum loses precision as n or
the odds grow, and the normal approximation trades a small bias for
O(1) tail evaluation.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.stats.poisson_binomial import PoissonBinomial

SIZES = (20, 100, 400)


def _profile_probs(n: int, rng: np.random.Generator) -> np.ndarray:
    """FTL-like probability profiles: a few large, mostly small."""
    small = rng.uniform(0.001, 0.1, size=int(0.8 * n))
    large = rng.uniform(0.3, 0.95, size=n - small.size)
    return np.concatenate([small, large])


@pytest.mark.parametrize("n", SIZES)
def test_pb_backend_ablation(benchmark, n):
    rng = np.random.default_rng(n)
    ps = _profile_probs(n, rng)
    k = int(ps.sum())  # a tail point near the mean

    exact = PoissonBinomial(ps, backend="dp")
    benchmark(lambda: PoissonBinomial(ps, backend="dp").sf(k))

    rows = []
    for backend in ("dp", "recursive", "normal"):
        start = time.perf_counter()
        try:
            value = PoissonBinomial(ps, backend=backend).sf(k)
            elapsed = time.perf_counter() - start
            error = abs(value - exact.sf(k))
            rows.append((backend, value, error, elapsed))
        except Exception as exc:  # the recursion may degrade, not crash
            rows.append((backend, float("nan"), float("nan"), 0.0))
            raise AssertionError(f"{backend} failed at n={n}: {exc}") from exc

    print_header(f"PB backend ablation, n={n}, k={k}")
    print(f"{'backend':<11} {'P(K>=k)':>12} {'abs err':>12} {'seconds':>10}")
    for backend, value, error, elapsed in rows:
        print(f"{backend:<11} {value:>12.6g} {error:>12.3g} {elapsed:>10.5f}")

    # The normal approximation must stay within 1% absolute at these sizes.
    normal_error = rows[2][2]
    assert normal_error < 0.01
    # The recursion is exact-in-theory; at small n it must agree tightly.
    if n <= 20:
        assert rows[1][2] < 1e-6
