"""Ablation: Poisson-Binomial backend accuracy and speed.

Compares the exact convolution DP (the production backend), the paper's
Eq. 1 recursion, and the refined normal approximation on profiles of
growing length, quantifying (a) tail-probability error versus the DP
and (b) evaluation time.  This motivates DESIGN.md's choice of the DP
as the default: the recursion's alternating sum loses precision as n or
the odds grow, and the normal approximation trades a small bias for
O(1) tail evaluation.

A second bench times the DP under each *kernel* backend —
``pb_pmf_batch`` routed through the pure-python loop, the vectorised
NumPy state-matrix convolution, and numba when available — over an
engine-shaped batch of profiles, asserting bit-identical pmf values
before timing.  Results merge into ``BENCH_engine.json`` under
``"pb_backends"``.
"""

import math
import time

import numpy as np
import pytest

from benchmarks.bench_engine_batch import DEFAULT_OUT, _merge_into
from benchmarks.conftest import print_header
from repro.kernels import numba_available
from repro.stats.poisson_binomial import PoissonBinomial, pb_pmf_batch

SIZES = (20, 100, 400)


def _profile_probs(n: int, rng: np.random.Generator) -> np.ndarray:
    """FTL-like probability profiles: a few large, mostly small."""
    small = rng.uniform(0.001, 0.1, size=int(0.8 * n))
    large = rng.uniform(0.3, 0.95, size=n - small.size)
    return np.concatenate([small, large])


@pytest.mark.parametrize("n", SIZES)
def test_pb_backend_ablation(benchmark, n):
    rng = np.random.default_rng(n)
    ps = _profile_probs(n, rng)
    k = int(ps.sum())  # a tail point near the mean

    exact = PoissonBinomial(ps, backend="dp")
    benchmark(lambda: PoissonBinomial(ps, backend="dp").sf(k))

    rows = []
    for backend in ("dp", "recursive", "normal"):
        start = time.perf_counter()
        try:
            value = PoissonBinomial(ps, backend=backend).sf(k)
            elapsed = time.perf_counter() - start
            error = abs(value - exact.sf(k))
            rows.append((backend, value, error, elapsed))
        except Exception as exc:  # the recursion may degrade, not crash
            rows.append((backend, float("nan"), float("nan"), 0.0))
            raise AssertionError(f"{backend} failed at n={n}: {exc}") from exc

    print_header(f"PB backend ablation, n={n}, k={k}")
    print(f"{'backend':<11} {'P(K>=k)':>12} {'abs err':>12} {'seconds':>10}")
    for backend, value, error, elapsed in rows:
        print(f"{backend:<11} {value:>12.6g} {error:>12.3g} {elapsed:>10.5f}")

    # The normal approximation must stay within 1% absolute at these sizes.
    normal_error = rows[2][2]
    assert normal_error < 0.01
    # The recursion is exact-in-theory; at small n it must agree tightly.
    if n <= 20:
        assert rows[1][2] < 1e-6


def run_pb_kernel_benchmark(
    n_profiles: int = 200,
    seed: int = 11,
    repeats: int = 5,
    out_path=DEFAULT_OUT,
) -> dict:
    """Time ``pb_pmf_batch`` per kernel backend on an engine-shaped batch.

    One batch of ``n_profiles`` probability vectors with FTL-like
    lengths (most short, a heavy tail of long profiles), matching what
    one ``link_batch`` query submits.  Every backend's pmfs must be
    bit-identical to the python loop before timings are reported.
    """
    rng = np.random.default_rng(seed)
    lengths = np.clip(rng.geometric(0.08, size=n_profiles), 1, 400)
    probs = [_profile_probs(int(n), rng) for n in lengths]

    kernels = ["python", "numpy"] + (["numba"] if numba_available() else [])
    reference = pb_pmf_batch(probs, kernel="python")
    results: dict = {}
    for kernel in kernels:
        pmfs = pb_pmf_batch(probs, kernel=kernel)
        for have, want in zip(pmfs, reference):
            assert np.array_equal(have, want), (
                f"pb_pmf_batch kernel={kernel} diverged from the python loop"
            )
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            pb_pmf_batch(probs, kernel=kernel)
            best = min(best, time.perf_counter() - start)
        results[kernel] = {"batch_s": best}
    for kernel in kernels:
        results[kernel]["speedup_vs_python"] = (
            results["python"]["batch_s"] / results[kernel]["batch_s"]
        )

    section = {
        "n_profiles": n_profiles,
        "mean_length": float(np.mean(lengths)),
        "max_length": int(np.max(lengths)),
        "seed": seed,
        "repeats": repeats,
        "numba_available": numba_available(),
        "kernels": results,
    }
    if out_path is not None:
        _merge_into(out_path, {"pb_backends": section})
    return section


def test_pb_kernel_backends(benchmark):
    """Kernel-routed DP: bit-identical pmfs, batched >= python loop."""
    section = benchmark.pedantic(
        run_pb_kernel_benchmark, rounds=1, iterations=1
    )
    print_header(
        f"PB kernel backends, {section['n_profiles']} profiles "
        f"(mean n={section['mean_length']:.0f}, max n={section['max_length']})"
    )
    print(f"{'kernel':<10} {'batch (ms)':>11} {'speedup':>9}")
    for kernel, row in section["kernels"].items():
        print(
            f"{kernel:<10} {row['batch_s'] * 1e3:>11.2f} "
            f"{row['speedup_vs_python']:>8.2f}x"
        )
    assert section["kernels"]["numpy"]["speedup_vs_python"] >= 1.0


if __name__ == "__main__":
    run_pb_kernel_benchmark()
