"""Ablations: time-unit width, Vmax, and model smoothing.

Each ablation re-runs the SB tradeoff under a swept design parameter
and prints the best Naive-Bayes operating point per setting, showing
how sensitive FTL is to the choices the paper leaves implicit:

* ``time_unit_s`` — bucket width of the models (paper: "half, one, or
  two minutes");
* ``vmax_kph`` — the speed cap of Definition 3 (paper: loose enough to
  never reject true positives);
* ``smoothing`` — the pseudo-count our implementation adds (the paper
  uses raw rates; smoothing protects Naive-Bayes from log(0)).
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.config import FTLConfig
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.tradeoff import tradeoff_from_evidence

N_QUERIES = 25

ABLATIONS = [
    ("time_unit_s", [30.0, 60.0, 120.0]),
    ("vmax_kph", [80.0, 120.0, 200.0]),
    ("smoothing", [0.0, 0.5, 5.0]),
]


def _best_operating_points(pair, config, rng):
    mr, ma = fit_model_pair(pair, config, rng)
    n = min(N_QUERIES, len(pair.matched_query_ids()))
    qids = pair.sample_queries(n, rng)
    evidence = collect_evidence(pair, qids, mr, ma)
    curves = tradeoff_from_evidence(evidence, pair.truth)
    return curves["naive-bayes"]


@pytest.mark.parametrize("param,values", ABLATIONS)
def test_parameter_ablation(benchmark, param, values):
    pair = cached_scenario(scale_name("SB"))
    baseline = FTLConfig()

    def run_all():
        rows = {}
        for value in values:
            config = baseline.with_updates(**{param: value})
            rng = np.random.default_rng(17)
            rows[value] = _best_operating_points(pair, config, rng)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header(f"Ablation: {param}")
    print(f"{param:>12} {'setting':<14} {'selectiveness':>14} {'perceptiveness':>15}")
    for value, points in rows.items():
        for point in points:
            print(
                f"{value:>12g} {point.param_label:<14} "
                f"{point.selectiveness:>14.5f} {point.perceptiveness:>15.3f}"
            )

    # Every setting must keep the linker functional (loosest point finds
    # a majority of matches) - the method is robust to these choices.
    for value, points in rows.items():
        best = max(p.perceptiveness for p in points)
        assert best >= 0.5, f"{param}={value} broke linking (best={best})"
