"""Fig. 6: ranking effectiveness on the SF and TF configs.

Loose acceptance settings ((0.001, 0.08) / phi_r = 0.4) produce large
candidate pools; Eq. 2 scores are pooled across queries and globally
ranked.  The printed curve is the number of queries whose true match
appears inside the global top-k, which should grow steeply at small k
and flatten — real matches concentrate at the top of the ranking.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    cached_scenario,
    is_full_scale,
    print_header,
    scale_name,
)
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.ranking_eval import format_ranking, ranking_from_evidence

PANELS = [("Fig. 6(a)", "SF"), ("Fig. 6(b)", "TF")]


@pytest.mark.parametrize("panel,name", PANELS)
def test_fig6_ranking(benchmark, config, panel, name):
    scaled = scale_name(name)
    pair = cached_scenario(scaled)
    rng = np.random.default_rng(6)
    n_queries = min(
        500 if is_full_scale() else 40, len(pair.matched_query_ids())
    )
    mr, ma = fit_model_pair(pair, config, rng)
    query_ids = pair.sample_queries(n_queries, rng)
    evidence = benchmark.pedantic(
        collect_evidence, args=(pair, query_ids, mr, ma), rounds=1, iterations=1
    )
    top = 500 if is_full_scale() else n_queries
    ks = sorted({max(1, round(top * f)) for f in
                 (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)})
    curves = ranking_from_evidence(evidence, pair.truth, ks)

    print_header(f"{panel}: ranking effectiveness on {scaled}")
    print(format_ranking(curves))

    for curve in curves.values():
        hits = list(curve.hits)
        assert hits == sorted(hits)  # non-decreasing in k
        # Real matches concentrate at the top of the global ranking:
        # the earliest prefix should be nearly pure true matches, and
        # by k = n_queries a solid majority of queries are answered.
        assert hits[0] >= 0.8 * curve.ks[0]
        assert hits[-1] >= 0.6 * curve.n_queries
