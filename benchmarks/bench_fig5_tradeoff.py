"""Fig. 5: perceptiveness-selectiveness tradeoff, all four panels.

Panel (a): S-data sampling-rate sweep (SA, SB, SC).
Panel (b): S-data duration sweep (SD, SE, SF).
Panel (c): T-data sampling-rate sweep (TA, TB, TC).
Panel (d): T-data duration sweep (TD, TE, TF).

For each config both algorithms' parameter ladders are evaluated on the
same sampled queries.  The benchmark measures the evidence collection
(the shared expensive step) for the panel's middle config.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    cached_scenario,
    n_queries_default,
    print_header,
    scale_name,
)
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.tradeoff import format_tradeoff, tradeoff_from_evidence

PANELS = [
    ("Fig. 5(a) S-data, sampling-rate sweep", ["SA", "SB", "SC"]),
    ("Fig. 5(b) S-data, duration sweep", ["SD", "SE", "SF"]),
    ("Fig. 5(c) T-data, sampling-rate sweep", ["TA", "TB", "TC"]),
    ("Fig. 5(d) T-data, duration sweep", ["TD", "TE", "TF"]),
]


def _evidence_for(name, config, n_queries, seed=5):
    rng = np.random.default_rng(seed)
    pair = cached_scenario(name)
    mr, ma = fit_model_pair(pair, config, rng)
    n = min(n_queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)
    return pair, collect_evidence(pair, query_ids, mr, ma)


@pytest.mark.parametrize("panel,names", PANELS)
def test_fig5_panel(benchmark, config, panel, names):
    n_queries = n_queries_default()
    scaled = [scale_name(n) for n in names]

    # Benchmark the shared hot path once, on the middle config.
    mid = scaled[1]
    pair_mid, _ = _evidence_for(mid, config, 2)
    rng = np.random.default_rng(0)
    mr, ma = fit_model_pair(pair_mid, config, rng)
    qids = pair_mid.sample_queries(min(5, len(pair_mid.truth)), rng)
    benchmark.pedantic(
        collect_evidence, args=(pair_mid, qids, mr, ma), rounds=1, iterations=1
    )

    print_header(panel)
    curves_at_mid_selectiveness = {}
    for name in scaled:
        pair, evidence = _evidence_for(name, config, n_queries)
        curves = tradeoff_from_evidence(evidence, pair.truth)
        print(f"\n--- {name} ({len(evidence)} queries, |Q|={len(pair.q_db)}) ---")
        print(format_tradeoff(curves))
        # Track the loosest-setting perceptiveness for trend checks.
        curves_at_mid_selectiveness[name] = max(
            point.perceptiveness for point in curves["naive-bayes"]
        )

    # Paper trend: within each panel the richer config (higher rate /
    # longer duration, listed last) should do at least as well at its
    # best operating point as the poorest (listed first).
    best = curves_at_mid_selectiveness
    assert best[scaled[-1]] >= best[scaled[0]] - 0.10, best
