"""Extension bench: held-out generalisation of the fitted models.

The rejection/acceptance models capture population-level movement and
noise statistics, not individual identities — so they should transfer
to unseen users.  This bench fits on a train split and evaluates on
held-out queries across several configs, printing the generalisation
gap.
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.pipeline.crossval import format_holdout, run_holdout

CONFIG_NAMES = ("SB", "SD", "TB")


@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_holdout_generalisation(benchmark, config, name):
    pair = cached_scenario(scale_name(name))
    rng = np.random.default_rng(59)
    result = benchmark.pedantic(
        run_holdout,
        args=(pair, config, rng),
        kwargs={"test_fraction": 0.3, "phi_r": 0.1},
        rounds=1,
        iterations=1,
    )
    print_header(f"Held-out generalisation on {scale_name(name)}")
    print(format_holdout(result))

    # Models must transfer: held-out perceptiveness within 0.35 of
    # in-sample (both folds share the population statistics).
    assert abs(result.generalisation_gap) <= 0.35
