"""Extension bench: parallel linking throughput and prefilter pruning.

The paper's conclusion proposes parallel/distributed FTL for
large-scale linking.  This bench measures (a) multi-process speedup of
the query fan-out and (b) how much work the conservative mutual-segment
prefilter removes without losing true matches.
"""

import time

import numpy as np

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.core.linker import FTLLinker, LinkOptions
from repro.core.prefilter import MutualSegmentCountPrefilter
from repro.parallel import link_queries_parallel
from repro.pipeline.experiment import fit_model_pair


def test_parallel_scaling(benchmark, config):
    pair = cached_scenario(scale_name("SC"))
    rng = np.random.default_rng(19)
    mr, ma = fit_model_pair(pair, config, rng)
    qids = pair.sample_queries(min(24, len(pair.truth)), rng)
    queries = [pair.p_db[qid] for qid in qids]

    timings = {}
    for workers in (1, 2, 4):
        start = time.perf_counter()
        results = link_queries_parallel(
            queries, mr, ma, pair.q_db, n_workers=workers,
            options=LinkOptions(phi_r=0.1),
        )
        timings[workers] = time.perf_counter() - start
        assert len(results) == len(queries)

    benchmark.pedantic(
        link_queries_parallel,
        args=(queries, mr, ma, pair.q_db),
        kwargs={"n_workers": 2, "options": LinkOptions(phi_r=0.1)},
        rounds=1,
        iterations=1,
    )

    print_header("Parallel linking scaling (naive-bayes)")
    print(f"{'workers':>8} {'seconds':>9} {'speedup':>9}")
    for workers, elapsed in timings.items():
        print(f"{workers:>8} {elapsed:>9.3f} {timings[1] / elapsed:>8.2f}x")
    # Parallelism must not be pathological (allow pool-spawn overhead on
    # small workloads, but 4 workers should not be slower than 1 by much).
    assert timings[4] < 2.5 * timings[1]


def test_prefilter_pruning(benchmark, config):
    pair = cached_scenario(scale_name("SC"))
    rng = np.random.default_rng(20)
    mr, ma = fit_model_pair(pair, config, rng)
    qids = pair.sample_queries(min(20, len(pair.truth)), rng)

    prefilter = MutualSegmentCountPrefilter(config, min_segments=3)

    def count_survivors():
        kept = 0
        total = 0
        for qid in qids:
            query = pair.p_db[qid]
            for candidate in pair.q_db:
                total += 1
                kept += prefilter.keep(query, candidate)
        return kept, total

    kept, total = benchmark.pedantic(count_survivors, rounds=1, iterations=1)

    # Perceptiveness with and without the prefilter.
    def hits(linker):
        return sum(
            1
            for qid in qids
            if linker.link(pair.p_db[qid]).contains(pair.truth[qid])
        )

    base = FTLLinker(config, phi_r=0.1).with_models(mr, ma, pair.q_db)
    pruned = FTLLinker(
        config, phi_r=0.1, prefilter=prefilter
    ).with_models(mr, ma, pair.q_db)
    base_hits, pruned_hits = hits(base), hits(pruned)

    print_header("Prefilter pruning (min 3 in-horizon mutual segments)")
    print(f"candidate pairs kept: {kept}/{total} ({100 * kept / total:.0f}%)")
    print(f"true matches found:   base={base_hits}/{len(qids)}  "
          f"prefiltered={pruned_hits}/{len(qids)}")
    # Conservative pruning: loses at most one true match here.
    assert pruned_hits >= base_hits - 1
