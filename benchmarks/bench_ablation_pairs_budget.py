"""Ablation: Algorithm 2's sampled-pair budget.

The paper's acceptance-model pseudo-code loops over *all* distinct
trajectory pairs — quadratic in the database.  Our implementation caps
the sample (``FTLConfig.max_acceptance_pairs``); this ablation sweeps
the cap and shows how few pairs the model actually needs before the
tradeoff saturates, justifying the default of 200.
"""

import numpy as np

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.core.models import CompatibilityModel
from repro.pipeline.experiment import collect_evidence
from repro.pipeline.score_analysis import separation_from_evidence

BUDGETS = (3, 10, 50, 200, 800)
N_QUERIES = 25


def test_acceptance_pair_budget(benchmark, config):
    pair = cached_scenario(scale_name("SB"))
    base_rng = np.random.default_rng(53)
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    qids = pair.sample_queries(min(N_QUERIES, len(pair.truth)), base_rng)

    def run_all():
        rows = {}
        for budget in BUDGETS:
            rng = np.random.default_rng(54)
            ma = CompatibilityModel.fit_acceptance(
                [pair.p_db, pair.q_db], config, rng, max_pairs=budget
            )
            evidence = collect_evidence(pair, qids, mr, ma)
            rows[budget] = (
                separation_from_evidence(evidence, pair.truth),
                ma.n_segments,
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header("Ablation: Algorithm 2 sampled-pair budget")
    print(f"{'pairs/db':>9} {'segments':>10} {'Eq.2 AUC':>9} "
          f"{'LLR AUC proxy (true med)':>25}")
    for budget, (sep, n_segments) in rows.items():
        print(f"{budget:>9} {n_segments:>10} {sep.auc:>9.4f} "
              f"{sep.true_median:>25.4f}")

    # The model saturates quickly: 50 pairs should already be within a
    # whisker of the 800-pair fit, justifying the default cap of 200.
    assert rows[50][0].auc >= rows[800][0].auc - 0.02
    assert rows[200][0].auc >= rows[800][0].auc - 0.01