"""Ablation: location-noise sensitivity.

The paper lists *inaccuracy* among FTL's three core challenges.  This
ablation regenerates one paired scenario at increasing GPS noise levels
(and one cell-tower-snapped variant) and reports the best Naive-Bayes
operating point per level — quantifying how much localisation error the
compatibility signal tolerates before linking degrades.
"""

import numpy as np

from benchmarks.conftest import print_header
from repro.geo.units import days_to_seconds
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.tradeoff import tradeoff_from_evidence
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise, TowerSnapNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import make_paired_databases

SIGMAS = (0.0, 100.0, 400.0, 1200.0)
N_QUERIES = 25


def _best_point(pair, config, rng):
    mr, ma = fit_model_pair(pair, config, rng)
    n = min(N_QUERIES, len(pair.matched_query_ids()))
    qids = pair.sample_queries(n, rng)
    evidence = collect_evidence(pair, qids, mr, ma)
    curves = tradeoff_from_evidence(evidence, pair.truth)
    return max(curves["naive-bayes"], key=lambda p: p.perceptiveness)


def test_noise_sensitivity(benchmark, config):
    rng = np.random.default_rng(43)
    city = CityModel.generate(rng)
    agents = generate_population(city, 50, days_to_seconds(7), rng)

    def noise_for(label):
        if label == "tower":
            return TowerSnapNoise(city)
        return GaussianNoise(float(label))

    def run_all():
        rows = {}
        for label in [*(str(s) for s in SIGMAS), "tower"]:
            local_rng = np.random.default_rng(44)
            pair = make_paired_databases(
                agents,
                ObservationService("P", 0.55, noise_for(label)),
                ObservationService("Q", 0.18, noise_for(label)),
                local_rng,
            )
            rows[label] = _best_point(pair, config, local_rng)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header("Ablation: location-noise sensitivity")
    print(f"{'noise':>8} {'selectiveness':>14} {'best perceptiveness':>20}")
    for label, point in rows.items():
        print(f"{label:>8} {point.selectiveness:>14.4f} "
              f"{point.perceptiveness:>20.3f}")

    # FTL tolerates realistic GPS noise; only kilometre-scale noise can
    # meaningfully dent the compatibility signal.
    assert rows["0.0"].perceptiveness >= 0.8
    assert rows["100.0"].perceptiveness >= 0.8
    assert rows["tower"].perceptiveness >= 0.6
