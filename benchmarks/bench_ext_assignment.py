"""Extension bench: global one-to-one assignment vs. per-query top-1.

When both databases cover the same population, per-query decisions can
hand one candidate to several queries; a maximum-weight bipartite
matching over the Eq. 2 scores resolves conflicts globally.  This bench
quantifies the gain on a sparse config (where conflicts actually
happen) and compares the greedy 1/2-approximation against the exact
matching.
"""

import numpy as np

from benchmarks.conftest import cached_scenario, print_header, scale_name
from repro.core.assignment import (
    assign_queries,
    greedy_assignment,
    optimal_assignment,
    score_all_pairs,
)
from repro.core.ranking import rank_candidates
from repro.pipeline.experiment import fit_model_pair


def test_assignment_vs_top1(benchmark, config):
    pair = cached_scenario(scale_name("SD"))  # the sparsest S config
    rng = np.random.default_rng(29)
    mr, ma = fit_model_pair(pair, config, rng)
    qids = pair.sample_queries(min(30, len(pair.truth)), rng)

    scores = benchmark.pedantic(
        score_all_pairs,
        args=(pair.p_db, pair.q_db, mr, ma),
        kwargs={"query_ids": qids},
        rounds=1,
        iterations=1,
    )

    top1_hits = sum(
        1
        for qid in qids
        if rank_candidates(pair.p_db[qid], pair.q_db, mr, ma)[0].candidate_id
        == pair.truth[qid]
    )
    greedy = greedy_assignment(scores, min_score=1e-6)
    optimal = optimal_assignment(scores, min_score=1e-6)

    def hits(assignment):
        return sum(
            1 for qid in qids if assignment.pairs.get(qid) == pair.truth[qid]
        )

    print_header("Global assignment vs per-query top-1 (SD config)")
    print(f"{'strategy':<22} {'correct':>8} {'assigned':>9} {'total score':>12}")
    print(f"{'independent top-1':<22} {top1_hits:>8} {len(qids):>9} {'-':>12}")
    print(f"{'greedy assignment':<22} {hits(greedy):>8} {len(greedy):>9} "
          f"{greedy.total_score:>12.3f}")
    print(f"{'optimal assignment':<22} {hits(optimal):>8} {len(optimal):>9} "
          f"{optimal.total_score:>12.3f}")

    assert optimal.total_score >= greedy.total_score - 1e-9
    assert hits(optimal) >= top1_hits - 1  # global view must not hurt


def test_assign_queries_api(benchmark, config):
    pair = cached_scenario(scale_name("SD"))
    rng = np.random.default_rng(31)
    mr, ma = fit_model_pair(pair, config, rng)
    qids = pair.sample_queries(min(20, len(pair.truth)), rng)
    assignment = benchmark.pedantic(
        assign_queries,
        args=(pair.p_db, pair.q_db, mr, ma),
        kwargs={"query_ids": qids, "method": "optimal"},
        rounds=1,
        iterations=1,
    )
    print_header("assign_queries() accuracy")
    print(f"accuracy over assigned queries: "
          f"{assignment.accuracy(pair.truth):.2f} "
          f"({len(assignment)}/{len(qids)} assigned)")
    assert assignment.accuracy(pair.truth) >= 0.5
