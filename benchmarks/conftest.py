"""Shared benchmark fixtures and scale control.

All figure/table benches run at *mini* scale by default (a few minutes
total on a laptop) and print the same rows/series the paper reports.
Set ``FTL_BENCH_FULL=1`` to run the full-scale catalog entries with the
paper's durations and query counts (much slower).
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.datasets.catalog import build_scenario


def is_full_scale() -> bool:
    return os.environ.get("FTL_BENCH_FULL", "") == "1"


def scale_name(base: str) -> str:
    """Map a config base name to the scale being benched."""
    return base if is_full_scale() else f"{base}-mini"


def n_queries_default() -> int:
    return 200 if is_full_scale() else 30


@lru_cache(maxsize=None)
def cached_scenario(name: str):
    """Scenario pairs are deterministic per name; build each once."""
    return build_scenario(name)


@pytest.fixture(scope="session")
def config() -> FTLConfig:
    return FTLConfig()


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(2024)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
