"""Assignment bench: sparse component-wise solve vs the dense reference.

Three legs back :mod:`repro.assign`:

* **Solver scaling** — a clustered blocked cost graph at 5k x 5k
  (components of ~8x8, global density well under 5%) solved by the
  sparse scipy backend and by the networkx ``reference`` backend (the
  seed's dense solver behind the new API).  Both are exact, so the
  matchings must agree bit-for-bit; the sparse path must be >= 5x
  faster at full scale.
* **Legacy path** — at a size where it is still feasible, the genuine
  old pipeline (one ``optimal_assignment`` call over the *full* edge
  list, no component decomposition) against the new component-wise
  sparse solve, to show the decomposition is where the speedup lives.
* **Scenario precision** — :func:`repro.assign.evaluate.evaluate_assignment`
  on a catalog scenario: global assignment precision@1 must not trail
  independent per-query ranking.

Results are written to ``BENCH_assign.json``.  Run standalone
(``python -m benchmarks.bench_assign``) or through pytest; the tier-1
suite exercises a tiny smoke configuration on every run.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.assign import (
    CostGraph,
    evaluate_assignment,
    resolve_backend,
    scipy_available,
    solve,
    split_components,
)
from repro.config import FTLConfig
from repro.core.assignment import optimal_assignment
from repro.datasets.catalog import build_scenario

DEFAULT_OUT = "BENCH_assign.json"


def build_clustered_graph(
    n_queries: int,
    n_candidates: int,
    rng: np.random.Generator,
    component_size: int = 8,
    edge_prob: float = 0.8,
) -> CostGraph:
    """A blocked-looking bipartite graph: dense inside ~8x8 clusters.

    Mirrors what spatio-temporal blocking produces on co-located
    populations — each query only has edges to the candidates of its
    own spatial cluster — so global density shrinks as 1/n while
    per-component structure stays constant.
    """
    edges: list[tuple[int, int, float]] = []
    for block_start in range(0, n_queries, component_size):
        q_block = range(block_start, min(block_start + component_size, n_queries))
        c_block = range(
            block_start, min(block_start + component_size, n_candidates)
        )
        for qi in q_block:
            for ci in c_block:
                if rng.random() < edge_prob:
                    edges.append((qi, ci, float(rng.uniform(0.05, 1.0))))
    edges.sort(key=lambda e: (e[0], e[1]))
    return CostGraph(
        query_ids=tuple(f"q{i}" for i in range(n_queries)),
        candidate_ids=tuple(f"c{i}" for i in range(n_candidates)),
        edges=tuple(edges),
        min_score=0.0,
        n_scored_pairs=n_queries * n_candidates,
    )


def _best_of(fn, repeats: int):
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_assign_benchmark(
    solver_pool: int = 5_000,
    legacy_pool: int = 300,
    scenario: str = "SB-mini",
    component_size: int = 8,
    edge_prob: float = 0.8,
    repeats: int = 3,
    seed: int = 7,
    out_path: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Time the solver legs and score the scenario leg.

    Returns (and optionally writes as JSON) a dict with a ``solver``
    section (sparse vs reference on the clustered graph), a ``legacy``
    section (whole-graph ``optimal_assignment`` vs component-wise
    solve) and a ``scenario`` section (precision@1 comparison).
    """
    rng = np.random.default_rng(seed)
    report: dict = {
        "seed": seed,
        "repeats": repeats,
        "scipy": scipy_available(),
        "auto_backend": resolve_backend("auto"),
    }

    # --- solver scaling: sparse vs per-component dense reference -----
    graph = build_clustered_graph(
        solver_pool, solver_pool, rng,
        component_size=component_size, edge_prob=edge_prob,
    )
    exact_backend = "sparse" if scipy_available() else "greedy"
    sparse_s, sparse_asg = _best_of(
        lambda: solve(graph, backend=exact_backend), repeats
    )
    reference_s, reference_asg = _best_of(
        lambda: solve(graph, backend="reference"), repeats
    )
    assert sparse_asg is not None and reference_asg is not None
    report["solver"] = {
        "n_queries": solver_pool,
        "n_candidates": solver_pool,
        "component_size": component_size,
        "n_edges": graph.n_edges,
        "density": graph.density,
        "n_components": len(split_components(graph)),
        "sparse_backend": exact_backend,
        "sparse_s": sparse_s,
        "reference_s": reference_s,
        "speedup": reference_s / sparse_s if sparse_s > 0 else float("inf"),
        "sparse_total_score": sparse_asg.total_score,
        "reference_total_score": reference_asg.total_score,
        "matchings_identical": sparse_asg.pairs == reference_asg.pairs,
    }

    # --- legacy path: one dense networkx call over the whole graph ---
    small = build_clustered_graph(
        legacy_pool, legacy_pool, rng,
        component_size=component_size, edge_prob=edge_prob,
    )
    triples = list(small.triples())
    legacy_s, legacy_asg = _best_of(
        lambda: optimal_assignment(triples, min_score=0.0), repeats
    )
    new_s, new_asg = _best_of(
        lambda: solve(small, backend=exact_backend), repeats
    )
    assert legacy_asg is not None and new_asg is not None
    report["legacy"] = {
        "n_queries": legacy_pool,
        "n_candidates": legacy_pool,
        "n_edges": small.n_edges,
        "legacy_whole_graph_s": legacy_s,
        "componentwise_s": new_s,
        "speedup": legacy_s / new_s if new_s > 0 else float("inf"),
        "legacy_total_score": legacy_asg.total_score,
        "componentwise_total_score": new_asg.total_score,
        "total_scores_match": math.isclose(
            legacy_asg.total_score, new_asg.total_score,
            rel_tol=1e-9, abs_tol=1e-9,
        ),
    }

    # --- scenario precision@1: assignment vs independent ranking -----
    pair = build_scenario(scenario)
    evaluation = evaluate_assignment(
        pair, FTLConfig(), np.random.default_rng(seed)
    )
    report["scenario"] = {"name": scenario, **evaluation.to_dict()}

    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_report(report: dict) -> None:
    solver = report["solver"]
    legacy = report["legacy"]
    scenario = report["scenario"]
    print(
        f"assignment solvers — scipy={report['scipy']}, "
        f"auto -> {report['auto_backend']}"
    )
    print(
        f"{solver['n_queries']}x{solver['n_candidates']} clustered graph: "
        f"{solver['n_edges']} edges (density {solver['density']:.4%}), "
        f"{solver['n_components']} components"
    )
    print(
        f"  {solver['sparse_backend']:<10} {solver['sparse_s']:>9.4f}s   "
        f"reference {solver['reference_s']:>9.4f}s   "
        f"speedup {solver['speedup']:>6.1f}x   "
        f"identical={solver['matchings_identical']}"
    )
    print(
        f"{legacy['n_queries']}x{legacy['n_candidates']} legacy whole-graph: "
        f"{legacy['legacy_whole_graph_s']:.4f}s vs component-wise "
        f"{legacy['componentwise_s']:.4f}s "
        f"({legacy['speedup']:.1f}x, scores match={legacy['total_scores_match']})"
    )
    p = scenario["precision_at_1"]
    print(
        f"scenario {scenario['name']}: precision@1 "
        f"independent={p['independent']:.3f} "
        f"assignment={p['assignment']:.3f} "
        f"(n={scenario['n_evaluated']}, solver={scenario['solver']})"
    )


def test_assign_benchmark(benchmark):
    """Full-size leg: 5k x 5k, sparse >= 5x over the dense reference."""
    report = benchmark.pedantic(
        run_assign_benchmark,
        kwargs={"solver_pool": 5_000, "legacy_pool": 300},
        rounds=1,
        iterations=1,
    )
    _print_report(report)
    solver = report["solver"]
    assert solver["density"] < 0.05
    assert solver["matchings_identical"]
    if report["scipy"]:
        assert solver["speedup"] >= 5.0, solver["speedup"]
    assert report["legacy"]["total_scores_match"]
    p = report["scenario"]["precision_at_1"]
    assert p["assignment"] >= p["independent"]


if __name__ == "__main__":
    _print_report(run_assign_benchmark())
