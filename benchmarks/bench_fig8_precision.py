"""Fig. 8: FTL vs P2T/DTW/LCSS/EDR precision under down-sampling.

Panel (a): high sampling rates on a dense 2-day split pair — all
methods should do well near rate 1, with P2T/DTW degrading first as
the data thins.

Panel (b): very low rates (0.08 -> 0.02) on a very dense 7-day split
pair — LCSS/EDR collapse while FTL stays high (the paper's headline
robustness claim: FTL > 80% at rate 0.02).
"""

import numpy as np

from benchmarks.conftest import is_full_scale, cached_scenario, print_header
from repro.pipeline.precision_eval import (
    evaluate_at_rate,
    format_precision,
    run_precision_comparison,
)

HIGH_RATES = (1.0, 0.6, 0.3, 0.1)
LOW_RATES = (0.08, 0.04, 0.02)


def _panel_params():
    if is_full_scale():
        return {"n_queries": 100, "max_points": 200}
    return {"n_queries": 15, "max_points": 100}


def test_fig8a_high_rates(benchmark, config):
    name = "FIG8A" if is_full_scale() else "FIG8A-mini"
    pair = cached_scenario(name)
    params = _panel_params()
    rng = np.random.default_rng(8)
    query_ids = pair.sample_queries(
        min(params["n_queries"], len(pair.matched_query_ids())), rng
    )

    # Benchmark one representative column (the sparsest, cheapest one).
    benchmark.pedantic(
        evaluate_at_rate,
        args=(pair, HIGH_RATES[-1], query_ids, config, rng),
        kwargs={"max_points": params["max_points"]},
        rounds=1,
        iterations=1,
    )

    results = run_precision_comparison(
        pair, config, rng, rates=HIGH_RATES,
        n_queries=params["n_queries"], max_points=params["max_points"],
    )
    print_header(f"Fig. 8(a): high sampling rates on {name}")
    print(format_precision(results))

    dense, sparse = results[0], results[-1]
    # At rate 1 everything works; FTL must stay strong at rate 0.1 while
    # the point-matching P2T degrades.
    assert dense.precision["FTL"] >= 0.8
    assert sparse.precision["FTL"] >= 0.8
    assert sparse.precision["P2T"] <= dense.precision["P2T"] + 0.1


def test_fig8b_low_rates(benchmark, config):
    name = "FIG8B" if is_full_scale() else "FIG8B-mini"
    pair = cached_scenario(name)
    params = _panel_params()
    rng = np.random.default_rng(9)
    query_ids = pair.sample_queries(
        min(params["n_queries"], len(pair.matched_query_ids())), rng
    )

    benchmark.pedantic(
        evaluate_at_rate,
        args=(pair, LOW_RATES[-1], query_ids, config, rng),
        kwargs={"max_points": params["max_points"]},
        rounds=1,
        iterations=1,
    )

    results = run_precision_comparison(
        pair, config, rng, rates=LOW_RATES,
        n_queries=params["n_queries"], max_points=params["max_points"],
    )
    print_header(f"Fig. 8(b): very low sampling rates on {name}")
    print(format_precision(results))

    final = results[-1]
    # The headline claim: FTL stays above 80% even at 2% sampling, and
    # beats every similarity baseline there.
    assert final.precision["FTL"] >= 0.8
    for baseline in ("P2T", "DTW", "LCSS", "EDR"):
        assert final.precision["FTL"] >= final.precision[baseline]
