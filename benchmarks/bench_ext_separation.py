"""Extension bench: threshold-free score separation (ROC AUC) per config.

The paper compares operating points; the AUC of the Eq. 2 score and of
the Naive-Bayes log-likelihood ratio gives a single threshold-free
quality number per dataset config, making the Fig. 5 trends (rate up =>
easier, duration up => easier) visible in one table.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    cached_scenario,
    n_queries_default,
    print_header,
    scale_name,
)
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.score_analysis import (
    format_separation,
    separation_from_evidence,
)

GROUPS = [
    ("S-data", ["SA", "SB", "SC", "SD", "SE", "SF"]),
    ("T-data", ["TA", "TB", "TC", "TD", "TE", "TF"]),
]


@pytest.mark.parametrize("title,names", GROUPS)
def test_score_separation(benchmark, config, title, names):
    n_queries = min(n_queries_default(), 25)

    def run_all():
        separations = {}
        for name in names:
            scaled = scale_name(name)
            pair = cached_scenario(scaled)
            rng = np.random.default_rng(41)
            mr, ma = fit_model_pair(pair, config, rng)
            n = min(n_queries, len(pair.matched_query_ids()))
            qids = pair.sample_queries(n, rng)
            evidence = collect_evidence(pair, qids, mr, ma)
            separations[scaled] = separation_from_evidence(
                evidence, pair.truth
            )
        return separations

    separations = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header(f"Score separation (Eq. 2 AUC), {title}")
    print(format_separation(separations))

    aucs = {name: sep.auc for name, sep in separations.items()}
    # Every config must separate far better than chance, and the
    # easiest config of each sweep must not trail the hardest.
    for name, auc in aucs.items():
        assert auc > 0.75, f"{name}: AUC {auc}"
    ordered = [aucs[scale_name(n)] for n in names[:3]]  # rate sweep A..C
    assert ordered[-1] >= ordered[0] - 0.05
