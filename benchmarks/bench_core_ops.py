"""Micro-benchmarks of the FTL hot paths.

These use pytest-benchmark's statistical timing (many rounds) on the
operations that dominate query latency: mutual-segment profile
extraction, Poisson-Binomial tail evaluation, and single-pair decisions
of both matchers.
"""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.alignment import mutual_segment_profile
from repro.core.filtering import AlphaFilter
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.core.trajectory import Trajectory
from repro.stats.poisson_binomial import PoissonBinomial


@pytest.fixture(scope="module")
def config():
    return FTLConfig()


@pytest.fixture(scope="module")
def traj_pair():
    rng = np.random.default_rng(0)

    def make(n, tid):
        ts = np.sort(rng.uniform(0, 7 * 86400.0, n))
        return Trajectory(ts, rng.uniform(0, 45_000, n),
                          rng.uniform(0, 25_000, n), tid)

    return make(300, "p"), make(200, "q")


@pytest.fixture(scope="module")
def models(config):
    rng = np.random.default_rng(1)

    def make_db(prefix, n_traj):
        from repro.core.database import TrajectoryDatabase

        trajs = []
        for i in range(n_traj):
            n = 120
            ts = np.sort(rng.uniform(0, 5 * 86400.0, n))
            xs = 20_000 + np.cumsum(rng.normal(0, 80, n))
            ys = 12_000 + np.cumsum(rng.normal(0, 80, n))
            trajs.append(Trajectory(ts, xs, ys, f"{prefix}{i}"))
        return TrajectoryDatabase(trajs)

    p_db, q_db = make_db("p", 15), make_db("q", 15)
    mr = CompatibilityModel.fit_rejection([p_db, q_db], config)
    ma = CompatibilityModel.fit_acceptance([p_db, q_db], config, rng)
    return mr, ma


def test_mutual_segment_profile_speed(benchmark, traj_pair, config):
    p, q = traj_pair
    profile = benchmark(mutual_segment_profile, p, q, config)
    assert profile.n_total > 0


def test_pb_tail_dp_speed(benchmark):
    rng = np.random.default_rng(2)
    ps = rng.uniform(0.01, 0.6, 150)
    value = benchmark(lambda: PoissonBinomial(ps).sf(40))
    assert 0.0 <= value <= 1.0


def test_pb_tail_normal_speed(benchmark):
    rng = np.random.default_rng(2)
    ps = rng.uniform(0.01, 0.6, 150)
    value = benchmark(lambda: PoissonBinomial(ps, backend="normal").sf(40))
    assert 0.0 <= value <= 1.0


def test_alpha_filter_pair_decision_speed(benchmark, traj_pair, models):
    p, q = traj_pair
    mr, ma = models
    matcher = AlphaFilter(mr, ma, 0.05, 0.05)
    decision = benchmark(matcher.decide, p, q)
    assert decision.n_mutual >= 0


def test_naive_bayes_pair_decision_speed(benchmark, traj_pair, models):
    p, q = traj_pair
    mr, ma = models
    matcher = NaiveBayesMatcher(mr, ma, 0.05)
    decision = benchmark(matcher.decide, p, q)
    assert decision.n_mutual >= 0


def test_streaming_insert_speed(benchmark, traj_pair, config):
    """Per-record cost of incremental evidence maintenance."""
    from repro.core.streaming import SOURCE_P, SOURCE_Q, StreamingPairEvidence

    p, q = traj_pair

    def build():
        evidence = StreamingPairEvidence(config)
        evidence.extend(p, SOURCE_P)
        evidence.extend(q, SOURCE_Q)
        return evidence

    evidence = benchmark(build)
    assert evidence.n_records == len(p) + len(q)


def test_model_fit_speed(benchmark, config):
    rng = np.random.default_rng(3)
    from repro.core.database import TrajectoryDatabase

    trajs = []
    for i in range(30):
        n = 150
        ts = np.sort(rng.uniform(0, 5 * 86400.0, n))
        trajs.append(
            Trajectory(ts, rng.uniform(0, 45_000, n), rng.uniform(0, 25_000, n), i)
        )
    db = TrajectoryDatabase(trajs)
    model = benchmark(CompatibilityModel.fit_rejection, [db], config)
    assert model.n_segments > 0
