"""Ablation: robustness to non-Poisson service access.

Section VI models service access as Poisson; real usage is bursty
(sessions of several events) and heterogeneous (heavy vs light users).
This ablation regenerates one paired scenario under increasingly
non-Poisson access — same mean rates — and reports the Eq. 2 AUC.

Finding: rate heterogeneity is benign, but *burstiness* measurably
degrades linking at a fixed mean rate — events concentrated in sessions
produce mostly same-source adjacencies (self-segments) and long dead
gaps, so far fewer informative mutual segments survive.  Practically:
what matters for FTL feasibility is the *session* rate, not the raw
event rate, sharpening Section VI's guidance for bursty services.
"""

import numpy as np

from benchmarks.conftest import print_header
from repro.geo.units import days_to_seconds
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.score_analysis import separation_from_evidence
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import make_paired_databases

VARIANTS = [
    ("poisson", {}),
    ("bursty x3", {"burst_mean": 3.0}),
    ("bursty x8", {"burst_mean": 8.0}),
    ("dispersed", {"rate_dispersion": 1.0}),
    ("bursty+disp", {"burst_mean": 4.0, "rate_dispersion": 1.0}),
]
N_QUERIES = 25


def test_access_pattern_robustness(benchmark, config):
    base_rng = np.random.default_rng(67)
    city = CityModel.generate(base_rng)
    agents = generate_population(city, 50, days_to_seconds(7), base_rng)

    def run_all():
        rows = {}
        for label, kwargs in VARIANTS:
            rng = np.random.default_rng(68)
            pair = make_paired_databases(
                agents,
                ObservationService("P", 0.55, GaussianNoise(50.0), **kwargs),
                ObservationService("Q", 0.18, GaussianNoise(50.0), **kwargs),
                rng,
            )
            mr, ma = fit_model_pair(pair, config, rng)
            n = min(N_QUERIES, len(pair.matched_query_ids()))
            qids = pair.sample_queries(n, rng)
            evidence = collect_evidence(pair, qids, mr, ma)
            rows[label] = separation_from_evidence(evidence, pair.truth)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header("Ablation: non-Poisson access patterns (same mean rates)")
    print(f"{'pattern':<14} {'Eq.2 AUC':>9} {'true med':>9} {'false med':>10}")
    for label, sep in rows.items():
        print(f"{label:<14} {sep.auc:>9.4f} {sep.true_median:>9.4f} "
              f"{sep.false_median:>10.4f}")

    # Poisson access is easy; heterogeneity costs little; burstiness
    # degrades monotonically with session size (see module docstring).
    assert rows["poisson"].auc > 0.95
    assert rows["dispersed"].auc > 0.8
    assert (
        rows["poisson"].auc
        > rows["bursty x3"].auc
        > rows["bursty x8"].auc
        > 0.5
    )