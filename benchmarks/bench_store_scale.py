"""Store bench: cold-start and pruning at 10k/100k/1M trajectories.

Two claims back :mod:`repro.store`:

* **Cold start** — a daemon restart over a CSV corpus pays a full
  parse; over a store it opens a manifest and memmaps a handful of
  flat arrays, leaving the page cache to fault data in on demand.
  The bench times both paths on identical databases.
* **Pruning** — the persisted spatio-temporal index must keep strictly
  fewer candidates than temporal-only blocking at equal recall (the
  queries are jittered copies of stored trajectories, so the true
  candidate is always reachable and both paths must retain it).

Trajectories are vectorised random walks over a large planar region —
synthetic on purpose: generation must stay cheap at a million
trajectories so the bench measures the store, not the mobility
simulator.  The 1M leg is where the mmap story pays off: the CSV path
re-parses twelve million rows on every restart, the store path opens a
manifest and faults pages on demand.

Results are written to ``BENCH_store.json``.  Run standalone
(``python -m benchmarks.bench_store_scale``) or through pytest; the
tier-1 suite exercises a tiny smoke configuration on every run.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.store import TrajectoryStore, open_store
from repro.store.stindex import SpatioTemporalIndex

DEFAULT_OUT = "BENCH_store.json"

#: Region edge in metres (a ~400 km square keeps the geo-grid sparse).
_EXTENT_M = 400_000.0
#: Observation window in seconds.
_WINDOW_S = 86_400.0


def build_synthetic_db(
    n_trajectories: int,
    rng: np.random.Generator,
    records_per_traj: int = 12,
    name: str = "synth",
) -> TrajectoryDatabase:
    """A database of ``n_trajectories`` vectorised random walks.

    All timestamps and positions are drawn in two big array operations;
    per-trajectory work is only slicing, so 100k trajectories build in
    seconds.  Walk steps are ~100 m, far below the index's reachability
    radius, so a jittered copy of any trajectory stays findable.
    """
    m = records_per_traj
    t0 = rng.uniform(0.0, _WINDOW_S * 0.8, size=n_trajectories)
    dts = rng.exponential(scale=300.0, size=(n_trajectories, m))
    ts = t0[:, None] + np.cumsum(dts, axis=1)
    origins = rng.uniform(0.0, _EXTENT_M, size=(n_trajectories, 2))
    steps = rng.normal(0.0, 100.0, size=(n_trajectories, m, 2))
    xy = origins[:, None, :] + np.cumsum(steps, axis=1)
    db = TrajectoryDatabase(name=name)
    for i in range(n_trajectories):
        db.add(
            Trajectory.from_arrays_unchecked(
                np.ascontiguousarray(ts[i]),
                np.ascontiguousarray(xy[i, :, 0]),
                np.ascontiguousarray(xy[i, :, 1]),
                f"s{i}",
            )
        )
    return db


def _jittered_query(traj: Trajectory, rng: np.random.Generator) -> Trajectory:
    """A noisy re-observation of ``traj`` (the linkable true match)."""
    ts = np.sort(traj.ts + rng.uniform(0.0, 30.0, size=len(traj)))
    xs = traj.xs + rng.normal(0.0, 50.0, size=len(traj))
    ys = traj.ys + rng.normal(0.0, 50.0, size=len(traj))
    return Trajectory(ts, xs, ys, f"q-{traj.traj_id}", sort=True)


def _time_cold_start(db: TrajectoryDatabase, tmp_dir: Path, repeats: int):
    """Seconds to first usable database: CSV parse vs store open."""
    csv_path = tmp_dir / "db.csv"
    store_dir = tmp_dir / "db-store"
    write_trajectories_csv(db, csv_path)
    TrajectoryStore.create(store_dir, db=db, name=db.name)

    csv_s = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        parsed = read_trajectories_csv(csv_path, name=db.name)
        csv_s = min(csv_s, time.perf_counter() - start)
    assert len(parsed) == len(db)

    store_s = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        opened = open_store(store_dir).load()
        store_s = min(store_s, time.perf_counter() - start)
    assert len(opened) == len(db)
    return csv_s, store_s, store_dir


def run_store_scale_benchmark(
    sizes: tuple[int, ...] = (10_000, 100_000, 1_000_000),
    n_queries: int = 50,
    records_per_traj: int = 12,
    vmax_kph: float = 120.0,
    reach_gap_s: float = 300.0,
    seed: int = 11,
    repeats: int = 3,
    work_dir: str | Path | None = None,
    out_path: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Cold-start and pruning measurements per corpus size.

    For each size: build a synthetic database, persist it as CSV and as
    a store, time both cold-start paths (min of ``repeats``), build the
    spatio-temporal index, and compare temporal-only blocking against
    spatio-temporal blocking over jittered-copy queries.  Recall is the
    fraction of queries whose true source trajectory survives the
    prefilter — both paths must stay at 1.0 for the pruning comparison
    to be fair.

    Returns (and optionally writes as JSON) a dict keyed by size with
    timings, kept-candidate counts and recalls.
    """
    import tempfile

    rng = np.random.default_rng(seed)
    report: dict = {
        "seed": seed,
        "repeats": repeats,
        "n_queries": n_queries,
        "records_per_traj": records_per_traj,
        "vmax_kph": vmax_kph,
        "reach_gap_s": reach_gap_s,
        "sizes": {},
    }
    with tempfile.TemporaryDirectory(
        dir=None if work_dir is None else str(work_dir)
    ) as tmp:
        for size in sizes:
            tmp_dir = Path(tmp) / f"n{size}"
            tmp_dir.mkdir()
            db = build_synthetic_db(
                size, rng, records_per_traj=records_per_traj
            )
            csv_s, store_s, store_dir = _time_cold_start(db, tmp_dir, repeats)

            store = open_store(store_dir)
            build_start = time.perf_counter()
            index = store.build_index(
                vmax_kph=vmax_kph, reach_gap_s=reach_gap_s
            )
            index_build_s = time.perf_counter() - build_start
            assert isinstance(index, SpatioTemporalIndex)

            picks = rng.choice(len(db), size=min(n_queries, len(db)),
                               replace=False)
            ids = db.ids()
            kept_t = kept_st = 0
            hits_t = hits_st = 0
            query_s = 0.0
            for pick in picks:
                true_id = ids[int(pick)]
                query = _jittered_query(db[true_id], rng)
                temporal = set(index.temporal_ids_for(query))
                start = time.perf_counter()
                spatiotemporal = set(index.ids_for(query))
                query_s += time.perf_counter() - start
                assert spatiotemporal <= temporal, (
                    "spatio-temporal blocking must refine temporal blocking"
                )
                kept_t += len(temporal)
                kept_st += len(spatiotemporal)
                hits_t += true_id in temporal
                hits_st += true_id in spatiotemporal
            n = len(picks)
            report["sizes"][str(size)] = {
                "n_trajectories": len(db),
                "n_records": sum(len(t) for t in db),
                "csv_parse_s": csv_s,
                "store_open_s": store_s,
                "cold_start_speedup": (
                    csv_s / store_s if store_s > 0 else float("inf")
                ),
                "index_build_s": index_build_s,
                "st_query_mean_ms": 1e3 * query_s / n,
                "mean_kept_temporal": kept_t / n,
                "mean_kept_spatiotemporal": kept_st / n,
                "pruning_ratio": kept_t / kept_st if kept_st else float("inf"),
                "recall_temporal": hits_t / n,
                "recall_spatiotemporal": hits_st / n,
            }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_report(report: dict) -> None:
    print(
        f"store cold-start + pruning — {report['n_queries']} queries, "
        f"reach_gap={report['reach_gap_s']:g}s, vmax={report['vmax_kph']:g}kph"
    )
    head = (f"{'size':>8} {'csv (s)':>9} {'store (s)':>10} {'speedup':>9} "
            f"{'kept T':>8} {'kept ST':>8} {'prune':>7} {'recall':>7}")
    print(head)
    for size, row in report["sizes"].items():
        print(
            f"{size:>8} {row['csv_parse_s']:>9.3f} "
            f"{row['store_open_s']:>10.4f} "
            f"{row['cold_start_speedup']:>8.1f}x "
            f"{row['mean_kept_temporal']:>8.1f} "
            f"{row['mean_kept_spatiotemporal']:>8.1f} "
            f"{row['pruning_ratio']:>6.1f}x "
            f"{row['recall_spatiotemporal']:>7.2f}"
        )


def test_store_scale(benchmark):
    """Full-size bench up to 1M: >= 10x cold start, ST strictly tighter."""
    report = benchmark.pedantic(
        run_store_scale_benchmark,
        kwargs={"sizes": (10_000, 100_000, 1_000_000)},
        rounds=1,
        iterations=1,
    )
    _print_report(report)
    for size in ("100000", "1000000"):
        assert report["sizes"][size]["cold_start_speedup"] >= 10.0, size
    for row in report["sizes"].values():
        assert row["recall_spatiotemporal"] == row["recall_temporal"] == 1.0
        assert row["mean_kept_spatiotemporal"] < row["mean_kept_temporal"]


if __name__ == "__main__":
    _print_report(run_store_scale_benchmark())
