"""Fig. 4: fX(x) vs Poisson approximations.

Reproduces both panels — (lam_p, lam_q) = (0.5, 2) and (4, 10) — printing
the exact pmf ``fX``, a Poisson of the *same* mean, and the paper's
approximation ``Pois(E^(X))``, plus a Monte-Carlo check.  The benchmark
measures the exact pmf computation.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.stats.theory import (
    expected_mutual_segments,
    expected_mutual_segments_approx,
    mutual_segment_count_pmf,
    mutual_segment_count_pmf_poisson,
    poisson_pmf,
    simulate_mutual_segment_counts,
)

PANELS = [
    ("Fig. 4(a)", 0.5, 2.0, 6),
    ("Fig. 4(b)", 4.0, 10.0, 14),
]


@pytest.mark.parametrize("panel,lam_p,lam_q,max_x", PANELS)
def test_fig4(benchmark, panel, lam_p, lam_q, max_x):
    fx = benchmark(mutual_segment_count_pmf, lam_p, lam_q, max_x)
    exact_mean = expected_mutual_segments(lam_p, lam_q)
    approx_mean = expected_mutual_segments_approx(lam_p, lam_q)
    same_mean_pois = poisson_pmf(exact_mean, np.arange(max_x + 1))
    fhat = mutual_segment_count_pmf_poisson(lam_p, lam_q, max_x)
    rng = np.random.default_rng(0)
    sim = simulate_mutual_segment_counts(lam_p, lam_q, 40_000, rng)

    print_header(f"{panel}: lam_p={lam_p}, lam_q={lam_q}")
    print(f"E(X) exact = {exact_mean:.4f}   E^(X) = {approx_mean:.4f}")
    print(f"{'x':>3} {'fX(x)':>9} {'Pois(E)':>9} {'Pois(E^)':>9} {'MC':>9}")
    for x in range(max_x + 1):
        mc = float((sim == x).mean())
        print(f"{x:>3} {fx[x]:>9.5f} {same_mean_pois[x]:>9.5f} "
              f"{fhat[x]:>9.5f} {mc:>9.5f}")

    # Paper claims: fX and the approximations share the trend, f^X is
    # slightly right-biased, and the bias shrinks for larger rates.
    # fx is truncated at max_x; the remaining mass must be tiny.
    assert 0.999 < fx.sum() <= 1.0 + 1e-9
    mc_mean = sim.mean()
    assert abs(mc_mean - exact_mean) < 0.05 * max(1.0, exact_mean)
    assert approx_mean > exact_mean

    def relative_bias(a, b):
        exact = expected_mutual_segments(a, b)
        return (expected_mutual_segments_approx(a, b) - exact) / exact

    # The *relative* bias of f^X shrinks as the rates grow (panel (b)
    # visibly hugs fX much more closely than panel (a)).
    assert relative_bias(4.0, 10.0) < relative_bias(0.5, 2.0)


def test_fig4_length_distribution(benchmark):
    """Corollary 6.2 companion: mutual-segment lengths are exponential."""
    lam_p, lam_q = 0.5, 2.0
    rng = np.random.default_rng(1)

    from repro.stats.theory import (
        mutual_segment_length_pdf,
        simulate_mutual_segment_lengths,
    )

    lengths = benchmark(
        simulate_mutual_segment_lengths, lam_p, lam_q, 20_000.0, rng
    )
    print_header("Problem 3: mutual segment length distribution")
    edges = np.linspace(0, 2.0, 9)
    centres = (edges[:-1] + edges[1:]) / 2
    hist, _ = np.histogram(lengths, bins=edges, density=True)
    pdf = mutual_segment_length_pdf(lam_p, lam_q, centres)
    print(f"{'y':>6} {'gY(y)':>9} {'MC density':>11}")
    for y, g, h in zip(centres, pdf, hist):
        print(f"{y:>6.3f} {g:>9.4f} {h:>11.4f}")
    assert lengths.mean() == pytest.approx(1 / (lam_p + lam_q), rel=0.05)
