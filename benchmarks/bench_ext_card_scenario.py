"""Extension bench: the paper's flagship pairing, end to end.

Runs the faithful transit simulation (card taps at stops vs
tower-snapped CDR pings, CARD-mini) through the Fig. 5 tradeoff and the
Eq. 2 separation analysis — the closest this reproduction gets to the
paper's motivating Fig. 1 scenario with fully modelled data-generating
processes on both sides.
"""

import numpy as np

from benchmarks.conftest import cached_scenario, print_header
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.score_analysis import separation_from_evidence
from repro.pipeline.tradeoff import format_tradeoff, tradeoff_from_evidence


def test_card_vs_cdr_scenario(benchmark, config):
    pair = cached_scenario("CARD-mini")
    rng = np.random.default_rng(71)
    mr, ma = fit_model_pair(pair, config, rng)
    qids = pair.sample_queries(min(25, len(pair.truth)), rng)
    evidence = benchmark.pedantic(
        collect_evidence, args=(pair, qids, mr, ma), rounds=1, iterations=1
    )

    curves = tradeoff_from_evidence(evidence, pair.truth)
    separation = separation_from_evidence(evidence, pair.truth)

    print_header("Flagship scenario: commuting-card taps vs CDR (CARD-mini)")
    print(f"cards: {len(pair.p_db)} ({pair.p_db.total_records()} taps)  "
          f"subscribers: {len(pair.q_db)} "
          f"({pair.q_db.total_records()} pings)")
    print(f"Eq. 2 AUC: {separation.auc:.4f}\n")
    print(format_tradeoff(curves))

    # Four taps a day against tower-snapped CDR must link near-perfectly
    # over two weeks (the paper's privacy warning, quantified).
    best_nb = max(p.perceptiveness for p in curves["naive-bayes"])
    assert best_nb >= 0.9
    assert separation.auc >= 0.95