"""A SQLite-backed trajectory store.

Real deployments hold each provider's records in a relational database
(the paper's Singapore data "were originally stored in two databases").
:class:`SQLiteTrajectoryStore` mirrors that: named databases of
trajectories persisted in one SQLite file, with indexed point storage
and time-window queries — so large scenarios can be generated once and
reloaded cheaply.

For plain save/load round-trips, prefer the format registry
(:func:`repro.io.load_database` / :func:`repro.io.save_database`),
which routes ``.sqlite``/``.db`` paths here; for serving-scale corpora
use the mmap-backed :mod:`repro.store`, which this store's row layout
cannot match on cold-start time.

Schema::

    databases(db_id INTEGER PK, name TEXT UNIQUE)
    trajectories(traj_pk INTEGER PK, db_id INTEGER, traj_id TEXT,
                 UNIQUE(db_id, traj_id))
    points(traj_pk INTEGER, t REAL, x REAL, y REAL)
      + index on (traj_pk, t)
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import DataFormatError, ValidationError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS databases (
    db_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS trajectories (
    traj_pk INTEGER PRIMARY KEY,
    db_id INTEGER NOT NULL REFERENCES databases(db_id) ON DELETE CASCADE,
    traj_id TEXT NOT NULL,
    UNIQUE (db_id, traj_id)
);
CREATE TABLE IF NOT EXISTS points (
    traj_pk INTEGER NOT NULL REFERENCES trajectories(traj_pk) ON DELETE CASCADE,
    t REAL NOT NULL,
    x REAL NOT NULL,
    y REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_points_traj_t ON points (traj_pk, t);
"""


class SQLiteTrajectoryStore:
    """Store/load named trajectory databases in one SQLite file.

    Usable as a context manager::

        with SQLiteTrajectoryStore("scenario.db") as store:
            store.save(pair.p_db, "P")
            store.save(pair.q_db, "Q")

    ``":memory:"`` gives an ephemeral store for tests.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = str(path)
        self._conn = sqlite3.connect(self._path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteTrajectoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self, db: TrajectoryDatabase, name: str, replace: bool = False
    ) -> int:
        """Persist a database under ``name``; returns points written.

        Raises unless ``replace=True`` when the name already exists.
        """
        if not name:
            raise ValidationError("database name must be non-empty")
        cur = self._conn.cursor()
        existing = cur.execute(
            "SELECT db_id FROM databases WHERE name = ?", (name,)
        ).fetchone()
        if existing is not None:
            if not replace:
                raise ValidationError(
                    f"database {name!r} already stored (pass replace=True)"
                )
            cur.execute("DELETE FROM databases WHERE db_id = ?", (existing[0],))
        cur.execute("INSERT INTO databases (name) VALUES (?)", (name,))
        db_id = cur.lastrowid
        n_points = 0
        for traj in db:
            cur.execute(
                "INSERT INTO trajectories (db_id, traj_id) VALUES (?, ?)",
                (db_id, str(traj.traj_id)),
            )
            traj_pk = cur.lastrowid
            cur.executemany(
                "INSERT INTO points (traj_pk, t, x, y) VALUES (?, ?, ?, ?)",
                (
                    (traj_pk, float(t), float(x), float(y))
                    for t, x, y in zip(traj.ts, traj.xs, traj.ys)
                ),
            )
            n_points += len(traj)
        self._conn.commit()
        return n_points

    def delete(self, name: str) -> None:
        """Remove a stored database and all its points."""
        cur = self._conn.execute("DELETE FROM databases WHERE name = ?", (name,))
        self._conn.commit()
        if cur.rowcount == 0:
            raise ValidationError(f"no stored database named {name!r}")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All stored database names, sorted."""
        rows = self._conn.execute("SELECT name FROM databases ORDER BY name")
        return [row[0] for row in rows]

    def _db_id(self, name: str) -> int:
        row = self._conn.execute(
            "SELECT db_id FROM databases WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise DataFormatError(f"no stored database named {name!r}")
        return int(row[0])

    def load(
        self,
        name: str,
        start_t: float | None = None,
        end_t: float | None = None,
    ) -> TrajectoryDatabase:
        """Load a database, optionally restricted to a time window.

        ``start_t`` / ``end_t`` bound the record timestamps
        (inclusive / exclusive); trajectories with no in-window records
        are omitted.
        """
        db_id = self._db_id(name)
        out = TrajectoryDatabase(name=name)
        for traj_pk, traj_id in self._conn.execute(
            "SELECT traj_pk, traj_id FROM trajectories WHERE db_id = ? "
            "ORDER BY traj_pk",
            (db_id,),
        ).fetchall():
            clauses = ["traj_pk = ?"]
            params: list[object] = [traj_pk]
            if start_t is not None:
                clauses.append("t >= ?")
                params.append(start_t)
            if end_t is not None:
                clauses.append("t < ?")
                params.append(end_t)
            rows = self._conn.execute(
                f"SELECT t, x, y FROM points WHERE {' AND '.join(clauses)} "
                "ORDER BY t",
                params,
            ).fetchall()
            if not rows:
                continue
            data = np.asarray(rows, dtype=np.float64)
            out.add(Trajectory(data[:, 0], data[:, 1], data[:, 2], traj_id))
        return out

    def count_points(self, name: str) -> int:
        """Number of stored records in a database."""
        db_id = self._db_id(name)
        row = self._conn.execute(
            "SELECT COUNT(*) FROM points p JOIN trajectories tr "
            "ON p.traj_pk = tr.traj_pk WHERE tr.db_id = ?",
            (db_id,),
        ).fetchone()
        return int(row[0])
