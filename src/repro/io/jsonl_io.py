"""JSONL interchange for trajectories and JSON snapshots for models.

JSONL stores one trajectory per line — convenient for streaming large
databases — and fitted :class:`~repro.core.models.CompatibilityModel`
objects round-trip through plain JSON files, so expensive model fits
can be cached between runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.database import TrajectoryDatabase
from repro.core.models import CompatibilityModel
from repro.core.trajectory import Trajectory
from repro.errors import DataFormatError


def write_trajectories_jsonl(db: TrajectoryDatabase, path: str | Path) -> int:
    """Write one trajectory per line; returns the number of lines."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for traj in db:
            payload = {
                "traj_id": traj.traj_id,
                "t": traj.ts.tolist(),
                "x": traj.xs.tolist(),
                "y": traj.ys.tolist(),
            }
            handle.write(json.dumps(payload) + "\n")
            count += 1
    return count


def read_trajectories_jsonl(
    path: str | Path, name: str = "", sort: bool = True
) -> TrajectoryDatabase:
    """Load a database written by :func:`write_trajectories_jsonl`."""
    path = Path(path)
    db = TrajectoryDatabase(name=name)
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                db.add(
                    Trajectory(
                        payload["t"],
                        payload["x"],
                        payload["y"],
                        payload["traj_id"],
                        sort=sort,
                    )
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise DataFormatError(f"{path}:{line_no}: {exc}") from exc
    return db


def save_model_json(model: CompatibilityModel, path: str | Path) -> None:
    """Persist a fitted model (counts + config) as JSON."""
    Path(path).write_text(json.dumps(model.to_dict(), indent=2))


def load_model_json(path: str | Path) -> CompatibilityModel:
    """Load a model saved by :func:`save_model_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path}: not valid JSON: {exc}") from exc
    return CompatibilityModel.from_dict(payload)
