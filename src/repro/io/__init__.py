"""Persistence: CSV / JSONL trajectory interchange and a SQLite store."""

from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.io.jsonl_io import (
    load_model_json,
    read_trajectories_jsonl,
    save_model_json,
    write_trajectories_jsonl,
)
from repro.io.sqlite_store import SQLiteTrajectoryStore

__all__ = [
    "SQLiteTrajectoryStore",
    "load_model_json",
    "read_trajectories_csv",
    "read_trajectories_jsonl",
    "save_model_json",
    "write_trajectories_csv",
    "write_trajectories_jsonl",
]
