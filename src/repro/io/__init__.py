"""Persistence: one loader registry over CSV / JSONL / SQLite / mmap store.

:func:`load_database` / :func:`save_database` are the documented way to
persist a :class:`~repro.core.database.TrajectoryDatabase`; the
format-specific helpers remain available for code that needs their
extra knobs (time-window SQLite loads, store compaction, ...).
"""

from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.io.jsonl_io import (
    load_model_json,
    read_trajectories_jsonl,
    save_model_json,
    write_trajectories_jsonl,
)
from repro.io.registry import (
    FormatSpec,
    detect_format,
    format_names,
    load_database,
    register_format,
    save_database,
)
from repro.io.sqlite_store import SQLiteTrajectoryStore

__all__ = [
    "FormatSpec",
    "SQLiteTrajectoryStore",
    "detect_format",
    "format_names",
    "load_database",
    "load_model_json",
    "read_trajectories_csv",
    "read_trajectories_jsonl",
    "register_format",
    "save_database",
    "save_model_json",
    "write_trajectories_csv",
    "write_trajectories_jsonl",
]
