"""One documented way to persist a trajectory database.

Four persistence backends accumulated organically (CSV, JSONL, SQLite,
and the mmap store), each with its own entry points.  This registry
routes them through a single pair of calls::

    from repro.io import load_database, save_database

    db = load_database("scenario/Q.csv")          # format by suffix
    save_database(db, "q-store", fmt="store")     # or explicitly

Formats self-describe their suffixes, so :func:`detect_format` resolves
most paths without a ``fmt`` argument; a directory is recognised as an
``ftl-store`` when it carries a store manifest.  New backends register
with :func:`register_format` — the CLI and docs then pick them up for
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.database import TrajectoryDatabase
from repro.errors import ValidationError


@dataclass(frozen=True)
class FormatSpec:
    """One registered persistence backend.

    ``reader(path, name)`` returns a database; ``writer(db, path)``
    persists one and returns the number of records written.  ``is_dir``
    marks directory-shaped formats (matched by :func:`detect_format`
    via ``probe`` rather than suffix).
    """

    name: str
    suffixes: tuple[str, ...]
    reader: Callable[[Path, str], TrajectoryDatabase]
    writer: Callable[[TrajectoryDatabase, Path], int]
    is_dir: bool = False
    probe: Callable[[Path], bool] | None = None


_REGISTRY: dict[str, FormatSpec] = {}


def register_format(spec: FormatSpec) -> None:
    """Register (or replace) a persistence backend."""
    _REGISTRY[spec.name] = spec


def format_names() -> tuple[str, ...]:
    """Registered format names, sorted."""
    return tuple(sorted(_REGISTRY))


def detect_format(path: str | Path) -> str:
    """The registered format name for a path (suffix or directory probe)."""
    path = Path(path)
    for spec in _REGISTRY.values():
        if spec.probe is not None and spec.probe(path):
            return spec.name
    suffix = path.suffix.lower()
    for spec in _REGISTRY.values():
        if suffix in spec.suffixes:
            return spec.name
    raise ValidationError(
        f"cannot infer a trajectory format for {path} "
        f"(known formats: {', '.join(format_names())}); pass fmt= explicitly"
    )


def _spec(fmt: str) -> FormatSpec:
    try:
        return _REGISTRY[fmt]
    except KeyError:
        raise ValidationError(
            f"unknown format {fmt!r}; known: {', '.join(format_names())}"
        ) from None


def load_database(
    path: str | Path, fmt: str | None = None, name: str = ""
) -> TrajectoryDatabase:
    """Load a trajectory database from any registered format."""
    path = Path(path)
    spec = _spec(fmt if fmt is not None else detect_format(path))
    return spec.reader(path, name)


def save_database(
    db: TrajectoryDatabase, path: str | Path, fmt: str | None = None
) -> int:
    """Persist a database to any registered format; returns records written."""
    path = Path(path)
    spec = _spec(fmt if fmt is not None else detect_format(path))
    return spec.writer(db, path)


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _read_csv(path: Path, name: str) -> TrajectoryDatabase:
    from repro.io.csv_io import read_trajectories_csv

    return read_trajectories_csv(path, name=name)


def _write_csv(db: TrajectoryDatabase, path: Path) -> int:
    from repro.io.csv_io import write_trajectories_csv

    return write_trajectories_csv(db, path)


def _read_jsonl(path: Path, name: str) -> TrajectoryDatabase:
    from repro.io.jsonl_io import read_trajectories_jsonl

    return read_trajectories_jsonl(path, name=name)


def _write_jsonl(db: TrajectoryDatabase, path: Path) -> int:
    from repro.io.jsonl_io import write_trajectories_jsonl

    # write_trajectories_jsonl reports lines (= trajectories); the
    # registry contract is records written.
    write_trajectories_jsonl(db, path)
    return db.total_records()


def _read_sqlite(path: Path, name: str) -> TrajectoryDatabase:
    from repro.io.sqlite_store import SQLiteTrajectoryStore

    with SQLiteTrajectoryStore(path) as store:
        names = store.names()
        if name:
            return store.load(name)
        if len(names) != 1:
            raise ValidationError(
                f"{path} stores {len(names)} databases "
                f"({', '.join(names) or 'none'}); pass name= to choose one"
            )
        return store.load(names[0])


def _write_sqlite(db: TrajectoryDatabase, path: Path) -> int:
    from repro.io.sqlite_store import SQLiteTrajectoryStore

    with SQLiteTrajectoryStore(path) as store:
        return store.save(db, db.name or "default", replace=True)


def _is_store_dir(path: Path) -> bool:
    from repro.store.format import MANIFEST_NAME

    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def _read_store(path: Path, name: str) -> TrajectoryDatabase:
    from repro.store.store import TrajectoryStore

    return TrajectoryStore.open(path).load(name=name or None)


def _write_store(db: TrajectoryDatabase, path: Path) -> int:
    from repro.store.store import TrajectoryStore

    if _is_store_dir(path):
        return TrajectoryStore.open(path).append(db)
    store = TrajectoryStore.create(path, name=db.name)
    return store.append(db)


register_format(
    FormatSpec("csv", (".csv",), _read_csv, _write_csv)
)
register_format(
    FormatSpec("jsonl", (".jsonl", ".ndjson"), _read_jsonl, _write_jsonl)
)
register_format(
    FormatSpec(
        "sqlite", (".sqlite", ".sqlite3", ".db"), _read_sqlite, _write_sqlite
    )
)
register_format(
    FormatSpec(
        "store", (), _read_store, _write_store, is_dir=True, probe=_is_store_dir
    )
)
