"""CSV interchange for trajectory databases.

The format is the long/tidy layout every public check-in or taxi corpus
can be massaged into: one record per row, with columns
``traj_id,t,x,y`` (a header row is required).  Extra columns are
ignored on read, so raw exports with additional attributes load as-is.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import DataFormatError

REQUIRED_COLUMNS = ("traj_id", "t", "x", "y")


def write_trajectories_csv(db: TrajectoryDatabase, path: str | Path) -> int:
    """Write a database to CSV; returns the number of rows written."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(REQUIRED_COLUMNS)
        for traj in db:
            for t, x, y in zip(traj.ts, traj.xs, traj.ys):
                writer.writerow([traj.traj_id, repr(float(t)), repr(float(x)), repr(float(y))])
                rows += 1
    return rows


def read_trajectories_csv(
    path: str | Path, name: str = "", sort: bool = True
) -> TrajectoryDatabase:
    """Load a database from CSV written by :func:`write_trajectories_csv`.

    Rows may appear in any order; records are grouped by ``traj_id``
    and (by default) time-sorted per trajectory.
    """
    path = Path(path)
    grouped: dict[str, list[tuple[float, float, float]]] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataFormatError(f"{path}: empty file")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise DataFormatError(
                f"{path}: missing required columns {missing}; "
                f"found {reader.fieldnames}"
            )
        for line_no, row in enumerate(reader, start=2):
            try:
                record = (float(row["t"]), float(row["x"]), float(row["y"]))
            except (TypeError, ValueError) as exc:
                raise DataFormatError(f"{path}:{line_no}: bad record: {exc}") from exc
            grouped.setdefault(row["traj_id"], []).append(record)
    db = TrajectoryDatabase(name=name)
    for traj_id, records in grouped.items():
        ts, xs, ys = zip(*records)
        db.add(Trajectory(ts, xs, ys, traj_id, sort=sort))
    return db
