"""Poisson-Binomial convolution-DP kernels.

Batch evaluation of many Poisson-Binomial pmfs (one per candidate pair)
by the exact O(n^2) convolution dynamic program.  Inputs arrive with
degenerate trials already factored out (every ``0 < p < 1``), exactly
as :func:`repro.stats.poisson_binomial.pb_pmf_batch` prepares them.

* ``python`` — one scalar DP per variable (the reference
  ``_pmf_dp`` loop).
* ``numpy`` — the rectangular state-matrix DP
  (``_pmf_dp_batch``), one NumPy dispatch per segment index.
* ``numba`` — an ``@njit`` loop running every row's scalar recurrence
  in compiled code; the per-element arithmetic is exactly
  ``new[k] = old[k] * (1 - p) + old[k - 1] * p`` in the same order, so
  the outputs are bit-identical to both other kernels.
"""

from __future__ import annotations

import numpy as np

_NUMBA_DP_KERNEL = None


def _numba_dp_kernel():
    """Build (once) the ``@njit`` flat batched convolution DP."""
    global _NUMBA_DP_KERNEL
    if _NUMBA_DP_KERNEL is None:
        from numba import njit

        @njit(cache=True, nogil=True)
        def _dp_flat(
            ps_flat, offsets, out_flat, out_offsets
        ):  # pragma: no cover - exercised only where numba is installed
            for r in range(offsets.size - 1):
                s = offsets[r]
                n = offsets[r + 1] - s
                base = out_offsets[r]
                out_flat[base] = 1.0
                size = 1
                for t in range(n):
                    p = ps_flat[s + t]
                    q = 1.0 - p
                    out_flat[base + size] = out_flat[base + size - 1] * p
                    for k in range(size - 1, 0, -1):
                        out_flat[base + k] = (
                            out_flat[base + k] * q + out_flat[base + k - 1] * p
                        )
                    out_flat[base] = out_flat[base] * q
                    size += 1

        _NUMBA_DP_KERNEL = _dp_flat
    return _NUMBA_DP_KERNEL


def pmf_dp_batch_numba(ps_arrays: list[np.ndarray]) -> list[np.ndarray]:
    """Many convolution DPs through one compiled call.

    Bit-identical to the scalar ``_pmf_dp`` per array: the in-place
    backward sweep evaluates the same two products and one addition per
    state, in the same order, under IEEE semantics (no fastmath).
    """
    n_rows = len(ps_arrays)
    if n_rows == 0:
        return []
    kernel = _numba_dp_kernel()
    lengths = np.fromiter((a.size for a in ps_arrays), np.int64, count=n_rows)
    offsets = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    out_offsets = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths + 1, out=out_offsets[1:])
    ps_flat = (
        np.concatenate(ps_arrays)
        if offsets[-1]
        else np.empty(0, dtype=np.float64)
    )
    out_flat = np.empty(int(out_offsets[-1]), dtype=np.float64)
    kernel(np.ascontiguousarray(ps_flat, dtype=np.float64), offsets,
           out_flat, out_offsets)
    return [
        out_flat[out_offsets[r]: out_offsets[r + 1]].copy()
        for r in range(n_rows)
    ]
