"""Kernel backend selection.

The linking hot path (merge-alignment, Vmax compatibility, the
Poisson-Binomial convolution DP) can run on three interchangeable
backends:

``"numba"``
    ``@njit``-compiled per-pair loops (the FishPy idiom).  Fastest when
    the ``numba`` package is importable; silently unavailable otherwise.
``"numpy"``
    Batched vectorised kernels over flat pool arrays — the guaranteed
    fallback.  Pure NumPy, no optional dependencies.
``"python"``
    The per-pair reference path (one NumPy dispatch per pair).  Kept as
    the ground truth for equivalence tests and benchmark baselines.

``"auto"`` (the default everywhere) resolves to ``"numba"`` when the
package is importable and ``"numpy"`` otherwise.  The resolution order
is:

1. an explicit backend name passed by the caller
   (:class:`~repro.core.engine.LinkOptions` / ``--kernel``);
2. the :data:`KERNEL_BACKEND_ENV` environment variable, consulted when
   the caller asked for ``"auto"`` (or nothing) — the operational
   override for pinning a deployment without code changes;
3. auto-detection.

Requesting ``"numba"`` on a machine without numba degrades gracefully
to ``"numpy"`` (logged once); it never raises.  Every backend produces
bit-identical buckets and p-values except the numba fused haversine,
which may differ from NumPy's by a few ulp (see docs/performance.md).
"""

from __future__ import annotations

import logging
import os

from repro.errors import ValidationError

#: Environment variable consulted when no explicit backend was chosen.
KERNEL_BACKEND_ENV = "FTL_KERNEL_BACKEND"

#: Valid kernel backend names (``"auto"`` resolves to one of the rest).
KERNEL_BACKENDS = ("auto", "numba", "numpy", "python")

_logger = logging.getLogger("repro.kernels")

_numba_probe: bool | None = None
_warned_fallback = False


def numba_available() -> bool:
    """Whether the ``numba`` package is importable (probed once)."""
    global _numba_probe
    if _numba_probe is None:
        try:
            import numba  # noqa: F401

            _numba_probe = True
        except Exception:
            _numba_probe = False
    return _numba_probe


def resolve_kernel_backend(requested: str | None = None) -> str:
    """Resolve a backend request to a concrete backend name.

    Parameters
    ----------
    requested:
        ``"numba"``, ``"numpy"``, ``"python"``, ``"auto"`` or ``None``
        (treated as ``"auto"``).  Unknown names raise
        :class:`~repro.errors.ValidationError`.

    Returns
    -------
    One of ``"numba"``, ``"numpy"``, ``"python"`` — never ``"auto"``,
    and never ``"numba"`` on a machine where numba is not importable.
    """
    global _warned_fallback
    name = "auto" if requested is None else str(requested).lower()
    if name == "auto":
        env = os.environ.get(KERNEL_BACKEND_ENV, "").strip().lower()
        if env:
            name = env
    if name not in KERNEL_BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {name!r}; known: {KERNEL_BACKENDS}"
        )
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        if not _warned_fallback:
            _warned_fallback = True
            _logger.warning(
                "kernel backend 'numba' requested but numba is not "
                "importable; falling back to 'numpy'"
            )
        return "numpy"
    return name
