"""Merge-alignment + Vmax compatibility kernels.

One query trajectory against a whole candidate pool: for every
``(query, candidate)`` pair, merge the two time-sorted record sequences
(``P`` before ``Q`` at equal timestamps), walk the mutual segments in
merged order, and emit each segment's time bucket and Vmax
compatibility.  The output layout is flat — ``(buckets, incompatible,
seg_offsets)`` where candidate ``i`` owns
``flat[seg_offsets[i]:seg_offsets[i + 1]]`` in merged-segment order —
exactly the layout :class:`repro.core.engine._PoolEvidence` consumes.

Three implementations (see :mod:`repro.kernels.backend`):

* ``python`` — one reference call per pair (the historical
  ``mutual_segment_profile`` code path: concatenate + stable argsort).
* ``numpy`` — the whole pool in ~20 NumPy dispatches.  The merge is
  replaced by one ``searchsorted`` of all candidate timestamps into the
  query: a candidate record is preceded (followed) by a query record in
  the merged sequence exactly when its insertion index advances past
  its neighbour's, which identifies every mutual segment and its query
  endpoint without materialising the merge.  Distances are computed by
  the same vectorised metric functions over gathered endpoint arrays;
  both registered metrics are bit-exactly symmetric in their point
  arguments, so the merged endpoint order need not be reconstructed and
  results are bit-identical to the reference.
* ``numba`` — an ``@njit`` two-pointer merge per pair with the distance
  fused into the loop, batched over the pool in one compiled call.
  Euclidean distances (``math.hypot``) match NumPy bit for bit; the
  fused haversine may differ by a few ulp (documented tolerance, see
  docs/performance.md).

Why the ``numpy`` ordering is exact: with ``side="right"`` search
positions ``idx``, candidate record ``j`` sits at merged position
``idx[j] + j``.  Its *before*-segment (query record ``idx[j] - 1``,
then record ``j``) starts at merged position ``idx[j] + j - 1`` and its
*after*-segment at ``idx[j] + j``; consecutive candidate records'
segment positions are strictly increasing, so emitting ``(before,
after)`` per record in record order reproduces the merged segment order
exactly.  Every mutual segment has exactly one candidate endpoint, so
the enumeration is complete and duplicate-free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geo.distance import EARTH_RADIUS_M, get_metric

_EMPTY_BUCKETS = np.empty(0, dtype=np.int64)
_EMPTY_INCOMPAT = np.empty(0, dtype=bool)

#: Relative half-width of the ambiguous band in the squared-distance
#: speed test (see ``_pool_profiles_numpy``).  Outside the band the
#: comparison of squared quantities provably agrees with the reference's
#: ``hypot(dx, dy) > vmax * dt``: squaring perturbs each side by at most
#: ~3 ulp (≈7e-16 relative) and libm ``hypot`` is within ~1 ulp, so any
#: relative gap above ~1e-15 cannot flip the predicate.  1e-12 leaves
#: three orders of magnitude of slack while keeping the exact-fallback
#: band empty for all practical inputs.
_SQ_MARGIN = 1e-12

#: Metric codes for the compiled kernel (no string dispatch in nopython).
_METRIC_CODES = {"euclidean": 0, "haversine": 1}


def pair_profile_arrays(
    p_ts: np.ndarray,
    p_xs: np.ndarray,
    p_ys: np.ndarray,
    q_ts: np.ndarray,
    q_xs: np.ndarray,
    q_ys: np.ndarray,
    metric: str,
    vmax_mps: float,
    time_unit_s: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference single-pair kernel (the ``python`` backend).

    The historical ``mutual_segment_profile`` hot path, verbatim:
    concatenate, stable argsort (``P`` records precede equal-time ``Q``
    records), take adjacent source changes as mutual segments, compute
    distances only for those.
    """
    n_p, n_q = p_ts.size, q_ts.size
    if n_p == 0 or n_q == 0:
        return _EMPTY_BUCKETS, _EMPTY_INCOMPAT
    ts = np.concatenate([p_ts, q_ts])
    sources = np.empty(n_p + n_q, dtype=np.int8)
    sources[:n_p] = 0
    sources[n_p:] = 1
    order = np.argsort(ts, kind="stable")
    ts_sorted = ts[order]
    src_sorted = sources[order]

    mutual_mask = src_sorted[1:] != src_sorted[:-1]
    if not np.any(mutual_mask):
        return _EMPTY_BUCKETS, _EMPTY_INCOMPAT

    first_idx = np.nonzero(mutual_mask)[0]
    second_idx = first_idx + 1
    dts = ts_sorted[second_idx] - ts_sorted[first_idx]

    xs = np.concatenate([p_xs, q_xs])[order]
    ys = np.concatenate([p_ys, q_ys])[order]
    metric_fn = get_metric(metric)
    dists = metric_fn(xs[first_idx], ys[first_idx], xs[second_idx], ys[second_idx])

    buckets = np.rint(dts / time_unit_s).astype(np.int64)
    incompatible = dists > vmax_mps * dts
    return buckets, incompatible


def _pool_profiles_python(
    p_ts, p_xs, p_ys, c_ts, c_xs, c_ys, offsets, metric, vmax_mps, time_unit_s
):
    """Per-pair reference loop over the pool (one dispatch per pair)."""
    n_pool = offsets.size - 1
    bucket_parts = []
    incompat_parts = []
    seg_offsets = np.zeros(n_pool + 1, dtype=np.int64)
    for i in range(n_pool):
        s, e = offsets[i], offsets[i + 1]
        buckets, incompatible = pair_profile_arrays(
            p_ts, p_xs, p_ys,
            c_ts[s:e], c_xs[s:e], c_ys[s:e],
            metric, vmax_mps, time_unit_s,
        )
        seg_offsets[i + 1] = seg_offsets[i] + buckets.size
        bucket_parts.append(buckets)
        incompat_parts.append(incompatible)
    if not bucket_parts:
        return _EMPTY_BUCKETS, _EMPTY_INCOMPAT, seg_offsets
    return (
        np.concatenate(bucket_parts) if seg_offsets[-1] else _EMPTY_BUCKETS,
        np.concatenate(incompat_parts) if seg_offsets[-1] else _EMPTY_INCOMPAT,
        seg_offsets,
    )


def _pool_profiles_numpy(
    p_ts, p_xs, p_ys, c_ts, c_xs, c_ys, offsets, metric, vmax_mps, time_unit_s,
    c_sort=None,
):
    """Whole-pool vectorised kernel; bit-identical to the reference."""
    n_pool = offsets.size - 1
    n_p = p_ts.size
    n_flat = c_ts.size
    seg_offsets = np.zeros(n_pool + 1, dtype=np.int64)
    if n_p == 0 or n_flat == 0:
        return _EMPTY_BUCKETS, _EMPTY_INCOMPAT, seg_offsets

    # idx[m]: how many query records precede candidate record m in the
    # merged sequence (side="right" puts equal-time P records first).
    # int32 throughout — the values are bounded by len(query), and the
    # narrower scans/cumsums are measurably faster at pool scale.
    if c_sort is None:
        idx = np.searchsorted(p_ts, c_ts, side="right").astype(np.int32)
        starts = offsets[:-1]
        last_of = offsets[1:] - 1  # last flat index per cand (start-1 if empty)
        valid_starts = starts[starts < n_flat]
        valid_lasts = last_of[last_of >= starts]
    else:
        # With the pool's global time order precomputed (amortised over
        # the query batch), rank the query's few timestamps against the
        # sorted pool instead: pool record j (in time order) is preceded
        # by exactly #{k: p_ts[k] <= ts_sorted[j]} query records, a
        # cumulative histogram of the queries' insertion points.
        ts_sorted, inv, valid_starts, valid_lasts = c_sort
        bounds = np.searchsorted(ts_sorted, p_ts, side="left")
        hist = np.bincount(bounds, minlength=n_flat + 1)
        idx = np.cumsum(hist[:n_flat], dtype=np.int32)[inv]

    # The record before (after) m in its pair's merge is a query record
    # iff the insertion index advanced past the previous (next)
    # candidate record's; candidate boundaries are patched explicitly.
    # Empty candidates contribute no records; their patch indices
    # coincide with a neighbour's and re-assign the same value.
    prev_is_p = np.empty(n_flat, dtype=bool)
    np.greater(idx[1:], idx[:-1], out=prev_is_p[1:])
    next_is_p = np.empty(n_flat, dtype=bool)
    next_is_p[:-1] = prev_is_p[1:]  # copy before the boundary patches
    prev_is_p[valid_starts] = idx[valid_starts] > 0
    next_is_p[valid_lasts] = idx[valid_lasts] < n_p

    # Slot 2m is record m's before-segment, slot 2m+1 its after-segment;
    # compressing in slot order yields the merged segment order.  The
    # query endpoint is record idx-1 for a before-segment (low bit 0)
    # and idx for an after-segment (low bit 1).
    has = np.empty(2 * n_flat, dtype=bool)
    has[0::2] = prev_is_p
    has[1::2] = next_is_p
    keep = np.nonzero(has)[0]
    if keep.size == 0:
        return _EMPTY_BUCKETS, _EMPTY_INCOMPAT, seg_offsets
    # Candidate i's segments occupy slots [2 * offsets[i], 2 * offsets[i+1]).
    seg_offsets = np.searchsorted(keep, offsets * 2, side="left")
    m_of = keep >> 1
    p_idx = idx[m_of] + (keep & 1) - 1

    # |t_p - t_c| equals the reference's second-minus-first exactly
    # (IEEE negation is exact), and both metrics are bit-exactly
    # symmetric in their point arguments (hypot is sign-invariant;
    # sin is odd and squared, multiplication commutes), so neither
    # needs the merged endpoint order.
    dts = np.abs(p_ts[p_idx] - c_ts[m_of])
    scaled = dts / time_unit_s
    np.rint(scaled, out=scaled)
    buckets = scaled.astype(np.int64)
    thr = dts  # dts is dead past this point; reuse as the speed cap
    np.multiply(thr, vmax_mps, out=thr)

    px, py = p_xs[p_idx], p_ys[p_idx]
    cx, cy = c_xs[m_of], c_ys[m_of]
    if metric == "euclidean":
        # Speed test on squared quantities: dx²+dy² vs (vmax·dt)² skips
        # the libm hypot call that dominates the distance cost.  The
        # squared comparison provably matches ``hypot > thr`` whenever
        # the two sides differ by more than _SQ_MARGIN relative; the
        # (practically empty) ambiguous band — including exact ties such
        # as 3-4-5 triangles, dt == 0, and any NaN/overflow oddities —
        # is re-decided with the reference metric on identical inputs,
        # keeping the output bit-identical.
        dx = px - cx
        np.multiply(dx, dx, out=dx)
        dy = py - cy
        np.multiply(dy, dy, out=dy)
        dx += dy  # dx = squared distance
        t2 = thr * thr
        incompatible = dx > t2
        # Negated so NaNs (all comparisons False) land in the exact path.
        near = ~(np.abs(dx - t2) > t2 * _SQ_MARGIN)
        if np.any(near):
            amb = np.nonzero(near)[0]
            dists = get_metric(metric)(px[amb], py[amb], cx[amb], cy[amb])
            incompatible[amb] = dists > thr[amb]
    else:
        dists = get_metric(metric)(px, py, cx, cy)
        incompatible = dists > thr
    return buckets, incompatible, seg_offsets


# ----------------------------------------------------------------------
# Compiled backend (lazily jitted; only reached when numba imports)
# ----------------------------------------------------------------------
_NUMBA_POOL_KERNEL = None


def _numba_pool_kernel():
    """Build (once) the ``@njit`` two-pointer merge kernel."""
    global _NUMBA_POOL_KERNEL
    if _NUMBA_POOL_KERNEL is None:
        import math

        from numba import njit

        @njit(cache=True, nogil=True)
        def _merge_pool(
            p_ts, p_xs, p_ys, c_ts, c_xs, c_ys, offsets,
            metric_code, out_dts, out_dists, seg_offsets,
        ):  # pragma: no cover - exercised only where numba is installed
            n_p = p_ts.size
            pos = 0
            for k in range(offsets.size - 1):
                seg_offsets[k] = pos
                s = offsets[k]
                e = offsets[k + 1]
                if n_p == 0 or e == s:
                    continue
                i = 0
                j = s
                last_src = -1
                last_t = 0.0
                last_x = 0.0
                last_y = 0.0
                while i < n_p or j < e:
                    # P record first at equal timestamps (stable merge).
                    if j >= e or (i < n_p and p_ts[i] <= c_ts[j]):
                        t, x, y, src = p_ts[i], p_xs[i], p_ys[i], 0
                        i += 1
                    else:
                        t, x, y, src = c_ts[j], c_xs[j], c_ys[j], 1
                        j += 1
                    if last_src >= 0 and src != last_src:
                        if metric_code == 0:
                            dist = math.hypot(x - last_x, y - last_y)
                        else:
                            lon1 = math.radians(last_x)
                            lat1 = math.radians(last_y)
                            lon2 = math.radians(x)
                            lat2 = math.radians(y)
                            sdlat = math.sin((lat2 - lat1) / 2.0)
                            sdlon = math.sin((lon2 - lon1) / 2.0)
                            a = (
                                sdlat * sdlat
                                + math.cos(lat1) * math.cos(lat2) * sdlon * sdlon
                            )
                            if a < 0.0:
                                a = 0.0
                            elif a > 1.0:
                                a = 1.0
                            dist = 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))
                        out_dts[pos] = t - last_t
                        out_dists[pos] = dist
                        pos += 1
                    last_src = src
                    last_t = t
                    last_x = x
                    last_y = y
            seg_offsets[offsets.size - 1] = pos
            return pos

        _NUMBA_POOL_KERNEL = _merge_pool
    return _NUMBA_POOL_KERNEL


def _pool_profiles_numba(
    p_ts, p_xs, p_ys, c_ts, c_xs, c_ys, offsets, metric, vmax_mps, time_unit_s
):
    """Compiled two-pointer merges; bucketing stays in NumPy.

    The jit kernel emits each mutual segment's ``(dt, dist)``; the
    bucket rounding and speed test then use exactly the same vectorised
    expressions as the other backends, so any deviation is confined to
    the fused distance (haversine only; ``math.hypot`` is exact).
    """
    kernel = _numba_pool_kernel()
    n_pool = offsets.size - 1
    max_segs = 2 * c_ts.size
    dts = np.empty(max_segs, dtype=np.float64)
    dists = np.empty(max_segs, dtype=np.float64)
    seg_offsets = np.zeros(n_pool + 1, dtype=np.int64)
    total = kernel(
        np.ascontiguousarray(p_ts), np.ascontiguousarray(p_xs),
        np.ascontiguousarray(p_ys), np.ascontiguousarray(c_ts),
        np.ascontiguousarray(c_xs), np.ascontiguousarray(c_ys),
        offsets, _METRIC_CODES[metric], dts, dists, seg_offsets,
    )
    dts = dts[:total]
    dists = dists[:total]
    buckets = np.rint(dts / time_unit_s).astype(np.int64)
    incompatible = dists > vmax_mps * dts
    return buckets, incompatible, seg_offsets


_POOL_IMPLS = {
    "python": _pool_profiles_python,
    "numpy": _pool_profiles_numpy,
    "numba": _pool_profiles_numba,
}


def pool_profile_arrays(
    p_ts: np.ndarray,
    p_xs: np.ndarray,
    p_ys: np.ndarray,
    c_ts: np.ndarray,
    c_xs: np.ndarray,
    c_ys: np.ndarray,
    offsets: np.ndarray,
    metric: str,
    vmax_mps: float,
    time_unit_s: float,
    backend: str,
    c_sort: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mutual-segment evidence of one query against a flat candidate pool.

    Parameters
    ----------
    p_ts, p_xs, p_ys:
        The query trajectory's columns (time-sorted).
    c_ts, c_xs, c_ys, offsets:
        The pool's columns concatenated candidate-by-candidate;
        candidate ``i`` owns ``c_*[offsets[i]:offsets[i + 1]]``.
    metric, vmax_mps, time_unit_s:
        Distance metric name, speed cap (m/s), bucket width (s).
    backend:
        A **concrete** backend name (``python`` / ``numpy`` /
        ``numba``); resolve ``"auto"`` first via
        :func:`repro.kernels.resolve_kernel_backend`.
    c_sort:
        Optional precomputed pool merge cache — ``(c_ts[order], inv,
        valid_starts, valid_lasts)`` as built by
        :meth:`repro.core.alignment.FlatPool.merge_cache` (``numpy``
        backend only); lets a batch of queries against one pool
        amortise every query-independent cost.

    Returns
    -------
    ``(buckets, incompatible, seg_offsets)``: int64 bucket indices and
    boolean Vmax-incompatibility flags over all pairs' mutual segments
    in merged order, plus per-candidate slice offsets.
    """
    if metric not in _METRIC_CODES:
        raise ValidationError(
            f"unknown metric {metric!r}; known: {tuple(_METRIC_CODES)}"
        )
    try:
        impl = _POOL_IMPLS[backend]
    except KeyError:
        raise ValidationError(
            f"not a concrete kernel backend: {backend!r}; "
            f"known: {tuple(_POOL_IMPLS)}"
        ) from None
    if backend == "numpy":
        return impl(
            p_ts, p_xs, p_ys, c_ts, c_xs, c_ys, offsets,
            metric, vmax_mps, time_unit_s, c_sort,
        )
    return impl(
        p_ts, p_xs, p_ys, c_ts, c_xs, c_ys, offsets,
        metric, vmax_mps, time_unit_s,
    )
