"""Optional compiled kernel backends for the linking hot path.

``repro.kernels`` hosts the three hot kernels of the FTL pipeline —
the time-sorted merge + mutual-segment extraction, the fused
distance + Vmax speed test, and the Poisson-Binomial convolution DP —
each available on three interchangeable backends (``numba`` when the
package is importable, batched ``numpy`` as the guaranteed fallback,
and the per-pair ``python`` reference).  See
:mod:`repro.kernels.backend` for the selection rules and
``docs/performance.md`` for benchmarks and equivalence guarantees.
"""

from repro.kernels.backend import (
    KERNEL_BACKEND_ENV,
    KERNEL_BACKENDS,
    numba_available,
    resolve_kernel_backend,
)
from repro.kernels.pbdp import pmf_dp_batch_numba
from repro.kernels.profile import pair_profile_arrays, pool_profile_arrays

__all__ = [
    "KERNEL_BACKEND_ENV",
    "KERNEL_BACKENDS",
    "numba_available",
    "pair_profile_arrays",
    "pmf_dp_batch_numba",
    "pool_profile_arrays",
    "resolve_kernel_backend",
]
