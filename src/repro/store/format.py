"""On-disk layout of the mmap-backed trajectory store.

A store is one directory per trajectory database::

    store/
      manifest.json            <- the only mutable file; swapped atomically
      seg-000000/              <- an immutable segment
        ts.f64                 <- flat little-endian float64 timestamps
        xs.f64, ys.f64         <- flat little-endian float64 coordinates
        offsets.i64            <- int64 record offsets, length n_traj + 1
        ids.json               <- trajectory id strings, length n_traj
      seg-000001/              <- appended segments (record deltas)
      index/                   <- optional persisted blocking index

Segments are **append-only and immutable**: ingest writes a complete new
segment directory, fsyncs it, and only then swaps ``manifest.json`` via
an atomic rename.  A crash mid-append therefore leaves an unreferenced
(and later garbage-collected) directory behind — the manifest always
describes the last consistent snapshot.  ``manifest.json`` carries a
``format_version`` (bumped on layout changes; readers reject newer
versions) and a monotonically increasing ``generation`` used to detect
stale blocking indexes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.errors import StoreFormatError

#: Name of the store's manifest file inside the store directory.
MANIFEST_NAME = "manifest.json"

#: Magic string identifying a store manifest.
STORE_FORMAT = "ftl-store"

#: Current on-disk format version; readers reject anything newer.
#: Version 2 added the fitted-model artifact registry (``models`` +
#: ``active_model``); version-1 manifests parse to an empty registry.
FORMAT_VERSION = 2

#: Subdirectory holding the persisted spatio-temporal blocking index.
INDEX_DIR = "index"

#: Subdirectory holding versioned fitted-model artifacts.
MODELS_DIR = "models"

#: The flat columnar files inside every segment directory.
SEGMENT_ARRAYS = (
    ("ts.f64", "<f8"),
    ("xs.f64", "<f8"),
    ("ys.f64", "<f8"),
    ("offsets.i64", "<i8"),
)


@dataclass(frozen=True)
class SegmentInfo:
    """One immutable segment as recorded in the manifest."""

    dirname: str
    n_trajectories: int
    n_records: int

    def to_dict(self) -> dict:
        return {
            "dir": self.dirname,
            "n_trajectories": self.n_trajectories,
            "n_records": self.n_records,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "SegmentInfo":
        try:
            return cls(
                dirname=str(obj["dir"]),
                n_trajectories=int(obj["n_trajectories"]),
                n_records=int(obj["n_records"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"malformed segment entry {obj!r}: {exc}") from exc


@dataclass(frozen=True)
class ModelArtifactInfo:
    """One fitted Mr/Ma artifact as registered in the manifest.

    The artifact payload itself (count tables + provenance) lives in
    ``models/<artifact_id>.json``; the manifest only carries the
    registry entry so opening a store never reads model payloads.
    """

    artifact_id: str
    filename: str
    created_at: float

    def to_dict(self) -> dict:
        return {
            "id": self.artifact_id,
            "file": self.filename,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "ModelArtifactInfo":
        try:
            return cls(
                artifact_id=str(obj["id"]),
                filename=str(obj["file"]),
                created_at=float(obj["created_at"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"malformed model entry {obj!r}: {exc}") from exc


@dataclass(frozen=True)
class StoreManifest:
    """The store's root metadata (the content of ``manifest.json``)."""

    name: str = ""
    format_version: int = FORMAT_VERSION
    generation: int = 0
    segments: tuple[SegmentInfo, ...] = field(default_factory=tuple)
    #: Sliding-window eviction watermark: records with ``t < retain_after``
    #: are masked out of every read without rewriting segments (compaction
    #: materialises the drop).  ``0.0`` means no eviction; the key is
    #: omitted from the JSON then, so old readers stay compatible and old
    #: manifests parse to "no watermark".
    retain_after: float = 0.0
    #: Registered fitted-model artifacts.  Like ``retain_after``, the
    #: keys are omitted from the JSON when empty, so a v1 manifest (and
    #: a v2 store without models) parses to an empty registry.
    models: tuple[ModelArtifactInfo, ...] = field(default_factory=tuple)
    #: Artifact id the daemon serves by default; ``""`` means none.
    active_model: str = ""

    @property
    def n_records(self) -> int:
        """Records across all segments (an id in k segments counts k times)."""
        return sum(seg.n_records for seg in self.segments)

    def bumped(self, new_segments: tuple[SegmentInfo, ...]) -> "StoreManifest":
        """The next generation of this manifest with the given segments."""
        return replace(
            self, generation=self.generation + 1, segments=new_segments
        )

    def to_dict(self) -> dict:
        obj = {
            "format": STORE_FORMAT,
            "format_version": self.format_version,
            "name": self.name,
            "generation": self.generation,
            "segments": [seg.to_dict() for seg in self.segments],
        }
        if self.retain_after:
            obj["retain_after"] = self.retain_after
        if self.models:
            obj["models"] = [info.to_dict() for info in self.models]
        if self.active_model:
            obj["active_model"] = self.active_model
        return obj

    @classmethod
    def from_dict(cls, obj: dict, where: str = "manifest") -> "StoreManifest":
        if not isinstance(obj, dict) or obj.get("format") != STORE_FORMAT:
            raise StoreFormatError(
                f"{where}: not a {STORE_FORMAT} manifest"
            )
        version = int(obj.get("format_version", -1))
        if not 1 <= version <= FORMAT_VERSION:
            raise StoreFormatError(
                f"{where}: unsupported format_version {version} "
                f"(this reader supports up to {FORMAT_VERSION})"
            )
        return cls(
            name=str(obj.get("name", "")),
            format_version=version,
            generation=int(obj.get("generation", 0)),
            segments=tuple(
                SegmentInfo.from_dict(entry) for entry in obj.get("segments", [])
            ),
            retain_after=float(obj.get("retain_after", 0.0)),
            models=tuple(
                ModelArtifactInfo.from_dict(entry)
                for entry in obj.get("models", [])
            ),
            active_model=str(obj.get("active_model", "")),
        )


# ----------------------------------------------------------------------
# Atomic file helpers
# ----------------------------------------------------------------------
def fsync_file(path: Path) -> None:
    """Flush one file's content to stable storage (best effort)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """Flush a directory entry table to stable storage (best effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def write_json_atomic(path: Path, payload: dict) -> None:
    """Write JSON via a temp file + atomic rename (crash-consistent)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    fsync_file(tmp)
    os.replace(tmp, path)
    fsync_dir(path.parent)


def read_manifest(store_dir: Path) -> StoreManifest:
    """Load and validate the manifest of a store directory."""
    path = store_dir / MANIFEST_NAME
    if not path.is_file():
        raise StoreFormatError(
            f"{store_dir}: no {MANIFEST_NAME}; not a trajectory store"
        )
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreFormatError(f"{path}: invalid JSON: {exc}") from exc
    return StoreManifest.from_dict(obj, where=str(path))


def write_manifest(store_dir: Path, manifest: StoreManifest) -> None:
    """Atomically install a manifest as the store's current snapshot."""
    write_json_atomic(store_dir / MANIFEST_NAME, manifest.to_dict())


def open_segment_arrays(
    seg_dir: Path, info: SegmentInfo
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[str]]:
    """Memory-map one segment's columns; validates sizes against the manifest.

    Returns ``(ts, xs, ys, offsets, ids)`` where the first three are
    read-only ``numpy.memmap`` views of ``n_records`` float64 values,
    ``offsets`` is the int64 slice table (length ``n_trajectories + 1``)
    and ``ids`` the trajectory id strings.  Empty columns are returned
    as ordinary zero-length arrays (``mmap`` cannot map empty files).
    """
    ids_path = seg_dir / "ids.json"
    if not seg_dir.is_dir() or not ids_path.is_file():
        raise StoreFormatError(f"{seg_dir}: missing segment directory or ids.json")
    try:
        ids = json.loads(ids_path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreFormatError(f"{ids_path}: invalid JSON: {exc}") from exc
    if not isinstance(ids, list) or len(ids) != info.n_trajectories:
        raise StoreFormatError(
            f"{ids_path}: expected {info.n_trajectories} ids, "
            f"got {len(ids) if isinstance(ids, list) else type(ids).__name__}"
        )
    arrays = []
    expected = {
        "ts.f64": info.n_records,
        "xs.f64": info.n_records,
        "ys.f64": info.n_records,
        "offsets.i64": info.n_trajectories + 1,
    }
    for fname, dtype in SEGMENT_ARRAYS:
        path = seg_dir / fname
        want = expected[fname]
        itemsize = np.dtype(dtype).itemsize
        try:
            actual = path.stat().st_size
        except OSError as exc:
            raise StoreFormatError(f"{path}: unreadable: {exc}") from exc
        if actual != want * itemsize:
            raise StoreFormatError(
                f"{path}: expected {want * itemsize} bytes "
                f"({want} x {dtype}), found {actual}"
            )
        if want == 0:
            arrays.append(np.empty(0, dtype=dtype))
        else:
            arrays.append(np.memmap(path, dtype=dtype, mode="r", shape=(want,)))
    ts, xs, ys, offsets = arrays
    if offsets.size and (offsets[0] != 0 or offsets[-1] != info.n_records):
        raise StoreFormatError(
            f"{seg_dir}: offset table does not span the record columns"
        )
    return ts, xs, ys, offsets, [str(i) for i in ids]


def write_segment_arrays(
    seg_dir: Path,
    ts: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    ids: list[str],
) -> None:
    """Write one complete, fsynced segment directory (no manifest change)."""
    seg_dir.mkdir(parents=True, exist_ok=False)
    for fname, dtype, arr in (
        ("ts.f64", "<f8", ts),
        ("xs.f64", "<f8", xs),
        ("ys.f64", "<f8", ys),
        ("offsets.i64", "<i8", offsets),
    ):
        path = seg_dir / fname
        np.ascontiguousarray(arr, dtype=dtype).tofile(path)
        fsync_file(path)
    ids_path = seg_dir / "ids.json"
    ids_path.write_text(json.dumps(ids))
    fsync_file(ids_path)
    fsync_dir(seg_dir)
