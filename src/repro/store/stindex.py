"""Persisted spatio-temporal blocking for candidate pruning.

:class:`~repro.core.blocking.CandidateIndex` blocks on time alone: a
candidate survives when its observation window overlaps the query's.
At serving scale that still admits every concurrently observed
trajectory in the city.  :class:`SpatioTemporalIndex` crosses the same
time-window test with a uniform geo-grid of each candidate's *visited
cells*, pruned by ``Vmax``-reachability:

**Guarantee (superset contract).**  Let ``R = vmax_mps * reach_gap_s``.
``candidates_for(query, min_overlap_s)`` returns every candidate that
(a) :class:`~repro.core.prefilter.TimeOverlapPrefilter` with the same
``min_overlap_s`` would keep **and** (b) has at least one record within
distance ``vmax_mps * dt`` of some query record for a time gap
``dt <= reach_gap_s`` — i.e. every candidate able to contribute a
*compatible* mutual segment with gap at most ``reach_gap_s``.  Proof
sketch: such a record pair is at distance ``<= R``, so its cells are at
Chebyshev distance ``<= floor(R / cell) + 1``; the query's cells are
dilated by exactly that radius before the inverted-cell lookup, and the
temporal test is the overlap inequality itself, evaluated directly (no
search-boundary rounding).  Property-tested against brute force in
``tests/test_stindex.py``.

``reach_gap_s`` is the blocking knob: the config horizon (one hour) is
fully conservative for all in-horizon evidence, while smaller gaps
prune harder and only drop candidates whose *every* compatible segment
has a long (weak-evidence) gap.

The index persists inside a store directory (``index/``) as the same
flat columnar arrays the store uses, stamped with the store manifest's
``generation``; opening against a different generation raises
:class:`~repro.errors.StaleIndexError` instead of silently serving a
stale snapshot.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import StaleIndexError, StoreFormatError, ValidationError
from repro.geo.units import kph_to_mps
from repro.obs import span
from repro.store.format import fsync_dir, fsync_file, write_json_atomic

#: Magic string identifying a persisted index.
INDEX_FORMAT = "ftl-stindex"

#: Current index layout version.
INDEX_VERSION = 1

#: Cell-coordinate bias / multiplier for the packed int64 cell key.
_BIAS = 1 << 30
_MULT = np.int64(1) << np.int64(31)

#: Largest usable |cell coordinate| (keeps dilated keys inside int64).
_MAX_CELL = _BIAS - 4096

_ARRAY_FILES = (
    ("starts.f64", "<f8"),
    ("ends.f64", "<f8"),
    ("cells.i64", "<i8"),
    ("cell_offsets.i64", "<i8"),
    ("postings.i64", "<i8"),
)


def pack_cell_keys(
    xs: np.ndarray, ys: np.ndarray, cell_size: float
) -> np.ndarray | None:
    """Packed int64 cell keys of the points, or ``None`` when out of range.

    The key of a point is its uniform-grid cell ``(floor(x / cell),
    floor(y / cell))`` packed into one int64: ``(cx + bias) * mult +
    (cy + bias)``.  The packing is a stable, persisted part of the index
    format — and the shard router of the multi-worker daemon
    (:mod:`repro.service.shard`) hashes these same keys, so candidates
    that block together stay on the same shard.
    """
    if cell_size <= 0:
        raise ValidationError(f"cell_size must be positive, got {cell_size}")
    cx = np.floor(np.asarray(xs, dtype=np.float64) / cell_size).astype(np.int64)
    cy = np.floor(np.asarray(ys, dtype=np.float64) / cell_size).astype(np.int64)
    if cx.size and (
        np.abs(cx).max() >= _MAX_CELL or np.abs(cy).max() >= _MAX_CELL
    ):
        return None
    return (cx + _BIAS) * _MULT + (cy + _BIAS)


#: Backwards-compatible private alias (the index predates the public name).
_cell_keys = pack_cell_keys


def build_index_arrays(
    trajectories, cell_size_m: float
) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The flat index columns for an iterable of trajectories.

    Returns ``(ids, starts, ends, cells, cell_offsets, postings)`` — the
    exact arrays :class:`SpatioTemporalIndex` persists.  Shared between
    full builds and the append-only delta blocks of
    :mod:`repro.stream.deltas`, so both probe identically.  Empty
    trajectories are skipped (they can never match).
    """
    ids: list[str] = []
    starts: list[float] = []
    ends: list[float] = []
    key_parts: list[np.ndarray] = []
    idx_parts: list[np.ndarray] = []
    for traj in trajectories:
        if len(traj) == 0:
            continue
        keys = pack_cell_keys(traj.xs, traj.ys, cell_size_m)
        if keys is None:
            raise ValidationError(
                f"trajectory {traj.traj_id!r}: coordinates exceed the "
                f"indexable range at cell_size_m={cell_size_m}"
            )
        i = len(ids)
        ids.append(str(traj.traj_id))
        starts.append(traj.start_time)
        ends.append(traj.end_time)
        uniq = np.unique(keys)
        key_parts.append(uniq)
        idx_parts.append(np.full(uniq.size, i, dtype=np.int64))
    cells, cell_offsets, postings = invert_cell_postings(key_parts, idx_parts)
    return (
        ids,
        np.asarray(starts, dtype=np.float64),
        np.asarray(ends, dtype=np.float64),
        cells,
        cell_offsets,
        postings,
    )


def invert_cell_postings(
    key_parts: list[np.ndarray], idx_parts: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the inverted cell index from per-candidate cell-key arrays.

    ``key_parts[i]`` holds candidate ``idx_parts[i]``'s (unique) cell
    keys; the result is the sorted unique cell array, its CSR-style
    offset table, and the posting list of candidate indices.
    """
    if key_parts:
        all_keys = np.concatenate(key_parts)
        all_idx = np.concatenate(idx_parts)
        order = np.argsort(all_keys, kind="stable")
        sorted_keys = all_keys[order]
        postings = all_idx[order]
        cells, first = np.unique(sorted_keys, return_index=True)
        cell_offsets = np.concatenate(
            [first, [sorted_keys.size]]
        ).astype(np.int64)
    else:
        cells = np.empty(0, dtype=np.int64)
        cell_offsets = np.zeros(1, dtype=np.int64)
        postings = np.empty(0, dtype=np.int64)
    return cells, cell_offsets, postings


class SpatioTemporalIndex:
    """Time-window x visited-cell blocking over a candidate database.

    Build with :meth:`build`, or persist/restore with :meth:`save` /
    :meth:`open`.  Empty trajectories are excluded (they can never
    match), matching :class:`~repro.core.blocking.CandidateIndex`.
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        ids: list[str],
        starts: np.ndarray,
        ends: np.ndarray,
        cells: np.ndarray,
        cell_offsets: np.ndarray,
        postings: np.ndarray,
        cell_size_m: float,
        vmax_kph: float,
        reach_gap_s: float,
    ) -> None:
        self._db = db
        self._ids = ids
        self._starts = starts
        self._ends = ends
        self._cells = cells
        self._cell_offsets = cell_offsets
        self._postings = postings
        self._cell_size_m = float(cell_size_m)
        self._vmax_kph = float(vmax_kph)
        self._reach_gap_s = float(reach_gap_s)
        # Chebyshev dilation radius in cells; covers any point pair at
        # Euclidean distance <= R = vmax * gap (see module docstring).
        reach_m = kph_to_mps(self._vmax_kph) * self._reach_gap_s
        self._dilation = int(math.floor(reach_m / self._cell_size_m)) + 1
        # Bounding cells over the whole index, computed lazily from the
        # cell keys (or seeded from persisted meta by open()).
        self._bounds: tuple[int, int, int, int] | None = None
        self._bounds_computed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: TrajectoryDatabase,
        cell_size_m: float | None = None,
        vmax_kph: float = 120.0,
        reach_gap_s: float = 3600.0,
    ) -> "SpatioTemporalIndex":
        """Index a candidate database.

        Parameters
        ----------
        db:
            The candidate database (empty trajectories are skipped).
        cell_size_m:
            Geo-grid cell side in metres; defaults to the reachability
            radius ``vmax * reach_gap_s`` (dilation radius 2 cells).
        vmax_kph:
            The speed cap used for reachability (paper ``Vmax``).
        reach_gap_s:
            Largest mutual-segment time gap the spatial screen must
            preserve; see the module docstring for the contract.
        """
        if not vmax_kph > 0:
            raise ValidationError(f"vmax_kph must be positive, got {vmax_kph}")
        if not reach_gap_s > 0:
            raise ValidationError(
                f"reach_gap_s must be positive, got {reach_gap_s}"
            )
        if cell_size_m is None:
            cell_size_m = kph_to_mps(vmax_kph) * reach_gap_s
        if not cell_size_m > 0:
            raise ValidationError(
                f"cell_size_m must be positive, got {cell_size_m}"
            )
        ids, starts, ends, cells, cell_offsets, postings = build_index_arrays(
            db, cell_size_m
        )
        return cls(
            db,
            ids,
            starts,
            ends,
            cells,
            cell_offsets,
            postings,
            cell_size_m,
            vmax_kph,
            reach_gap_s,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    @property
    def cell_size_m(self) -> float:
        return self._cell_size_m

    @property
    def vmax_kph(self) -> float:
        return self._vmax_kph

    @property
    def reach_gap_s(self) -> float:
        return self._reach_gap_s

    @property
    def n_cells(self) -> int:
        return int(self._cells.size)

    def params(self) -> dict:
        """The build parameters (reused when compaction rebuilds)."""
        return {
            "cell_size_m": self._cell_size_m,
            "vmax_kph": self._vmax_kph,
            "reach_gap_s": self._reach_gap_s,
        }

    def coverage_window(self) -> tuple[float, float]:
        """The (earliest start, latest end) over all indexed candidates."""
        if not self._ids:
            raise ValidationError("index is empty")
        return float(self._starts.min()), float(self._ends.max())

    @property
    def id_list(self) -> list[str]:
        """The indexed candidate ids, in index order (do not mutate)."""
        return self._ids

    def windows(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-candidate ``(starts, ends)`` arrays, in index order."""
        return self._starts, self._ends

    def cell_sets(self) -> list[np.ndarray]:
        """Per-candidate sorted unique cell keys, in index order.

        Inverts the posting lists back to the per-candidate form used
        at build time; the incremental merge of
        :mod:`repro.stream.deltas` unions these with delta-block cells.
        """
        counts = np.diff(self._cell_offsets)
        cell_per_posting = np.repeat(self._cells, counts)
        order = np.argsort(self._postings, kind="stable")
        owners = np.asarray(self._postings)[order]
        keys = cell_per_posting[order]
        bounds = np.searchsorted(owners, np.arange(len(self._ids) + 1))
        return [
            np.sort(keys[bounds[i]:bounds[i + 1]])
            for i in range(len(self._ids))
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _temporal_mask(
        self, query: Trajectory, min_overlap_s: float
    ) -> np.ndarray:
        """Exactly the :class:`TimeOverlapPrefilter` predicate, vectorised."""
        overlap = np.minimum(self._ends, query.end_time) - np.maximum(
            self._starts, query.start_time
        )
        return overlap >= min_overlap_s

    def _spatial_mask(self, query: Trajectory) -> np.ndarray:
        """Candidates sharing a dilated grid cell with the query.

        Falls back to keeping everything when the query's coordinates
        exceed the indexable range — the screen may only ever prune
        provably unreachable candidates.
        """
        n = len(self._ids)
        base = pack_cell_keys(query.xs, query.ys, self._cell_size_m)
        if base is None:
            return np.ones(n, dtype=bool)
        base = np.unique(base)
        k = self._dilation
        span = np.arange(-k, k + 1, dtype=np.int64)
        # All cells within Chebyshev distance k of any query cell.
        dilated = (
            base[:, None, None]
            + span[None, :, None] * _MULT
            + span[None, None, :]
        ).ravel()
        keys = np.unique(dilated)
        pos = np.searchsorted(self._cells, keys)
        in_range = pos < self._cells.size
        pos, keys = pos[in_range], keys[in_range]
        hit = pos[self._cells[pos] == keys]
        mask = np.zeros(n, dtype=bool)
        for j in hit:
            a, b = self._cell_offsets[j], self._cell_offsets[j + 1]
            mask[self._postings[a:b]] = True
        return mask

    def spatial_mask(self, query: Trajectory) -> np.ndarray:
        """Public form of the spatial screen (index-order boolean mask).

        Used by :class:`repro.stream.deltas.StreamIndexView` to OR the
        screens of the main index and its delta blocks per candidate id.
        """
        if len(query) == 0:
            return np.ones(len(self._ids), dtype=bool)
        return self._spatial_mask(query)

    def bounding_cells(self) -> tuple[int, int, int, int] | None:
        """``(min_cx, max_cx, min_cy, max_cy)`` over all indexed cells.

        ``None`` when the index holds no cells.  The packed keys invert
        exactly (``cx + bias < mult``), so the bounds are derived from
        the unpacked per-axis coordinates — never from min/max of the
        packed keys, whose order mixes the axes.  Persisted in
        ``meta.json`` so delta blocks carry their bounds from flush
        time without touching the mmap.
        """
        if not self._bounds_computed:
            if self._cells.size:
                cx = self._cells // _MULT - _BIAS
                cy = self._cells % _MULT - _BIAS
                self._bounds = (
                    int(cx.min()), int(cx.max()),
                    int(cy.min()), int(cy.max()),
                )
            else:
                self._bounds = None
            self._bounds_computed = True
        return self._bounds

    def overlaps_query_reach(self, query: Trajectory) -> bool:
        """Coarse screen: could *any* indexed cell survive the spatial mask?

        ``False`` is a proof that :meth:`spatial_mask` would be
        all-``False`` for this query — the query's cells dilated by the
        Chebyshev reach radius cannot intersect the index's bounding
        rectangle on at least one axis — so a caller holding several
        structures (the streaming union view) may skip the full probe.
        ``True`` means "maybe": the rectangles overlap, or the query is
        empty / out of packing range (where the mask falls back to
        keeping everything and must not be skipped).
        """
        if len(query) == 0:
            return True
        bounds = self.bounding_cells()
        if bounds is None:
            # No cells: the full mask is all-False, skipping is exact.
            return False
        base = pack_cell_keys(query.xs, query.ys, self._cell_size_m)
        if base is None:
            return True
        cx = base // _MULT - _BIAS
        cy = base % _MULT - _BIAS
        k = self._dilation
        min_cx, max_cx, min_cy, max_cy = bounds
        return not (
            int(cx.max()) + k < min_cx
            or int(cx.min()) - k > max_cx
            or int(cy.max()) + k < min_cy
            or int(cy.min()) - k > max_cy
        )

    def affected_ids(self, query: Trajectory, horizon_s: float) -> list[str]:
        """Ids whose indexed window lies within ``horizon_s`` of the query.

        Temporal-only on purpose: a new record changes a pair's evidence
        whenever it can form a mutual segment with some query record —
        *incompatible* mutual segments may be arbitrarily far away
        spatially, so the spatial screen must not participate here.  The
        window test is the overlap inequality dilated by the horizon
        (``overlap >= -horizon_s``), which admits negative overlaps the
        public ``candidates_for`` contract forbids.
        """
        if horizon_s < 0:
            raise ValidationError(
                f"horizon_s must be >= 0, got {horizon_s}"
            )
        if len(query) == 0 or not self._ids:
            return []
        mask = self._temporal_mask(query, -float(horizon_s))
        return [self._ids[i] for i in np.nonzero(mask)[0]]

    def candidates_for(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> list[Trajectory]:
        """Candidates surviving both the temporal and the spatial screen.

        A strict subset of what temporal blocking alone admits, and a
        guaranteed superset of every time-overlapping candidate within
        ``Vmax * reach_gap_s`` reachability (module docstring).
        """
        if min_overlap_s < 0:
            raise ValidationError(
                f"min_overlap_s must be >= 0, got {min_overlap_s}"
            )
        if len(query) == 0 or not self._ids:
            return []
        with span("blocking"):
            with span("index_probe"):
                keep = self._temporal_mask(
                    query, min_overlap_s
                ) & self._spatial_mask(query)
            with span("mmap_read"):
                return [self._db[self._ids[i]] for i in np.nonzero(keep)[0]]

    def ids_for(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> list[object]:
        """Like :meth:`candidates_for` but returning ids only."""
        return [
            t.traj_id for t in self.candidates_for(query, min_overlap_s)
        ]

    def temporal_ids_for(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> list[str]:
        """The time-only blocking result (the ``CandidateIndex`` baseline)."""
        if min_overlap_s < 0:
            raise ValidationError(
                f"min_overlap_s must be >= 0, got {min_overlap_s}"
            )
        if len(query) == 0 or not self._ids:
            return []
        mask = self._temporal_mask(query, min_overlap_s)
        return [self._ids[i] for i in np.nonzero(mask)[0]]

    def prune_counts(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> dict:
        """Candidate counts at each pruning stage (benchmark probe)."""
        if len(query) == 0 or not self._ids:
            return {"n_indexed": len(self._ids), "n_temporal": 0,
                    "n_spatiotemporal": 0}
        tmask = self._temporal_mask(query, min_overlap_s)
        stmask = tmask & self._spatial_mask(query)
        return {
            "n_indexed": len(self._ids),
            "n_temporal": int(tmask.sum()),
            "n_spatiotemporal": int(stmask.sum()),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, index_dir: str | Path, generation: int) -> None:
        """Persist the index, stamped with the store's ``generation``."""
        index_dir = Path(index_dir)
        index_dir.mkdir(parents=True, exist_ok=True)
        arrays = {
            "starts.f64": ("<f8", self._starts),
            "ends.f64": ("<f8", self._ends),
            "cells.i64": ("<i8", self._cells),
            "cell_offsets.i64": ("<i8", self._cell_offsets),
            "postings.i64": ("<i8", self._postings),
        }
        for fname, (dtype, arr) in arrays.items():
            path = index_dir / fname
            np.ascontiguousarray(arr, dtype=dtype).tofile(path)
            fsync_file(path)
        ids_path = index_dir / "ids.json"
        ids_path.write_text(json.dumps(self._ids))
        fsync_file(ids_path)
        fsync_dir(index_dir)
        write_json_atomic(
            index_dir / "meta.json",
            {
                "format": INDEX_FORMAT,
                "format_version": INDEX_VERSION,
                "generation": int(generation),
                "cell_size_m": self._cell_size_m,
                "vmax_kph": self._vmax_kph,
                "reach_gap_s": self._reach_gap_s,
                "n_candidates": len(self._ids),
                "n_cells": int(self._cells.size),
                "n_postings": int(self._postings.size),
                "bounding_cells": (
                    list(self.bounding_cells())
                    if self.bounding_cells() is not None
                    else None
                ),
            },
        )

    @staticmethod
    def _read_meta(index_dir: Path) -> dict:
        meta_path = index_dir / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreFormatError(f"{meta_path}: unreadable: {exc}") from exc
        if meta.get("format") != INDEX_FORMAT:
            raise StoreFormatError(f"{meta_path}: not a {INDEX_FORMAT} index")
        version = int(meta.get("format_version", -1))
        if not 1 <= version <= INDEX_VERSION:
            raise StoreFormatError(
                f"{meta_path}: unsupported index version {version}"
            )
        return meta

    @classmethod
    def load_params(cls, index_dir: str | Path) -> dict:
        """The persisted build parameters (for rebuild-after-compact)."""
        meta = cls._read_meta(Path(index_dir))
        return {
            "cell_size_m": float(meta["cell_size_m"]),
            "vmax_kph": float(meta["vmax_kph"]),
            "reach_gap_s": float(meta["reach_gap_s"]),
        }

    @classmethod
    def load_generation(cls, index_dir: str | Path) -> int:
        """The store generation a persisted index was built at."""
        return int(cls._read_meta(Path(index_dir)).get("generation", -1))

    @classmethod
    def open(
        cls,
        index_dir: str | Path,
        db: TrajectoryDatabase,
        expected_generation: int | None = None,
        strict_ids: bool = True,
    ) -> "SpatioTemporalIndex":
        """Memory-map a persisted index and bind it to its database.

        ``expected_generation`` (the store manifest's current value)
        guards against serving candidates from a superseded snapshot.
        ``strict_ids=False`` skips the indexed-ids-present check — the
        streaming union view opens the main index *behind* the store
        generation (delta blocks cover the gap) where sliding-window
        eviction may have dropped whole trajectories; its probes filter
        missing ids instead.
        """
        index_dir = Path(index_dir)
        meta = cls._read_meta(index_dir)
        if (
            expected_generation is not None
            and int(meta.get("generation", -1)) != int(expected_generation)
        ):
            raise StaleIndexError(
                f"{index_dir}: index was built at store generation "
                f"{meta.get('generation')}, store is now at "
                f"{expected_generation}; rebuild with build_index()"
            )
        try:
            ids = json.loads((index_dir / "ids.json").read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"{index_dir}/ids.json: unreadable: {exc}"
            ) from exc
        n = int(meta["n_candidates"])
        n_cells = int(meta["n_cells"])
        n_postings = int(meta["n_postings"])
        if len(ids) != n:
            raise StoreFormatError(
                f"{index_dir}: ids.json holds {len(ids)} ids, meta says {n}"
            )
        sizes = {
            "starts.f64": n,
            "ends.f64": n,
            "cells.i64": n_cells,
            "cell_offsets.i64": n_cells + 1,
            "postings.i64": n_postings,
        }
        loaded = {}
        for fname, dtype in _ARRAY_FILES:
            path = index_dir / fname
            want = sizes[fname]
            itemsize = np.dtype(dtype).itemsize
            try:
                actual = path.stat().st_size
            except OSError as exc:
                raise StoreFormatError(f"{path}: unreadable: {exc}") from exc
            if actual != want * itemsize:
                raise StoreFormatError(
                    f"{path}: expected {want} x {dtype}, found {actual} bytes"
                )
            loaded[fname] = (
                np.memmap(path, dtype=dtype, mode="r", shape=(want,))
                if want
                else np.empty(0, dtype=dtype)
            )
        if strict_ids:
            missing = [i for i in ids if i not in db]
            if missing:
                raise StaleIndexError(
                    f"{index_dir}: indexed ids missing from the database "
                    f"(first: {missing[0]!r}); rebuild the index"
                )
        index = cls(
            db,
            [str(i) for i in ids],
            loaded["starts.f64"],
            loaded["ends.f64"],
            loaded["cells.i64"],
            loaded["cell_offsets.i64"],
            loaded["postings.i64"],
            float(meta["cell_size_m"]),
            float(meta["vmax_kph"]),
            float(meta["reach_gap_s"]),
        )
        if "bounding_cells" in meta:
            bounds = meta["bounding_cells"]
            index._bounds = (
                tuple(int(v) for v in bounds) if bounds is not None else None
            )
            index._bounds_computed = True
        return index
