"""Versioned fitted-model (Mr/Ma) artifacts.

A serving deployment must be able to say *which* rejection/acceptance
model pair it is running, reproduce how that pair was fitted, and swap
in a refit without a restart.  This module gives the fitted pair a
durable identity: a :class:`ModelArtifact` bundles both
:class:`~repro.core.models.CompatibilityModel` count tables with
fitting provenance (dataset content hash, full config snapshot, sample
counts, fit timestamp, artifact schema version) under a
content-addressed artifact id.

Artifacts are persisted as ``models/<artifact_id>.json`` inside a
trajectory store and registered in the store manifest (see
:class:`~repro.store.format.ModelArtifactInfo`); the manifest's
``active_model`` pointer names the artifact the daemon serves by
default.  The payload is written with the same atomic-rename discipline
as the manifest, so a crash mid-save leaves at worst an unreferenced
file behind.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.errors import ValidationError

#: Schema version of the artifact *payload* (independent of the store's
#: manifest ``format_version``); readers reject anything newer.
ARTIFACT_SCHEMA_VERSION = 1

#: Magic string identifying an artifact payload.
ARTIFACT_FORMAT = "ftl-model"


def dataset_content_hash(databases: Iterable[TrajectoryDatabase]) -> str:
    """A deterministic content hash of the fitting data.

    Hashes every trajectory's id and raw record arrays, with the
    trajectories of each database visited in sorted-id order so the
    hash is insensitive to in-memory insertion order (a store load and
    a CSV load of the same data hash identically).
    """
    digest = hashlib.blake2b(digest_size=16)
    for db in databases:
        trajs = sorted(db, key=lambda t: str(t.traj_id))
        digest.update(f"db:{len(trajs)}".encode())
        for traj in trajs:
            digest.update(str(traj.traj_id).encode())
            for arr in (traj.ts, traj.xs, traj.ys):
                digest.update(np.ascontiguousarray(arr, dtype="<f8").tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class ModelProvenance:
    """How an artifact's model pair was fitted."""

    dataset_hash: str
    n_trajectories: int
    n_rejection_segments: int
    n_acceptance_segments: int
    n_acceptance_pairs: int
    fitted_at: float
    schema_version: int = ARTIFACT_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "dataset_hash": self.dataset_hash,
            "n_trajectories": self.n_trajectories,
            "n_rejection_segments": self.n_rejection_segments,
            "n_acceptance_segments": self.n_acceptance_segments,
            "n_acceptance_pairs": self.n_acceptance_pairs,
            "fitted_at": self.fitted_at,
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "ModelProvenance":
        try:
            version = int(obj["schema_version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed artifact provenance: {exc}"
            ) from exc
        if version > ARTIFACT_SCHEMA_VERSION:
            raise ValidationError(
                f"model artifact has schema_version {version}; this reader "
                f"supports up to {ARTIFACT_SCHEMA_VERSION} — the artifact "
                "was saved by a newer version of this software"
            )
        try:
            return cls(
                dataset_hash=str(obj["dataset_hash"]),
                n_trajectories=int(obj["n_trajectories"]),
                n_rejection_segments=int(obj["n_rejection_segments"]),
                n_acceptance_segments=int(obj["n_acceptance_segments"]),
                n_acceptance_pairs=int(obj["n_acceptance_pairs"]),
                fitted_at=float(obj["fitted_at"]),
                schema_version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed artifact provenance: {exc}"
            ) from exc


@dataclass(frozen=True)
class ModelArtifact:
    """A fitted (Mr, Ma) pair plus provenance, under a content-hash id."""

    rejection: CompatibilityModel
    acceptance: CompatibilityModel
    provenance: ModelProvenance

    def __post_init__(self) -> None:
        require_fitted_pair(self.rejection, self.acceptance)

    @property
    def config(self) -> FTLConfig:
        return self.rejection.config

    @property
    def artifact_id(self) -> str:
        """Content-addressed id: saving the same fit twice is idempotent."""
        body = {
            "rejection": self.rejection.to_dict(),
            "acceptance": self.acceptance.to_dict(),
            "provenance": self.provenance.to_dict(),
        }
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return "m-" + hashlib.blake2b(
            canonical.encode(), digest_size=8
        ).hexdigest()

    def to_dict(self) -> dict:
        return {
            "format": ARTIFACT_FORMAT,
            "id": self.artifact_id,
            "rejection": self.rejection.to_dict(),
            "acceptance": self.acceptance.to_dict(),
            "provenance": self.provenance.to_dict(),
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "ModelArtifact":
        if not isinstance(obj, dict) or obj.get("format") != ARTIFACT_FORMAT:
            raise ValidationError(f"not a {ARTIFACT_FORMAT} artifact payload")
        provenance = ModelProvenance.from_dict(obj.get("provenance", {}))
        try:
            rejection = CompatibilityModel.from_dict(obj["rejection"])
            acceptance = CompatibilityModel.from_dict(obj["acceptance"])
        except KeyError as exc:
            raise ValidationError(
                f"malformed artifact payload: missing {exc}"
            ) from exc
        artifact = cls(rejection, acceptance, provenance)
        declared = obj.get("id")
        if declared is not None and declared != artifact.artifact_id:
            raise ValidationError(
                f"artifact id mismatch: payload declares {declared!r} but "
                f"its content hashes to {artifact.artifact_id!r} — the file "
                "was corrupted or hand-edited"
            )
        return artifact

    def summary(self) -> dict:
        """The compact description ``ftl model inspect`` prints."""
        return {
            "id": self.artifact_id,
            "n_buckets": self.rejection.n_buckets,
            "config": self.config.to_dict(),
            "provenance": self.provenance.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"ModelArtifact(id={self.artifact_id!r}, "
            f"buckets={self.rejection.n_buckets})"
        )


def fit_model_artifact(
    databases: Sequence[TrajectoryDatabase],
    config: FTLConfig,
    rng: np.random.Generator,
    max_pairs: int | None = None,
    fitted_at: float | None = None,
) -> ModelArtifact:
    """Fit Mr and Ma on ``databases`` and wrap them with provenance."""
    databases = list(databases)
    dataset_hash = dataset_content_hash(databases)
    rejection = CompatibilityModel.fit_rejection(databases, config)
    acceptance = CompatibilityModel.fit_acceptance(
        databases, config, rng, max_pairs=max_pairs
    )
    cap = config.max_acceptance_pairs if max_pairs is None else max_pairs
    n_pairs = sum(
        min(cap, len(db) * (len(db) - 1) // 2) for db in databases
    )
    provenance = ModelProvenance(
        dataset_hash=dataset_hash,
        n_trajectories=sum(len(db) for db in databases),
        n_rejection_segments=rejection.n_segments,
        n_acceptance_segments=acceptance.n_segments,
        n_acceptance_pairs=n_pairs,
        fitted_at=time.time() if fitted_at is None else float(fitted_at),
    )
    return ModelArtifact(rejection, acceptance, provenance)


def diff_artifacts(a: ModelArtifact, b: ModelArtifact) -> dict:
    """A structured comparison of two artifacts (``ftl model diff``).

    Reports config fields that differ, provenance deltas and — when the
    bucketings agree — the largest absolute per-bucket probability
    change of each model.
    """
    config_a, config_b = a.config.to_dict(), b.config.to_dict()
    config_diff = {
        key: {"a": config_a[key], "b": config_b[key]}
        for key in config_a
        if config_a[key] != config_b[key]
    }
    out: dict = {
        "a": a.artifact_id,
        "b": b.artifact_id,
        "identical": a.artifact_id == b.artifact_id,
        "config_diff": config_diff,
        "provenance": {
            "a": a.provenance.to_dict(),
            "b": b.provenance.to_dict(),
        },
    }
    if a.rejection.n_buckets == b.rejection.n_buckets:
        out["max_abs_prob_delta"] = {
            "rejection": float(
                np.max(np.abs(a.rejection.prob_table - b.rejection.prob_table))
            ),
            "acceptance": float(
                np.max(
                    np.abs(a.acceptance.prob_table - b.acceptance.prob_table)
                )
            ),
        }
    else:
        out["max_abs_prob_delta"] = None
    return out
