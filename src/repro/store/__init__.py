"""Persistent mmap-backed trajectory storage with spatio-temporal blocking.

The scaling layer under the linking engine and the serving daemon:

* :class:`TrajectoryStore` — a columnar on-disk trajectory database
  (flat float64/int64 arrays + JSON manifest) opened via
  ``numpy.memmap`` for near-zero cold start, with append-only
  incremental ingest and an explicit :meth:`~TrajectoryStore.compact`
  snapshot step;
* :class:`SpatioTemporalIndex` — persisted blocking crossing time-window
  overlap with a ``Vmax``-reachability-dilated geo-grid, with a proven
  superset contract over :class:`~repro.core.prefilter.TimeOverlapPrefilter`;
* CLI verbs ``ftl store build/append/compact/stats/index`` and
  ``ftl serve --store DIR``.

See ``docs/store.md`` for the on-disk layout, manifest versioning and
the operations runbook.
"""

from repro.store.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    MODELS_DIR,
    ModelArtifactInfo,
    SegmentInfo,
    StoreManifest,
)
from repro.store.models import (
    ARTIFACT_SCHEMA_VERSION,
    ModelArtifact,
    ModelProvenance,
    dataset_content_hash,
    diff_artifacts,
    fit_model_artifact,
)
from repro.store.stindex import SpatioTemporalIndex, pack_cell_keys
from repro.store.store import (
    StoreStats,
    TrajectoryStore,
    build_store,
    open_store,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "MODELS_DIR",
    "ModelArtifact",
    "ModelArtifactInfo",
    "ModelProvenance",
    "SegmentInfo",
    "SpatioTemporalIndex",
    "pack_cell_keys",
    "StoreManifest",
    "StoreStats",
    "TrajectoryStore",
    "build_store",
    "dataset_content_hash",
    "diff_artifacts",
    "fit_model_artifact",
    "open_store",
]
