"""The persistent, mmap-backed trajectory store.

Every linking run used to rebuild :class:`~repro.core.database.TrajectoryDatabase`
in RAM from CSV/JSONL — startup cost linear in the corpus, resident
memory linear in the corpus.  :class:`TrajectoryStore` replaces that
with a columnar on-disk layout (see :mod:`repro.store.format`) opened
via ``numpy.memmap``: opening a 100k-trajectory store touches the
manifest, each segment's id table and offset table, but **no record
pages** — those fault in lazily as the engine reads them.

Semantics:

* **Append-only ingest.**  :meth:`append` writes a new immutable
  segment holding *record deltas*; a trajectory id appearing in several
  segments denotes one trajectory whose records are the time-sorted
  union of all its deltas (merge-on-read).  This is exactly what a
  serving daemon's ingest sessions produce.
* **Compaction.**  :meth:`compact` rewrites the store as one snapshot
  segment, materialising the merge and restoring fully zero-copy
  loads; the swap is atomic (manifest rename), so readers crash-safely
  see either the old or the new snapshot.
* **Crash safety.**  Segment directories are written and fsynced
  *before* the manifest references them; an interrupted append leaves
  an orphan directory that the next successful write garbage-collects,
  and the store keeps opening the last consistent snapshot (tested).

Loads feed the linking engine directly: :meth:`load` returns a
:class:`TrajectoryDatabase` whose trajectories wrap read-only memmap
slices (zero-copy for single-segment ids), bit-identical to the same
data loaded through CSV (tested).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import StoreFormatError, ValidationError
from repro.store.format import (
    FORMAT_VERSION,
    INDEX_DIR,
    MANIFEST_NAME,
    MODELS_DIR,
    ModelArtifactInfo,
    SegmentInfo,
    StoreManifest,
    open_segment_arrays,
    read_manifest,
    write_json_atomic,
    write_manifest,
    write_segment_arrays,
)
from repro.store.models import ModelArtifact


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time summary of a store (the ``ftl store stats`` output)."""

    path: str
    name: str
    format_version: int
    generation: int
    n_segments: int
    n_trajectories: int
    n_records: int
    n_bytes: int
    has_index: bool

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "name": self.name,
            "format_version": self.format_version,
            "generation": self.generation,
            "n_segments": self.n_segments,
            "n_trajectories": self.n_trajectories,
            "n_records": self.n_records,
            "n_bytes": self.n_bytes,
            "has_index": self.has_index,
        }


class TrajectoryStore:
    """One on-disk trajectory database; open with :meth:`open` or :meth:`create`.

    The handle is cheap: it holds the manifest plus lazily opened
    segment memmaps.  It is safe to keep open across appends *by the
    same handle*; a store mutated by another process should be
    re-opened.
    """

    def __init__(self, path: str | Path, manifest: StoreManifest) -> None:
        self._path = Path(path)
        self._manifest = manifest
        self._segments: list[tuple[SegmentInfo, tuple]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        db: TrajectoryDatabase | Iterable[Trajectory] | None = None,
        name: str = "",
    ) -> "TrajectoryStore":
        """Initialise a new store directory (optionally seeded with data)."""
        root = Path(path)
        if root.exists():
            if (root / MANIFEST_NAME).exists():
                raise ValidationError(f"{root}: store already exists")
            if any(root.iterdir()):
                raise ValidationError(f"{root}: directory exists and is not empty")
        root.mkdir(parents=True, exist_ok=True)
        if name == "" and isinstance(db, TrajectoryDatabase):
            name = db.name
        store = cls(root, StoreManifest(name=name))
        write_manifest(root, store._manifest)
        if db is not None:
            store.append(db)
        return store

    @classmethod
    def open(cls, path: str | Path) -> "TrajectoryStore":
        """Open an existing store (near-zero cost: metadata only)."""
        root = Path(path)
        return cls(root, read_manifest(root))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def manifest(self) -> StoreManifest:
        return self._manifest

    @property
    def name(self) -> str:
        return self._manifest.name

    @property
    def generation(self) -> int:
        return self._manifest.generation

    def __repr__(self) -> str:
        m = self._manifest
        return (
            f"TrajectoryStore({str(self._path)!r}, gen={m.generation}, "
            f"segments={len(m.segments)}, records={m.n_records})"
        )

    def ids(self) -> list[str]:
        """Distinct trajectory ids in first-seen (segment, slot) order."""
        seen: dict[str, None] = {}
        for _info, (_ts, _xs, _ys, _offsets, ids) in self._opened_segments():
            for traj_id in ids:
                seen.setdefault(traj_id, None)
        return list(seen)

    def stats(self) -> StoreStats:
        """Summary counters, including bytes on disk of live segments."""
        m = self._manifest
        n_bytes = 0
        for info in m.segments:
            seg_dir = self._path / info.dirname
            for child in seg_dir.iterdir():
                n_bytes += child.stat().st_size
        return StoreStats(
            path=str(self._path),
            name=m.name,
            format_version=m.format_version,
            generation=m.generation,
            n_segments=len(m.segments),
            n_trajectories=len(self.ids()),
            n_records=m.n_records,
            n_bytes=n_bytes,
            has_index=(self._path / INDEX_DIR / "meta.json").is_file(),
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _opened_segments(self) -> list[tuple[SegmentInfo, tuple]]:
        if self._segments is None:
            self._segments = [
                (info, open_segment_arrays(self._path / info.dirname, info))
                for info in self._manifest.segments
            ]
        return self._segments

    def load(self, name: str | None = None) -> TrajectoryDatabase:
        """Materialise the store as a :class:`TrajectoryDatabase`.

        Trajectories whose records live in a single segment wrap
        read-only memmap slices directly (zero-copy; pages fault in on
        first access).  Ids spanning several segments — appended record
        deltas not yet compacted — are merged and time-sorted into
        fresh arrays.

        Two deliberate speed choices keep a 100k-trajectory load well
        under a second: each segment's memmaps are re-wrapped as plain
        ndarray views (slicing ``np.memmap`` itself pays a costly
        ``__array_finalize__`` per slice), and ids that occur in only
        one segment — all of them, after a compact — skip the
        merge-buffer dict entirely.
        """
        segments = self._opened_segments()
        multi: set[str] = set()
        if len(segments) > 1:
            seen: set[str] = set()
            for _info, (_ts, _xs, _ys, _offsets, ids) in segments:
                for traj_id in ids:
                    (multi if traj_id in seen else seen).add(traj_id)
        db = TrajectoryDatabase(name=self._manifest.name if name is None else name)
        add = db.add
        unchecked = Trajectory.from_arrays_unchecked
        pieces: dict[str, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        order: list[str] = []
        # Sliding-window eviction: the manifest watermark masks records
        # with t < retain_after at read time.  Per-trajectory slices are
        # time-sorted, so the mask is one searchsorted per slice; whole
        # trajectories disappear when all their records age out.
        cut = self._manifest.retain_after
        for _info, (ts, xs, ys, offsets, ids) in segments:
            ts_v, xs_v, ys_v = np.asarray(ts), np.asarray(xs), np.asarray(ys)
            bounds = offsets.tolist()
            for slot, traj_id in enumerate(ids):
                a, b = bounds[slot], bounds[slot + 1]
                if cut:
                    a += int(np.searchsorted(ts_v[a:b], cut, side="left"))
                    if a == b:
                        continue
                if traj_id in multi:
                    parts = pieces.get(traj_id)
                    if parts is None:
                        parts = pieces[traj_id] = []
                        order.append(traj_id)
                    parts.append((ts_v[a:b], xs_v[a:b], ys_v[a:b]))
                else:
                    add(unchecked(ts_v[a:b], xs_v[a:b], ys_v[a:b], traj_id))
        for traj_id in order:
            parts = pieces[traj_id]
            ts = np.concatenate([p[0] for p in parts])
            xs = np.concatenate([p[1] for p in parts])
            ys = np.concatenate([p[2] for p in parts])
            db.add(Trajectory(ts, xs, ys, traj_id, sort=True))
        return db

    def read_segment(self, dirname: str) -> list[Trajectory]:
        """The record deltas of one live segment, watermark-filtered.

        Segments are the store's append log: each holds exactly what one
        :meth:`append` wrote.  The shard supervisor replays them to
        rehydrate a respawned worker's ingest-session evidence.
        """
        info = next(
            (s for s in self._manifest.segments if s.dirname == dirname), None
        )
        if info is None:
            raise ValidationError(
                f"{dirname}: not a live segment of {self._path}"
            )
        ts, xs, ys, offsets, ids = open_segment_arrays(
            self._path / dirname, info
        )
        ts_v, xs_v, ys_v = np.asarray(ts), np.asarray(xs), np.asarray(ys)
        bounds = offsets.tolist()
        cut = self._manifest.retain_after
        out: list[Trajectory] = []
        for slot, traj_id in enumerate(ids):
            a, b = bounds[slot], bounds[slot + 1]
            if cut:
                a += int(np.searchsorted(ts_v[a:b], cut, side="left"))
            if a < b:
                out.append(Trajectory.from_arrays_unchecked(
                    ts_v[a:b], xs_v[a:b], ys_v[a:b], traj_id
                ))
        return out

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _next_segment_dir(self) -> tuple[str, Path]:
        """A fresh segment directory name (skips orphans from crashes)."""
        taken = {info.dirname for info in self._manifest.segments}
        n = len(self._manifest.segments)
        while True:
            dirname = f"seg-{n:06d}"
            seg_dir = self._path / dirname
            if dirname not in taken and not seg_dir.exists():
                return dirname, seg_dir
            n += 1

    def _collect_garbage(self) -> None:
        """Remove segment directories the manifest no longer references.

        Orphans appear when an append crashed after writing its segment
        but before the manifest swap, and after :meth:`compact`.
        """
        live = {info.dirname for info in self._manifest.segments}
        for child in self._path.iterdir():
            if (
                child.is_dir()
                and child.name.startswith("seg-")
                and child.name not in live
            ):
                shutil.rmtree(child, ignore_errors=True)

    def _commit(self, manifest: StoreManifest) -> None:
        """Atomically install a new manifest; split out for crash tests."""
        write_manifest(self._path, manifest)
        self._manifest = manifest
        self._segments = None

    def append(
        self, trajectories: TrajectoryDatabase | Iterable[Trajectory]
    ) -> int:
        """Append one immutable segment of records; returns records written.

        Trajectory ids already present in the store are treated as
        *record deltas*: :meth:`load` merges all of an id's segments
        (see :meth:`compact`).  Empty trajectories are skipped — they
        carry no records to persist.
        """
        self._collect_garbage()
        ids: list[str] = []
        ts_parts: list[np.ndarray] = []
        xs_parts: list[np.ndarray] = []
        ys_parts: list[np.ndarray] = []
        lengths: list[int] = []
        seen: set[str] = set()
        for traj in trajectories:
            if len(traj) == 0:
                continue
            if traj.traj_id is None:
                raise ValidationError("stored trajectories need a non-None id")
            traj_id = str(traj.traj_id)
            if traj_id in seen:
                raise ValidationError(
                    f"duplicate trajectory id {traj_id!r} in one append batch"
                )
            seen.add(traj_id)
            ids.append(traj_id)
            ts_parts.append(traj.ts)
            xs_parts.append(traj.xs)
            ys_parts.append(traj.ys)
            lengths.append(len(traj))
        if not ids:
            return 0
        offsets = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        dirname, seg_dir = self._next_segment_dir()
        write_segment_arrays(
            seg_dir,
            np.concatenate(ts_parts),
            np.concatenate(xs_parts),
            np.concatenate(ys_parts),
            offsets,
            ids,
        )
        info = SegmentInfo(
            dirname=dirname,
            n_trajectories=len(ids),
            n_records=int(offsets[-1]),
        )
        self._commit(self._manifest.bumped(self._manifest.segments + (info,)))
        return info.n_records

    def expire_before(self, cutoff_t: float) -> int:
        """Raise the sliding-window eviction watermark to ``cutoff_t``.

        Records with ``t < cutoff_t`` (strictly — a record at exactly
        the cutoff survives, matching
        :meth:`repro.core.streaming.StreamingPairEvidence.expire_before`)
        stop being visible to :meth:`load` and :meth:`read_segment`
        immediately, without rewriting any segment; :meth:`compact`
        materialises the drop.  Commits a new manifest generation, so
        a plain persisted index goes stale (the streaming delta log
        records eviction markers to keep its union view live).  Returns
        the number of newly masked records; lowering the watermark is a
        no-op.
        """
        old = self._manifest.retain_after
        cut = float(cutoff_t)
        if cut <= old:
            return 0
        evicted = 0
        for _info, (ts, _xs, _ys, offsets, ids) in self._opened_segments():
            ts_v = np.asarray(ts)
            bounds = offsets.tolist()
            for slot in range(len(ids)):
                a, b = bounds[slot], bounds[slot + 1]
                evicted += int(np.searchsorted(ts_v[a:b], cut, side="left"))
                if old:
                    evicted -= int(
                        np.searchsorted(ts_v[a:b], old, side="left")
                    )
        self._commit(replace(
            self._manifest.bumped(self._manifest.segments), retain_after=cut
        ))
        return evicted

    def compact(self) -> StoreStats:
        """Rewrite the store as a single merged snapshot segment.

        Materialises the merge-on-read view (multi-segment ids become
        one time-sorted run), swaps the manifest atomically, deletes
        the superseded segments, and — when a blocking index was
        present — rebuilds it against the new snapshot so it never goes
        stale silently.  Safe on an already-compact store (no-op apart
        from a generation bump when segments exist).
        """
        from repro.store.stindex import SpatioTemporalIndex

        had_index = (self._path / INDEX_DIR / "meta.json").is_file()
        index_params: dict | None = None
        if had_index:
            index_params = SpatioTemporalIndex.load_params(
                self._path / INDEX_DIR
            )
        merged = self.load()
        ids: list[str] = []
        lengths: list[int] = []
        ts_parts, xs_parts, ys_parts = [], [], []
        for traj in merged:
            ids.append(str(traj.traj_id))
            lengths.append(len(traj))
            ts_parts.append(traj.ts)
            xs_parts.append(traj.xs)
            ys_parts.append(traj.ys)
        offsets = np.zeros(len(ids) + 1, dtype=np.int64)
        if lengths:
            np.cumsum(lengths, out=offsets[1:])
        dirname, seg_dir = self._next_segment_dir()
        write_segment_arrays(
            seg_dir,
            np.concatenate(ts_parts) if ts_parts else np.empty(0),
            np.concatenate(xs_parts) if xs_parts else np.empty(0),
            np.concatenate(ys_parts) if ys_parts else np.empty(0),
            offsets,
            ids,
        )
        info = SegmentInfo(
            dirname=dirname,
            n_trajectories=len(ids),
            n_records=int(offsets[-1]),
        )
        # The snapshot was written through the watermark-filtered load,
        # so evicted records are now physically gone: reset the watermark.
        self._commit(replace(
            self._manifest.bumped((info,)), retain_after=0.0
        ))
        self._collect_garbage()
        if had_index and index_params is not None:
            self.build_index(**index_params)
        return self.stats()

    # ------------------------------------------------------------------
    # Blocking index
    # ------------------------------------------------------------------
    def build_index(self, **params) -> "SpatioTemporalIndex":
        """Build and persist the spatio-temporal blocking index.

        Keyword arguments are forwarded to
        :meth:`repro.store.stindex.SpatioTemporalIndex.build`
        (``cell_size_m``, ``vmax_kph``, ``reach_gap_s``).
        """
        from repro.store.stindex import SpatioTemporalIndex

        index = SpatioTemporalIndex.build(self.load(), **params)
        index.save(self._path / INDEX_DIR, generation=self.generation)
        return index

    def open_index(self) -> "SpatioTemporalIndex":
        """Open the persisted blocking index for this store's snapshot.

        Raises :class:`~repro.errors.StaleIndexError` when the store
        has been appended to or compacted since the index was built
        (rebuild with :meth:`build_index`), and
        :class:`~repro.errors.StoreFormatError` when no index exists.
        """
        from repro.store.stindex import SpatioTemporalIndex

        index_dir = self._path / INDEX_DIR
        if not (index_dir / "meta.json").is_file():
            raise StoreFormatError(
                f"{self._path}: no blocking index (run build_index / "
                f"`ftl store index`)"
            )
        return SpatioTemporalIndex.open(
            index_dir, self.load(), expected_generation=self.generation
        )

    # ------------------------------------------------------------------
    # Fitted-model artifacts
    # ------------------------------------------------------------------
    def list_models(self) -> tuple[ModelArtifactInfo, ...]:
        """The registered model artifacts, in registration order."""
        return self._manifest.models

    @property
    def active_model_id(self) -> str | None:
        """Artifact id of the active model, or ``None`` when unset."""
        return self._manifest.active_model or None

    def save_model(
        self, artifact: ModelArtifact, created_at: float, activate: bool = False
    ) -> ModelArtifactInfo:
        """Persist an artifact under ``models/`` and register it.

        The payload file is written and fsynced *before* the manifest
        swap (the same discipline as segment appends): a crash mid-save
        leaves an unreferenced JSON file, never a registered-but-missing
        artifact.  Saving an already-registered artifact id is
        idempotent — artifacts are content-addressed, so the payload is
        byte-identical by construction.
        """
        artifact_id = artifact.artifact_id
        existing = next(
            (m for m in self._manifest.models if m.artifact_id == artifact_id),
            None,
        )
        if existing is not None:
            if activate and self._manifest.active_model != artifact_id:
                self.activate_model(artifact_id)
            return existing
        models_dir = self._path / MODELS_DIR
        models_dir.mkdir(parents=True, exist_ok=True)
        info = ModelArtifactInfo(
            artifact_id=artifact_id,
            filename=f"{artifact_id}.json",
            created_at=float(created_at),
        )
        write_json_atomic(models_dir / info.filename, artifact.to_dict())
        # Model registration leaves the data snapshot untouched, so the
        # generation is deliberately *not* bumped: a persisted blocking
        # index stays valid and shard plans see no drift.
        manifest = replace(
            self._manifest,
            format_version=FORMAT_VERSION,
            models=self._manifest.models + (info,),
        )
        if activate:
            manifest = replace(manifest, active_model=artifact_id)
        self._commit(manifest)
        return info

    def _model_info(self, artifact_id: str) -> ModelArtifactInfo:
        info = next(
            (m for m in self._manifest.models if m.artifact_id == artifact_id),
            None,
        )
        if info is None:
            known = [m.artifact_id for m in self._manifest.models]
            raise ValidationError(
                f"no model artifact {artifact_id!r} in {self._path} "
                f"(registered: {known or 'none'})"
            )
        return info

    def load_model(self, artifact_id: str | None = None) -> ModelArtifact:
        """Load one artifact (the active one when ``artifact_id`` is None)."""
        if artifact_id is None:
            artifact_id = self._manifest.active_model
            if not artifact_id:
                raise ValidationError(
                    f"{self._path}: no active model artifact (fit one with "
                    f"`ftl model fit` or pass an explicit artifact id)"
                )
        info = self._model_info(artifact_id)
        path = self._path / MODELS_DIR / info.filename
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise StoreFormatError(f"{path}: unreadable: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"{path}: invalid JSON: {exc}") from exc
        artifact = ModelArtifact.from_dict(payload)
        if artifact.artifact_id != artifact_id:
            raise StoreFormatError(
                f"{path}: content hashes to {artifact.artifact_id!r}, "
                f"manifest registered it as {artifact_id!r}"
            )
        return artifact

    def activate_model(self, artifact_id: str) -> ModelArtifactInfo:
        """Point ``active_model`` at a registered artifact (atomic)."""
        info = self._model_info(artifact_id)
        self._commit(
            replace(
                self._manifest,
                format_version=FORMAT_VERSION,
                active_model=artifact_id,
            )
        )
        return info


def build_store(
    path: str | Path,
    db: TrajectoryDatabase | Iterable[Trajectory],
    name: str = "",
) -> TrajectoryStore:
    """Create a store at ``path`` seeded with ``db`` (convenience wrapper)."""
    return TrajectoryStore.create(path, db, name=name)


def open_store(path: str | Path) -> TrajectoryStore:
    """Open the store at ``path`` (convenience wrapper)."""
    return TrajectoryStore.open(path)


__all__ = [
    "FORMAT_VERSION",
    "ModelArtifact",
    "ModelArtifactInfo",
    "StoreStats",
    "TrajectoryStore",
    "build_store",
    "open_store",
]
