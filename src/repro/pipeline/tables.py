"""Table I: dataset statistics, plus generic monospace table rendering."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ValidationError
from repro.synth.scenario import ScenarioPair


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a monospace table with right-aligned data columns."""
    if any(len(row) != len(headers) for row in rows):
        raise ValidationError("every row must match the header length")
    texts = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in texts)) if texts else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) if i == 0 else h.rjust(w)
                           for i, (h, w) in enumerate(zip(headers, widths))))
    lines.append("  ".join("-" * w for w in widths))
    for row in texts:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


#: The Table I row labels, in the paper's order.
TABLE1_ROW_LABELS = (
    "duration (days)",
    "mean of |P|",
    "stdv. of |P|",
    "mean of timediff in P (hours)",
    "stdv. of timediff in P (hours)",
    "mean of |Q|",
    "stdv. of |Q|",
    "mean of timediff in Q (hours)",
    "stdv. of timediff in Q (hours)",
)


def table1_column(pair: ScenarioPair, duration_days: float) -> list[float]:
    """The Table I statistics column for one dataset config."""
    p_stats = pair.p_db.stats()
    q_stats = pair.q_db.stats()
    return [
        duration_days,
        p_stats.mean_length,
        p_stats.std_length,
        p_stats.mean_gap_hours,
        p_stats.std_gap_hours,
        q_stats.mean_length,
        q_stats.std_length,
        q_stats.mean_gap_hours,
        q_stats.std_gap_hours,
    ]


def render_table1(
    pairs: Mapping[str, ScenarioPair],
    durations_days: Mapping[str, float],
) -> str:
    """Table I layout: one column per config, the paper's row labels.

    Parameters
    ----------
    pairs:
        Config name -> built scenario.
    durations_days:
        Config name -> nominal duration, for the first row.
    """
    if not pairs:
        raise ValidationError("render_table1 needs at least one config")
    names = list(pairs)
    columns = {
        name: table1_column(pairs[name], durations_days[name]) for name in names
    }
    rows = []
    for r, label in enumerate(TABLE1_ROW_LABELS):
        row: list[object] = [label]
        for name in names:
            value = columns[name][r]
            row.append(f"{value:.2f}")
        rows.append(row)
    return format_table(["statistic", *names], rows, title="Table I (synthetic analogue)")
