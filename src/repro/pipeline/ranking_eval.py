"""Fig. 6: ranking effectiveness.

Protocol (Section VII-C): with intentionally loose acceptance settings
((alpha1, alpha2) = (0.001, 0.08), phi_r = 0.4) each method returns a
large candidate pool; every (query, candidate) pair is scored by Eq. 2,
pooled across queries, globally sorted, and the curve reports — for
growing k — how many queries have their true match inside the global
top-k prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.metrics import hits_within_topk
from repro.errors import ValidationError
from repro.pipeline.experiment import (
    PairEvidence,
    collect_evidence,
    fit_model_pair,
)
from repro.synth.scenario import ScenarioPair

#: Loose settings used by the paper for this experiment.
LOOSE_ALPHA = (0.001, 0.08)
LOOSE_PHI_R = 0.4


@dataclass(frozen=True)
class RankingCurve:
    """The Fig. 6 curve for one method."""

    method: str
    ks: tuple[int, ...]
    hits: tuple[int, ...]
    n_queries: int
    n_pooled_candidates: int


def _pooled_scores(
    evidence: PairEvidence, masks: Sequence[np.ndarray]
) -> list[tuple[object, object, float]]:
    pooled: list[tuple[object, object, float]] = []
    for qe, mask in zip(evidence, masks):
        scores = qe.scores()
        for cid, keep, score in zip(qe.candidate_ids, mask, scores):
            if keep:
                pooled.append((qe.query_id, cid, float(score)))
    return pooled


def ranking_from_evidence(
    evidence: PairEvidence,
    truth: Mapping[object, object],
    ks: Sequence[int],
    alpha: tuple[float, float] = LOOSE_ALPHA,
    phi_r: float = LOOSE_PHI_R,
) -> dict[str, RankingCurve]:
    """Both methods' Fig. 6 curves from pre-computed evidence."""
    curves: dict[str, RankingCurve] = {}
    method_masks = {
        "alpha-filter": [qe.alpha_filter_mask(*alpha) for qe in evidence],
        "naive-bayes": [qe.naive_bayes_mask(phi_r) for qe in evidence],
    }
    for method, masks in method_masks.items():
        pooled = _pooled_scores(evidence, masks)
        hits = hits_within_topk(pooled, truth, list(ks))
        curves[method] = RankingCurve(
            method=method,
            ks=tuple(ks),
            hits=tuple(hits),
            n_queries=len(evidence),
            n_pooled_candidates=len(pooled),
        )
    return curves


def run_ranking_eval(
    pair: ScenarioPair,
    config: FTLConfig,
    rng: np.random.Generator,
    n_queries: int = 500,
    ks: Sequence[int] | None = None,
    alpha: tuple[float, float] = LOOSE_ALPHA,
    phi_r: float = LOOSE_PHI_R,
) -> dict[str, RankingCurve]:
    """The full Fig. 6 protocol on one scenario."""
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    mr, ma = fit_model_pair(pair, config, rng)
    n = min(n_queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)
    evidence = collect_evidence(pair, query_ids, mr, ma)
    if ks is None:
        top = max(n, 50)
        ks = [max(1, round(top * frac)) for frac in
              (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0)]
    return ranking_from_evidence(evidence, pair.truth, ks, alpha, phi_r)


def format_ranking(curves: Mapping[str, RankingCurve]) -> str:
    """Monospace rendering: one row per k, one column per method."""
    methods = sorted(curves)
    ks = curves[methods[0]].ks
    header = f"{'top-k':>8} " + " ".join(f"{m:>14}" for m in methods)
    lines = [header]
    for idx, k in enumerate(ks):
        row = f"{k:>8} " + " ".join(
            f"{curves[m].hits[idx]:>14}" for m in methods
        )
        lines.append(row)
    lines.append(
        "queries: "
        + ", ".join(f"{m}={curves[m].n_queries}" for m in methods)
    )
    return "\n".join(lines)
