"""Experiment pipeline: one module per paper table/figure.

* :mod:`repro.pipeline.tables` — Table I dataset statistics;
* :mod:`repro.pipeline.tradeoff` — Fig. 5 perceptiveness/selectiveness;
* :mod:`repro.pipeline.ranking_eval` — Fig. 6 ranking effectiveness;
* :mod:`repro.pipeline.runtime_eval` — Fig. 7 per-query runtime;
* :mod:`repro.pipeline.precision_eval` — Fig. 8 baseline comparison;
* :mod:`repro.pipeline.experiment` — shared evidence computation.
"""

from repro.pipeline.crossval import HoldoutResult, run_holdout
from repro.pipeline.experiment import (
    PairEvidence,
    QueryEvidence,
    collect_evidence,
    fit_model_pair,
)
from repro.pipeline.report import ReportSpec, generate_report, write_report
from repro.pipeline.score_analysis import (
    ScoreSeparation,
    auc_from_scores,
    separation_from_evidence,
)
from repro.pipeline.precision_eval import PrecisionResult, run_precision_comparison
from repro.pipeline.ranking_eval import RankingCurve, run_ranking_eval
from repro.pipeline.runtime_eval import RuntimeResult, run_runtime_eval
from repro.pipeline.tables import format_table, render_table1
from repro.pipeline.tradeoff import TradeoffPoint, run_tradeoff

__all__ = [
    "HoldoutResult",
    "PairEvidence",
    "PrecisionResult",
    "QueryEvidence",
    "RankingCurve",
    "ReportSpec",
    "RuntimeResult",
    "ScoreSeparation",
    "TradeoffPoint",
    "auc_from_scores",
    "collect_evidence",
    "fit_model_pair",
    "format_table",
    "generate_report",
    "render_table1",
    "run_holdout",
    "run_precision_comparison",
    "run_ranking_eval",
    "run_runtime_eval",
    "run_tradeoff",
    "separation_from_evidence",
    "write_report",
]
