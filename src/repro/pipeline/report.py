"""One-command reproduction report.

Runs a configurable subset of the paper's experiments and renders a
single markdown report (the automated counterpart of EXPERIMENTS.md).
Used by ``ftl report`` and by integration tests; all sizes are
parameters so tests can run a tiny-but-complete report in seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.config import FTLConfig
from repro.datasets.catalog import build_scenario, catalog_entry
from repro.errors import ValidationError
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.ranking_eval import format_ranking, ranking_from_evidence
from repro.pipeline.runtime_eval import format_runtime, run_runtime_eval
from repro.pipeline.score_analysis import (
    format_separation,
    separation_from_evidence,
)
from repro.pipeline.tables import render_table1
from repro.pipeline.tradeoff import format_tradeoff, tradeoff_from_evidence
from repro.version import __version__


@dataclass(frozen=True)
class ReportSpec:
    """What to include in a generated report.

    The defaults reproduce the mini-scale evaluation; tests shrink the
    dataset list and query count further.
    """

    datasets: Sequence[str] = (
        "SA-mini", "SB-mini", "SC-mini", "SD-mini", "SE-mini", "SF-mini",
    )
    n_queries: int = 25
    include_table1: bool = True
    include_tradeoff: bool = True
    include_ranking: bool = True
    include_runtime: bool = True
    include_separation: bool = True
    include_operating_point: bool = True
    reference_phi_r: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ValidationError("report needs at least one dataset")
        if self.n_queries < 1:
            raise ValidationError("n_queries must be >= 1")


def _nominal_duration(name: str) -> float:
    entry = catalog_entry(name)
    return entry.trim_days if entry.trim_days is not None else entry.duration_days


def generate_report(
    spec: ReportSpec = ReportSpec(), config: FTLConfig | None = None
) -> str:
    """Run the requested experiments and return the markdown report."""
    config = config if config is not None else FTLConfig()
    started = time.time()
    lines: list[str] = [
        "# FTL reproduction report",
        "",
        f"- library version: {__version__}",
        f"- datasets: {', '.join(spec.datasets)}",
        f"- queries per dataset: {spec.n_queries}",
        "",
    ]

    pairs = {name: build_scenario(name) for name in spec.datasets}
    evidences = {}
    for name, pair in pairs.items():
        rng = np.random.default_rng(spec.seed)
        mr, ma = fit_model_pair(pair, config, rng)
        n = min(spec.n_queries, len(pair.matched_query_ids()))
        qids = pair.sample_queries(n, rng)
        evidences[name] = (pair, collect_evidence(pair, qids, mr, ma))

    if spec.include_table1:
        lines += ["## Table I: dataset statistics", "", "```"]
        durations = {name: _nominal_duration(name) for name in spec.datasets}
        lines.append(render_table1(pairs, durations))
        lines += ["```", ""]

    if spec.include_tradeoff:
        lines += ["## Fig. 5: perceptiveness-selectiveness tradeoff", ""]
        for name, (pair, evidence) in evidences.items():
            curves = tradeoff_from_evidence(evidence, pair.truth)
            lines += [f"### {name}", "", "```",
                      format_tradeoff(curves), "```", ""]

    if spec.include_ranking:
        lines += ["## Fig. 6: ranking effectiveness", ""]
        for name, (pair, evidence) in evidences.items():
            n = len(evidence)
            ks = sorted({max(1, round(n * f)) for f in (0.1, 0.25, 0.5, 1.0)})
            curves = ranking_from_evidence(evidence, pair.truth, ks)
            lines += [f"### {name}", "", "```",
                      format_ranking(curves), "```", ""]

    if spec.include_runtime:
        lines += ["## Fig. 7: per-query runtime", "", "```"]
        results = []
        for name, pair in pairs.items():
            rng = np.random.default_rng(spec.seed)
            results.append(
                run_runtime_eval(
                    pair, config, rng,
                    n_queries=min(spec.n_queries, 10), dataset=name,
                )
            )
        lines += [format_runtime(results), "```", ""]

    if spec.include_operating_point:
        from repro.stats.bootstrap import perceptiveness_ci, selectiveness_ci

        lines += [
            f"## Reference operating point (Naive-Bayes, "
            f"phi_r = {spec.reference_phi_r:g}) with 95% bootstrap CIs",
            "",
            "```",
            f"{'dataset':<12} {'perceptiveness':>32} {'selectiveness':>32}",
        ]
        boot_rng = np.random.default_rng(spec.seed + 1)
        for name, (pair, evidence) in evidences.items():
            results = {}
            for qe in evidence:
                mask = qe.naive_bayes_mask(spec.reference_phi_r)
                results[qe.query_id] = [
                    cid for cid, keep in zip(qe.candidate_ids, mask) if keep
                ]
            perc = perceptiveness_ci(results, dict(pair.truth), boot_rng)
            sel = selectiveness_ci(results, len(pair.q_db), boot_rng)
            lines.append(f"{name:<12} {str(perc):>32} {str(sel):>32}")
        lines += ["```", ""]

    if spec.include_separation:
        lines += ["## Score separation (Eq. 2 AUC)", "", "```"]
        separations = {
            name: separation_from_evidence(evidence, pair.truth)
            for name, (pair, evidence) in evidences.items()
        }
        lines += [format_separation(separations), "```", ""]

    elapsed = time.time() - started
    lines += [f"_Generated in {elapsed:.1f}s._", ""]
    return "\n".join(lines)


def write_report(
    path: str | Path,
    spec: ReportSpec = ReportSpec(),
    config: FTLConfig | None = None,
) -> Path:
    """Generate and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(spec, config))
    return path
