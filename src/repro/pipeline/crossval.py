"""Held-out evaluation: do the fitted models generalise?

The paper fits ``Mr`` / ``Ma`` on the same databases it queries — fine
for its threat analysis, but a production deployment wants to know the
models transfer to *unseen* users.  This module splits the agent
population into train/test folds, fits the models on the training
trajectories only, and evaluates linking on the held-out queries,
reporting in-sample vs out-of-sample perceptiveness side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FTLConfig
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.errors import ValidationError
from repro.synth.scenario import ScenarioPair


@dataclass(frozen=True)
class HoldoutResult:
    """In-sample vs held-out linking quality under one model fit."""

    train_perceptiveness: float
    test_perceptiveness: float
    train_selectiveness: float
    test_selectiveness: float
    n_train_queries: int
    n_test_queries: int

    @property
    def generalisation_gap(self) -> float:
        """Train minus test perceptiveness (small = good transfer)."""
        return self.train_perceptiveness - self.test_perceptiveness


def _split_ids(
    ids: list, test_fraction: float, rng: np.random.Generator
) -> tuple[list, list]:
    n_test = max(1, int(round(test_fraction * len(ids))))
    if n_test >= len(ids):
        raise ValidationError("test_fraction leaves no training data")
    order = rng.permutation(len(ids))
    test = [ids[i] for i in order[:n_test]]
    train = [ids[i] for i in order[n_test:]]
    return train, test


def _evaluate(
    matcher: NaiveBayesMatcher,
    pair: ScenarioPair,
    query_ids: list,
) -> tuple[float, float]:
    hits = 0
    returned = 0
    for qid in query_ids:
        matches = {
            d.candidate_id
            for d in matcher.query(pair.p_db[qid], pair.q_db)
        }
        returned += len(matches)
        if pair.truth[qid] in matches:
            hits += 1
    n = len(query_ids)
    return hits / n, returned / (n * len(pair.q_db))


def run_holdout(
    pair: ScenarioPair,
    config: FTLConfig,
    rng: np.random.Generator,
    test_fraction: float = 0.3,
    phi_r: float = 0.1,
    max_queries_per_fold: int = 40,
) -> HoldoutResult:
    """Fit models on a training split and evaluate on held-out queries.

    The split is by *query identity*: the trajectories of held-out
    queries (both their P and Q sides) are excluded from model fitting,
    so the test queries are entirely unseen users.  The candidate pool
    for both folds is the full Q database — exactly the deployment
    situation.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    matched = pair.matched_query_ids()
    if len(matched) < 4:
        raise ValidationError("need at least 4 matched queries to split")
    train_ids, test_ids = _split_ids(matched, test_fraction, rng)

    held_out_q = {pair.truth[qid] for qid in test_ids}
    train_p = pair.p_db.subset(train_ids, name="train-P")
    train_q = pair.q_db.subset(
        [qid for qid in pair.q_db.ids() if qid not in held_out_q],
        name="train-Q",
    )
    mr = CompatibilityModel.fit_rejection([train_p, train_q], config)
    ma = CompatibilityModel.fit_acceptance([train_p, train_q], config, rng)
    matcher = NaiveBayesMatcher(mr, ma, phi_r)

    def cap(ids: list) -> list:
        if len(ids) <= max_queries_per_fold:
            return ids
        chosen = rng.choice(len(ids), size=max_queries_per_fold, replace=False)
        return [ids[i] for i in chosen]

    train_eval = cap(train_ids)
    test_eval = cap(test_ids)
    train_perc, train_sel = _evaluate(matcher, pair, train_eval)
    test_perc, test_sel = _evaluate(matcher, pair, test_eval)
    return HoldoutResult(
        train_perceptiveness=train_perc,
        test_perceptiveness=test_perc,
        train_selectiveness=train_sel,
        test_selectiveness=test_sel,
        n_train_queries=len(train_eval),
        n_test_queries=len(test_eval),
    )


def format_holdout(result: HoldoutResult) -> str:
    """Monospace rendering of a holdout evaluation."""
    return "\n".join(
        [
            f"{'fold':<8} {'queries':>8} {'perceptiveness':>15} "
            f"{'selectiveness':>14}",
            f"{'train':<8} {result.n_train_queries:>8} "
            f"{result.train_perceptiveness:>15.3f} "
            f"{result.train_selectiveness:>14.5f}",
            f"{'test':<8} {result.n_test_queries:>8} "
            f"{result.test_perceptiveness:>15.3f} "
            f"{result.test_selectiveness:>14.5f}",
            f"generalisation gap: {result.generalisation_gap:+.3f}",
        ]
    )
