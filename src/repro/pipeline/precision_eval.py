"""Fig. 8: FTL vs trajectory-similarity baselines under sparsity.

Protocol (Section VII-E): a query set of taxis is matched against a
candidate pool (containing the true matches) at decreasing sampling
rates.  For each similarity baseline (P2T, DTW, LCSS, EDR), a query
counts as *found* when its true match is inside the measure's top-10
candidates.  FTL (Naive-Bayes) counts a query as found when the true
match is among its positive decisions — the paper notes over 90% of
queries return a single positive, so FTL takes no top-10 advantage.
Precision is the found fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.common import SimilarityRetriever
from repro.baselines.dtw import dtw_distance
from repro.baselines.edr import edr_distance
from repro.baselines.lcss import lcss_distance
from repro.baselines.p2t import p2t_distance
from repro.config import FTLConfig
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.errors import ValidationError
from repro.pipeline.experiment import fit_model_pair
from repro.synth.downsample import downsample_pair
from repro.synth.scenario import ScenarioPair

#: The Fig. 8(a) high-rate grid and Fig. 8(b) low-rate grid.
HIGH_RATE_GRID = (1.0, 0.8, 0.6, 0.4, 0.2, 0.1)
LOW_RATE_GRID = (0.08, 0.06, 0.04, 0.02)

BASELINE_NAMES = ("P2T", "DTW", "LCSS", "EDR")


@dataclass(frozen=True)
class PrecisionResult:
    """Precision of every method at one sampling rate."""

    rate: float
    precision: Mapping[str, float]  # method name -> found fraction
    n_queries: int
    n_candidates: int


def _make_retrievers(
    max_points: int, eps_m: float, band: int | None
) -> dict[str, SimilarityRetriever]:
    return {
        "P2T": SimilarityRetriever(p2t_distance, max_points=max_points),
        "DTW": SimilarityRetriever(
            lambda p, q: dtw_distance(p, q, band=band), max_points=max_points
        ),
        "LCSS": SimilarityRetriever(
            lambda p, q: lcss_distance(p, q, eps_m=eps_m), max_points=max_points
        ),
        "EDR": SimilarityRetriever(
            lambda p, q: edr_distance(p, q, eps_m=eps_m), max_points=max_points
        ),
    }


def evaluate_at_rate(
    base_pair: ScenarioPair,
    rate: float,
    query_ids: Sequence[object],
    config: FTLConfig,
    rng: np.random.Generator,
    top_k: int = 10,
    max_points: int = 100,
    eps_m: float = 300.0,
    band: int | None = None,
    phi_r: float = 0.05,
) -> PrecisionResult:
    """One Fig. 8 column: all five methods at one sampling rate."""
    if not 0.0 < rate <= 1.0:
        raise ValidationError(f"rate must be in (0, 1], got {rate}")
    pair = (
        base_pair
        if rate == 1.0
        else downsample_pair(base_pair, rate, rate, rng)
    )
    valid_queries = [
        qid
        for qid in query_ids
        if qid in pair.p_db and pair.truth.get(qid) in pair.q_db
    ]
    if not valid_queries:
        raise ValidationError(
            f"no usable queries remain at rate {rate}; the data is too sparse"
        )
    precision: dict[str, float] = {}

    # FTL (Naive-Bayes): found iff the true match is a positive decision.
    mr, ma = fit_model_pair(pair, config, rng)
    matcher = NaiveBayesMatcher(mr, ma, phi_r)
    hits = 0
    for qid in valid_queries:
        positives = {
            d.candidate_id for d in matcher.query(pair.p_db[qid], pair.q_db)
        }
        if pair.truth[qid] in positives:
            hits += 1
    precision["FTL"] = hits / len(valid_queries)

    # Similarity baselines: found iff the true match is in the top-k.
    for name, retriever in _make_retrievers(max_points, eps_m, band).items():
        hits = 0
        for qid in valid_queries:
            top = retriever.top_k(pair.p_db[qid], pair.q_db, top_k)
            if pair.truth[qid] in top:
                hits += 1
        precision[name] = hits / len(valid_queries)

    return PrecisionResult(
        rate=rate,
        precision=precision,
        n_queries=len(valid_queries),
        n_candidates=len(pair.q_db),
    )


def run_precision_comparison(
    base_pair: ScenarioPair,
    config: FTLConfig,
    rng: np.random.Generator,
    rates: Sequence[float] = HIGH_RATE_GRID,
    n_queries: int = 100,
    **eval_kwargs,
) -> list[PrecisionResult]:
    """The full Fig. 8 sweep over a sampling-rate grid."""
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    n = min(n_queries, len(base_pair.matched_query_ids()))
    query_ids = base_pair.sample_queries(n, rng)
    return [
        evaluate_at_rate(base_pair, rate, query_ids, config, rng, **eval_kwargs)
        for rate in rates
    ]


def format_precision(results: Sequence[PrecisionResult]) -> str:
    """Monospace rendering: rows = rates, columns = methods (like Fig. 8)."""
    methods = ["FTL", *BASELINE_NAMES]
    header = f"{'rate':>6} " + " ".join(f"{m:>6}" for m in methods)
    lines = [header]
    for result in results:
        row = f"{result.rate:>6.2f} " + " ".join(
            f"{100 * result.precision[m]:>5.0f}%" for m in methods
        )
        lines.append(row)
    return "\n".join(lines)
