"""Score-distribution analysis: how separable are true and false pairs?

Beyond the paper's operating-point metrics, a threshold-free view of
FTL quality: collect the Eq. 2 scores (or NB log-likelihood ratios) of
*true* (same-person) and *false* (different-person) pairs and compute

* the ROC AUC — the probability that a random true pair outscores a
  random false pair (1.0 = perfect separation, 0.5 = chance);
* summary quantiles of both score populations.

Used by tests and available for custom evaluation; the AUC is also the
cleanest way to compare configs whose parameter ladders are not
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ValidationError
from repro.pipeline.experiment import PairEvidence


def auc_from_scores(
    true_scores: np.ndarray, false_scores: np.ndarray
) -> float:
    """Mann-Whitney AUC: P(true > false) + 0.5 P(true == false)."""
    true_scores = np.asarray(true_scores, dtype=np.float64)
    false_scores = np.asarray(false_scores, dtype=np.float64)
    if true_scores.size == 0 or false_scores.size == 0:
        raise ValidationError("both score populations must be non-empty")
    # Rank-based computation: O((n+m) log(n+m)).
    combined = np.concatenate([true_scores, false_scores])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    # Midranks for ties.
    sorted_vals = combined[order]
    idx = 0
    while idx < sorted_vals.size:
        j = idx
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[idx]:
            j += 1
        if j > idx:
            mid = (idx + 1 + j + 1) / 2.0
            ranks[order[idx : j + 1]] = mid
        idx = j + 1
    n_true = true_scores.size
    n_false = false_scores.size
    rank_sum = ranks[:n_true].sum()
    u_stat = rank_sum - n_true * (n_true + 1) / 2.0
    return float(u_stat / (n_true * n_false))


@dataclass(frozen=True)
class ScoreSeparation:
    """Separation statistics of true vs false pair scores."""

    auc: float
    n_true: int
    n_false: int
    true_median: float
    false_median: float
    true_q10: float
    false_q90: float

    @property
    def medians_ordered(self) -> bool:
        """Whether the true-pair median exceeds the false-pair median."""
        return self.true_median > self.false_median


def separation_from_evidence(
    evidence: PairEvidence,
    truth: Mapping[object, object],
    statistic: str = "score",
) -> ScoreSeparation:
    """Separation of true vs false pairs from pre-computed evidence.

    Parameters
    ----------
    statistic:
        ``"score"`` (Eq. 2) or ``"llr"`` (NB log-likelihood ratio).
    """
    if statistic not in ("score", "llr"):
        raise ValidationError(f"unknown statistic {statistic!r}")
    true_vals: list[float] = []
    false_vals: list[float] = []
    for qe in evidence:
        values = qe.scores() if statistic == "score" else qe.llr
        match = truth.get(qe.query_id)
        for cid, value in zip(qe.candidate_ids, values):
            (true_vals if cid == match else false_vals).append(float(value))
    if not true_vals or not false_vals:
        raise ValidationError("need both true and false pairs in the evidence")
    true_arr = np.asarray(true_vals)
    false_arr = np.asarray(false_vals)
    return ScoreSeparation(
        auc=auc_from_scores(true_arr, false_arr),
        n_true=true_arr.size,
        n_false=false_arr.size,
        true_median=float(np.median(true_arr)),
        false_median=float(np.median(false_arr)),
        true_q10=float(np.quantile(true_arr, 0.10)),
        false_q90=float(np.quantile(false_arr, 0.90)),
    )


def format_separation(
    separations: Mapping[str, ScoreSeparation]
) -> str:
    """Monospace rendering: one row per labelled separation."""
    lines = [
        f"{'dataset':<12} {'AUC':>7} {'true med':>9} {'false med':>10} "
        f"{'true q10':>9} {'false q90':>10}"
    ]
    for label, sep in separations.items():
        lines.append(
            f"{label:<12} {sep.auc:>7.4f} {sep.true_median:>9.4f} "
            f"{sep.false_median:>10.4f} {sep.true_q10:>9.4f} "
            f"{sep.false_q90:>10.4f}"
        )
    return "\n".join(lines)
