"""Shared experiment machinery: model fitting and pairwise evidence.

Several experiments sweep *parameters* (alpha levels, priors) over a
fixed set of (query, candidate) pairs.  The expensive part — aligning
each pair, evaluating both Poisson-Binomial p-values and the
Naive-Bayes log-likelihood ratio — does not depend on those parameters,
so :func:`collect_evidence` computes it once per pair and the sweeps
reduce to thresholding:

* (alpha1, alpha2)-filtering accepts a pair iff
  ``p1 >= alpha1 and p2 < alpha2``;
* Naive-Bayes with prior ``phi_r`` declares *same person* iff
  ``llr >= log(phi_a) - log(phi_r)`` where ``llr`` is the
  prior-free log-likelihood ratio ``log L(Mr) - log L(Ma)``.

This mirrors exactly what the per-pair matcher classes compute; the
equivalence is covered by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.alignment import mutual_segment_profile
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import _log_likelihood
from repro.errors import ValidationError
from repro.synth.scenario import ScenarioPair


def fit_model_pair(
    pair: ScenarioPair, config: FTLConfig, rng: np.random.Generator
) -> tuple[CompatibilityModel, CompatibilityModel]:
    """Fit (Mr, Ma) on a scenario's two databases."""
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    return mr, ma


@dataclass(frozen=True)
class QueryEvidence:
    """Per-candidate evidence for one query.

    ``p1[i]`` / ``p2[i]`` / ``llr[i]`` refer to ``candidate_ids[i]``.
    """

    query_id: object
    candidate_ids: tuple[object, ...]
    p1: np.ndarray
    p2: np.ndarray
    llr: np.ndarray

    def alpha_filter_mask(self, alpha1: float, alpha2: float) -> np.ndarray:
        """Accepted-candidate mask under (alpha1, alpha2)-filtering."""
        return (self.p1 >= alpha1) & (self.p2 < alpha2)

    def naive_bayes_mask(self, phi_r: float) -> np.ndarray:
        """Same-person mask under Naive-Bayes with prior ``phi_r``."""
        if not 0.0 < phi_r < 1.0:
            raise ValidationError(f"phi_r must be in (0, 1), got {phi_r}")
        threshold = math.log(1.0 - phi_r) - math.log(phi_r)
        return self.llr >= threshold

    def scores(self) -> np.ndarray:
        """Eq. 2 ranking scores ``v = p1 * (1 - p2)`` per candidate."""
        return self.p1 * (1.0 - self.p2)


@dataclass(frozen=True)
class PairEvidence:
    """Evidence for a set of queries against one candidate database."""

    queries: tuple[QueryEvidence, ...]
    n_candidates: int

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def collect_evidence(
    pair: ScenarioPair,
    query_ids: Sequence[object],
    mr: CompatibilityModel,
    ma: CompatibilityModel,
) -> PairEvidence:
    """Compute (p1, p2, llr) for every (query, candidate) combination."""
    if not query_ids:
        raise ValidationError("need at least one query id")
    config = mr.config
    floor = config.prob_floor
    candidates = list(pair.q_db)
    candidate_ids = tuple(c.traj_id for c in candidates)
    queries: list[QueryEvidence] = []
    for qid in query_ids:
        query = pair.p_db[qid]
        p1 = np.empty(len(candidates))
        p2 = np.empty(len(candidates))
        llr = np.empty(len(candidates))
        for i, candidate in enumerate(candidates):
            profile = mutual_segment_profile(query, candidate, config)
            within = profile.within_horizon(mr.n_buckets)
            p1[i] = rejection_pvalue(profile, mr)
            p2[i] = acceptance_pvalue(profile, ma)
            ll_r = _log_likelihood(
                mr.probs_for(within.buckets), within.incompatible, floor
            )
            ll_a = _log_likelihood(
                ma.probs_for(within.buckets), within.incompatible, floor
            )
            llr[i] = ll_r - ll_a
        queries.append(
            QueryEvidence(
                query_id=qid,
                candidate_ids=candidate_ids,
                p1=p1,
                p2=p2,
                llr=llr,
            )
        )
    return PairEvidence(queries=tuple(queries), n_candidates=len(candidates))


def perceptiveness_selectiveness(
    evidence: PairEvidence,
    truth,
    masks_by_query: Sequence[np.ndarray],
) -> tuple[float, float]:
    """Metrics for one operating point given per-query accept masks."""
    if len(masks_by_query) != len(evidence):
        raise ValidationError("one mask per query is required")
    hits = 0
    returned = 0
    for qe, mask in zip(evidence, masks_by_query):
        accepted = {cid for cid, keep in zip(qe.candidate_ids, mask) if keep}
        returned += len(accepted)
        if truth.get(qe.query_id) in accepted:
            hits += 1
    n_queries = len(evidence)
    return hits / n_queries, returned / (n_queries * evidence.n_candidates)
