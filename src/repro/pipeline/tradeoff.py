"""Fig. 5: the perceptiveness-selectiveness tradeoff.

For each dataset config the paper sweeps a ladder of (alpha1, alpha2)
pairs and of phi_r values, plotting the (selectiveness, perceptiveness)
point of each setting.  The parameter ladders below are the ones
labelled on the SB curves in Fig. 5(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.errors import ValidationError
from repro.pipeline.experiment import (
    PairEvidence,
    collect_evidence,
    fit_model_pair,
    perceptiveness_selectiveness,
)
from repro.synth.scenario import ScenarioPair

#: The paper's alpha ladder (strict -> loose), as labelled in Fig. 5(a).
DEFAULT_ALPHA_LADDER: tuple[tuple[float, float], ...] = (
    (0.2, 0.01),
    (0.1, 0.02),
    (0.05, 0.05),
    (0.02, 0.1),
    (0.01, 0.2),
    (0.001, 0.4),
)

#: The paper's phi_r ladder (strict -> loose).
DEFAULT_PHI_LADDER: tuple[float, ...] = (0.001, 0.005, 0.02, 0.05, 0.1, 0.3, 0.5)


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point on a tradeoff curve."""

    method: str
    param_label: str
    perceptiveness: float
    selectiveness: float


def tradeoff_from_evidence(
    evidence: PairEvidence,
    truth: Mapping[object, object],
    alpha_ladder: Sequence[tuple[float, float]] = DEFAULT_ALPHA_LADDER,
    phi_ladder: Sequence[float] = DEFAULT_PHI_LADDER,
) -> dict[str, list[TradeoffPoint]]:
    """Evaluate both methods' ladders on pre-computed evidence."""
    curves: dict[str, list[TradeoffPoint]] = {"alpha-filter": [], "naive-bayes": []}
    for alpha1, alpha2 in alpha_ladder:
        masks = [qe.alpha_filter_mask(alpha1, alpha2) for qe in evidence]
        perc, sel = perceptiveness_selectiveness(evidence, truth, masks)
        curves["alpha-filter"].append(
            TradeoffPoint(
                method="alpha-filter",
                param_label=f"a1={alpha1:g},a2={alpha2:g}",
                perceptiveness=perc,
                selectiveness=sel,
            )
        )
    for phi_r in phi_ladder:
        masks = [qe.naive_bayes_mask(phi_r) for qe in evidence]
        perc, sel = perceptiveness_selectiveness(evidence, truth, masks)
        curves["naive-bayes"].append(
            TradeoffPoint(
                method="naive-bayes",
                param_label=f"phi_r={phi_r:g}",
                perceptiveness=perc,
                selectiveness=sel,
            )
        )
    return curves


def run_tradeoff(
    pair: ScenarioPair,
    config: FTLConfig,
    rng: np.random.Generator,
    n_queries: int = 200,
    alpha_ladder: Sequence[tuple[float, float]] = DEFAULT_ALPHA_LADDER,
    phi_ladder: Sequence[float] = DEFAULT_PHI_LADDER,
) -> dict[str, list[TradeoffPoint]]:
    """Fit models, sample queries and produce both tradeoff curves.

    ``n_queries`` is capped at the number of ground-truth queries (the
    paper samples 200).
    """
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    mr, ma = fit_model_pair(pair, config, rng)
    n = min(n_queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)
    evidence = collect_evidence(pair, query_ids, mr, ma)
    return tradeoff_from_evidence(evidence, pair.truth, alpha_ladder, phi_ladder)


def format_tradeoff(curves: Mapping[str, Sequence[TradeoffPoint]]) -> str:
    """Monospace rendering of the two curves (one row per setting)."""
    lines = [f"{'method':<13} {'setting':<22} {'selectiveness':>14} {'perceptiveness':>15}"]
    for method in sorted(curves):
        for point in curves[method]:
            lines.append(
                f"{point.method:<13} {point.param_label:<22} "
                f"{point.selectiveness:>14.5f} {point.perceptiveness:>15.3f}"
            )
    return "\n".join(lines)
