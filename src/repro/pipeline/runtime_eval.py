"""Fig. 7: per-query runtime of the two algorithms.

The paper measures the mean wall-clock time to answer one query (one
pass over all of ``Q``) for each dataset config, finding Naive-Bayes
much faster than (alpha1, alpha2)-filtering (the latter evaluates two
Poisson-Binomial tail probabilities per pair; the former only a linear
log-likelihood).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.filtering import AlphaFilter
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.errors import ValidationError
from repro.pipeline.experiment import fit_model_pair
from repro.synth.scenario import ScenarioPair


@dataclass(frozen=True)
class RuntimeResult:
    """Mean seconds per query for both methods on one dataset config."""

    dataset: str
    alpha_filter_s: float
    naive_bayes_s: float
    n_queries: int

    @property
    def speedup(self) -> float:
        """How many times faster Naive-Bayes is."""
        if self.naive_bayes_s == 0:
            return float("inf")
        return self.alpha_filter_s / self.naive_bayes_s


def run_runtime_eval(
    pair: ScenarioPair,
    config: FTLConfig,
    rng: np.random.Generator,
    n_queries: int = 200,
    dataset: str = "",
    alpha: tuple[float, float] = (0.05, 0.05),
    phi_r: float = 0.05,
) -> RuntimeResult:
    """Time both matchers over the same random query set."""
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    mr, ma = fit_model_pair(pair, config, rng)
    n = min(n_queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)
    queries = [pair.p_db[qid] for qid in query_ids]

    alpha_matcher = AlphaFilter(mr, ma, *alpha)
    start = time.perf_counter()
    for query in queries:
        alpha_matcher.query(query, pair.q_db)
    alpha_s = (time.perf_counter() - start) / n

    nb_matcher = NaiveBayesMatcher(mr, ma, phi_r)
    start = time.perf_counter()
    for query in queries:
        nb_matcher.query(query, pair.q_db)
    nb_s = (time.perf_counter() - start) / n

    return RuntimeResult(
        dataset=dataset, alpha_filter_s=alpha_s, naive_bayes_s=nb_s, n_queries=n
    )


def format_runtime(results: Sequence[RuntimeResult]) -> str:
    """Monospace rendering: one row per dataset config."""
    lines = [
        f"{'dataset':<10} {'alpha-filter s/query':>21} "
        f"{'naive-bayes s/query':>20} {'speedup':>9}"
    ]
    for result in results:
        lines.append(
            f"{result.dataset:<10} {result.alpha_filter_s:>21.4f} "
            f"{result.naive_bayes_s:>20.4f} {result.speedup:>8.1f}x"
        )
    return "\n".join(lines)
