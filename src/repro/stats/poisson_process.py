"""Homogeneous and inhomogeneous Poisson process samplers.

Section VI of the paper models service access patterns as independent
Poisson processes.  The samplers here drive both the theory-validation
experiments (Fig. 4) and the synthetic observation services of
:mod:`repro.synth.observation`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ValidationError


def sample_poisson_process(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> np.ndarray:
    """Event times of a homogeneous Poisson process on ``[start, start+duration)``.

    Parameters
    ----------
    rate:
        Events per unit time (>= 0).
    duration:
        Window length in the same time unit (>= 0).

    Returns
    -------
    Sorted float64 array of event times.
    """
    if rate < 0:
        raise ValidationError(f"rate must be >= 0, got {rate}")
    if duration < 0:
        raise ValidationError(f"duration must be >= 0, got {duration}")
    n = int(rng.poisson(rate * duration))
    times = rng.uniform(start, start + duration, size=n)
    times.sort()
    return times


def sample_inhomogeneous_poisson(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    max_rate: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> np.ndarray:
    """Event times of an inhomogeneous Poisson process, by thinning.

    Parameters
    ----------
    rate_fn:
        Vectorised intensity function of absolute time; must satisfy
        ``0 <= rate_fn(t) <= max_rate`` on the window.
    max_rate:
        Dominating constant rate used for the candidate process.
    """
    if max_rate < 0:
        raise ValidationError(f"max_rate must be >= 0, got {max_rate}")
    candidates = sample_poisson_process(max_rate, duration, rng, start=start)
    if candidates.size == 0:
        return candidates
    rates = np.asarray(rate_fn(candidates), dtype=np.float64)
    if np.any(rates < 0) or np.any(rates > max_rate * (1.0 + 1e-9)):
        raise ValidationError("rate_fn must stay within [0, max_rate]")
    keep = rng.random(candidates.size) < rates / max_rate
    return candidates[keep]


def merge_processes(
    times_a: np.ndarray, times_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted event-time arrays, labelling each event's origin.

    Returns
    -------
    ``(times, labels)`` where ``labels`` is 0 for events of ``times_a``
    and 1 for events of ``times_b``.  Ties keep ``times_a`` first
    (stable merge).
    """
    times_a = np.asarray(times_a, dtype=np.float64)
    times_b = np.asarray(times_b, dtype=np.float64)
    merged = np.concatenate([times_a, times_b])
    labels = np.concatenate(
        [
            np.zeros(times_a.size, dtype=np.int8),
            np.ones(times_b.size, dtype=np.int8),
        ]
    )
    order = np.argsort(merged, kind="stable")
    return merged[order], labels[order]


def count_label_changes(labels: np.ndarray) -> int:
    """Number of adjacent label changes — i.e. of mutual segments."""
    labels = np.asarray(labels)
    if labels.size < 2:
        return 0
    return int(np.count_nonzero(labels[1:] != labels[:-1]))
