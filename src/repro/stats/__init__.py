"""Statistical machinery: Poisson-Binomial law, Poisson processes, theory."""

from repro.stats.poisson_binomial import (
    PoissonBinomial,
    pb_cdf,
    pb_pmf,
    pb_sf,
)
from repro.stats.poisson_process import (
    merge_processes,
    sample_poisson_process,
)
from repro.stats.theory import (
    expected_mutual_segments,
    expected_mutual_segments_approx,
    mutual_segment_count_pmf,
    mutual_segment_count_pmf_poisson,
    mutual_segment_length_pdf,
    simulate_mutual_segment_counts,
    simulate_mutual_segment_lengths,
)

__all__ = [
    "PoissonBinomial",
    "expected_mutual_segments",
    "expected_mutual_segments_approx",
    "merge_processes",
    "mutual_segment_count_pmf",
    "mutual_segment_count_pmf_poisson",
    "mutual_segment_length_pdf",
    "pb_cdf",
    "pb_pmf",
    "pb_sf",
    "sample_poisson_process",
    "simulate_mutual_segment_counts",
    "simulate_mutual_segment_lengths",
]
