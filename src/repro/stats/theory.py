"""Section VI theory: frequency and duration of mutual segments.

Service accesses of the two sources are two independent Poisson processes
``N_P``, ``N_Q`` with rates ``lam_p``, ``lam_q`` per unit time.  The paper
studies:

* **Problem 1** — the pmf ``fX(x)`` of the number ``X`` of mutual
  segments in one unit of time.  We compute it exactly by conditioning
  on the merged event count ``k ~ Poisson(lam_p + lam_q)`` and running a
  transfer-matrix DP over the iid source labels (each event comes from
  ``P`` independently with probability ``lam_p / (lam_p + lam_q)``); a
  mutual segment is an adjacent label change.  This is algebraically the
  same quantity as the paper's closed-form ``mu(x|k)`` enumeration.
* **Problem 2** — the exact expectation
  ``E(X) = 2 a b / (a+b) - (1 - e^{-(a+b)}) * 2 a b / (a+b)^2`` and the
  approximation ``E^(X) = 2 a b / (a+b)`` whose Poisson law is the
  paper's ``f^X``.
* **Problem 3 / Corollary 6.2** — mutual segment time length
  ``Y ~ Exponential(lam_p + lam_q)``.

Monte-Carlo counterparts (used in tests and Fig. 4) live here too.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.stats.poisson_process import (
    count_label_changes,
    merge_processes,
    sample_poisson_process,
)


def _validate_rates(lam_p: float, lam_q: float) -> tuple[float, float]:
    if not (lam_p > 0 and lam_q > 0):
        raise ValidationError(
            f"rates must be positive, got lam_p={lam_p}, lam_q={lam_q}"
        )
    return float(lam_p), float(lam_q)


def expected_mutual_segments(lam_p: float, lam_q: float) -> float:
    """Exact ``E(X)`` — expected mutual segments per unit time (Problem 2)."""
    lam_p, lam_q = _validate_rates(lam_p, lam_q)
    total = lam_p + lam_q
    lead = 2.0 * lam_p * lam_q / total
    correction = (1.0 - math.exp(-total)) * 2.0 * lam_p * lam_q / total**2
    return lead - correction


def expected_mutual_segments_approx(lam_p: float, lam_q: float) -> float:
    """``E^(X) = 2 lam_p lam_q / (lam_p + lam_q)`` (the paper's approximation)."""
    lam_p, lam_q = _validate_rates(lam_p, lam_q)
    return 2.0 * lam_p * lam_q / (lam_p + lam_q)


def poisson_pmf(lam: float, ks: np.ndarray) -> np.ndarray:
    """Poisson pmf at integer points ``ks`` (vectorised, log-space safe)."""
    ks = np.asarray(ks, dtype=np.int64)
    if np.any(ks < 0):
        raise ValidationError("Poisson support is non-negative integers")
    if lam < 0:
        raise ValidationError(f"lam must be >= 0, got {lam}")
    if lam == 0:
        return (ks == 0).astype(np.float64)
    log_pmf = ks * math.log(lam) - lam - np.array(
        [math.lgamma(k + 1.0) for k in ks]
    )
    return np.exp(log_pmf)


def _poisson_truncation_point(lam: float, tol: float = 1e-13) -> int:
    """Smallest k with ``Pr(K > k) < tol`` for ``K ~ Poisson(lam)``."""
    k = int(lam)
    cum = poisson_pmf(lam, np.arange(k + 1)).sum()
    while 1.0 - cum >= tol:
        k += 1
        cum += float(poisson_pmf(lam, np.array([k]))[0])
        if k > lam + 40 * math.sqrt(lam + 1.0) + 100:
            break
    return k


def mutual_segment_count_pmf(
    lam_p: float, lam_q: float, max_x: int, tol: float = 1e-13
) -> np.ndarray:
    """Exact ``fX(x)`` for ``x = 0 .. max_x`` (Problem 1).

    Conditioned on ``k`` merged events, each event's source label is iid
    ``P`` with probability ``gamma = lam_p / (lam_p + lam_q)``; ``X`` is
    the number of adjacent label changes, whose conditional law is
    computed by a transfer-matrix DP over the label sequence.  The
    Poisson mixture over ``k`` is truncated at relative mass ``tol``.
    """
    lam_p, lam_q = _validate_rates(lam_p, lam_q)
    if max_x < 0:
        raise ValidationError(f"max_x must be >= 0, got {max_x}")
    total = lam_p + lam_q
    gamma = lam_p / total
    k_max = max(_poisson_truncation_point(total, tol), max_x + 1)
    k_pmf = poisson_pmf(total, np.arange(k_max + 1))

    fx = np.zeros(max_x + 1)
    # k = 0 (no events) and k = 1 (one event) both give X = 0.
    fx[0] += k_pmf[0] + (k_pmf[1] if k_max >= 1 else 0.0)

    # DP state after placing j labels: prob[label, changes], truncated at
    # max_x + 1 changes (excess changes can never fall back below max_x).
    width = max_x + 2
    state = np.zeros((2, width))
    state[0, 0] = gamma        # first label is P
    state[1, 0] = 1.0 - gamma  # first label is Q
    for k in range(2, k_max + 1):
        nxt = np.empty_like(state)
        # Next label P: no change if previous was P, change if previous Q.
        nxt[0, 0] = gamma * state[0, 0]
        nxt[0, 1:] = gamma * (state[0, 1:] + state[1, :-1])
        nxt[1, 0] = (1.0 - gamma) * state[1, 0]
        nxt[1, 1:] = (1.0 - gamma) * (state[1, 1:] + state[0, :-1])
        # Overflow bucket absorbs > max_x changes.
        nxt[:, -1] += np.array(
            [gamma * state[1, -1], (1.0 - gamma) * state[0, -1]]
        )
        state = nxt
        fx += k_pmf[k] * state[:, : max_x + 1].sum(axis=0)
    return fx


def mutual_segment_count_pmf_poisson(
    lam_p: float, lam_q: float, max_x: int
) -> np.ndarray:
    """The paper's approximation ``f^X``: Poisson with mean ``E^(X)``."""
    if max_x < 0:
        raise ValidationError(f"max_x must be >= 0, got {max_x}")
    mean = expected_mutual_segments_approx(lam_p, lam_q)
    return poisson_pmf(mean, np.arange(max_x + 1))


def mutual_segment_length_pdf(
    lam_p: float, lam_q: float, ys: np.ndarray
) -> np.ndarray:
    """``gY(y) = (lam_p + lam_q) e^{-(lam_p + lam_q) y}`` (Problem 3)."""
    lam_p, lam_q = _validate_rates(lam_p, lam_q)
    ys = np.asarray(ys, dtype=np.float64)
    if np.any(ys < 0):
        raise ValidationError("segment lengths are non-negative")
    total = lam_p + lam_q
    return total * np.exp(-total * ys)


# ----------------------------------------------------------------------
# Monte-Carlo counterparts
# ----------------------------------------------------------------------
def simulate_mutual_segment_counts(
    lam_p: float,
    lam_q: float,
    n_units: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sampled mutual-segment counts over ``n_units`` unit-time windows.

    Each window independently draws two Poisson processes, merges them,
    and counts label changes — an empirical draw from ``fX``.
    """
    _validate_rates(lam_p, lam_q)
    if n_units < 0:
        raise ValidationError(f"n_units must be >= 0, got {n_units}")
    counts = np.empty(n_units, dtype=np.int64)
    for i in range(n_units):
        times_p = sample_poisson_process(lam_p, 1.0, rng)
        times_q = sample_poisson_process(lam_q, 1.0, rng)
        _, labels = merge_processes(times_p, times_q)
        counts[i] = count_label_changes(labels)
    return counts


def simulate_mutual_segment_lengths(
    lam_p: float,
    lam_q: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Observed mutual-segment time lengths over one long window.

    An empirical sample from ``gY`` (Problem 3).
    """
    _validate_rates(lam_p, lam_q)
    times_p = sample_poisson_process(lam_p, duration, rng)
    times_q = sample_poisson_process(lam_q, duration, rng)
    times, labels = merge_processes(times_p, times_q)
    if times.size < 2:
        return np.empty(0, dtype=np.float64)
    mutual = labels[1:] != labels[:-1]
    gaps = np.diff(times)
    return gaps[mutual]
