"""The Poisson-Binomial distribution.

``K = sum of independent Bernoulli(p_i)`` — the law of the number of
incompatible mutual segments under either FTL model, where ``p_i`` is the
model's incompatibility probability for the i-th mutual segment's time
bucket (paper Section IV-D).

Three evaluation backends are provided:

``"dp"`` (default)
    Exact O(n^2) convolution dynamic program — numerically stable for
    any probability vector; this is the production backend.
``"recursive"``
    The paper's Equation (1): the inclusion-exclusion recursion over
    power sums ``T(i)``.  Exact in real arithmetic but numerically
    fragile when n is large or any ``p_i`` is near 1; kept as a faithful
    reproduction of the paper's formula and exercised by the backend
    ablation bench.
``"normal"``
    Refined normal approximation with a skewness correction (second-order
    Edgeworth / Cornish-Fisher style), useful for very long profiles.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.kernels import pmf_dp_batch_numba, resolve_kernel_backend

_BACKENDS = ("dp", "recursive", "normal")


def _validate_probs(probs: Sequence[float] | np.ndarray) -> np.ndarray:
    ps = np.asarray(probs, dtype=np.float64).ravel()
    if ps.size and (np.any(~np.isfinite(ps)) or np.any(ps < 0.0) or np.any(ps > 1.0)):
        raise ValidationError("probabilities must be finite and within [0, 1]")
    return ps


def _pmf_dp(ps: np.ndarray) -> np.ndarray:
    """Exact pmf by iterative convolution; O(n^2), stable."""
    pmf = np.array([1.0])
    for p in ps:
        nxt = np.empty(pmf.size + 1)
        nxt[0] = pmf[0] * (1.0 - p)
        nxt[1:-1] = pmf[1:] * (1.0 - p) + pmf[:-1] * p
        nxt[-1] = pmf[-1] * p
        pmf = nxt
    return pmf


def _pmf_dp_batch(ps_arrays: list[np.ndarray]) -> list[np.ndarray]:
    """Many convolution DPs at once, bit-identical to per-array ``_pmf_dp``.

    All rows advance through one rectangular ``(n_rows, max_len + 1)``
    state matrix, so the per-step NumPy dispatch overhead is paid once
    per segment index instead of once per (array, segment).  Rows are
    sorted longest-first; at step ``j`` only the prefix of rows still
    having a ``j``-th trial is touched, so no padded work is done.  The
    per-element arithmetic is exactly the scalar recurrence —
    ``new[k] = old[k] * (1 - p) + old[k - 1] * p`` with the same two
    products and one addition — and the implicit zeros of the rectangle
    reproduce the scalar code's boundary rows exactly, so every output
    pmf is bit-identical to ``_pmf_dp`` on the same input.
    """
    n_rows = len(ps_arrays)
    if n_rows == 0:
        return []
    lengths = np.array([a.size for a in ps_arrays], dtype=np.int64)
    order = np.argsort(-lengths, kind="stable")
    sorted_lengths = lengths[order]
    max_len = int(sorted_lengths[0])
    dp = np.zeros((n_rows, max_len + 1))
    dp[:, 0] = 1.0
    p_mat = np.zeros((n_rows, max_len))
    for row, idx in enumerate(order):
        p_mat[row, : lengths[idx]] = ps_arrays[idx]
    for j in range(max_len):
        cnt = int(np.count_nonzero(sorted_lengths > j))
        act = dp[:cnt]
        pj = p_mat[:cnt, j][:, None]
        nxt = act * (1.0 - pj)
        nxt[:, 1:] += act[:, :-1] * pj
        dp[:cnt] = nxt
    out: list[np.ndarray] = [None] * n_rows  # type: ignore[list-item]
    for row, idx in enumerate(order):
        out[idx] = dp[row, : lengths[idx] + 1].copy()
    return out


def pb_pmf_batch(
    probs_list: Sequence[Sequence[float] | np.ndarray],
    backend: str = "dp",
    kernel: str | None = None,
) -> list[np.ndarray]:
    """Pmfs of many Poisson-Binomial variables in one pass.

    Bit-identical to ``[pb_pmf(ps, backend) for ps in probs_list]`` but
    the exact ``"dp"`` backend runs all convolution DPs through one
    batched kernel.  Degenerate trials are factored per variable
    exactly as ``PoissonBinomial`` does: zeros are dropped, ones shift
    the support.  Non-``"dp"`` backends fall back to the per-variable
    path.

    ``kernel`` picks the DP implementation (see :mod:`repro.kernels`):
    ``"numba"`` runs a compiled per-row scalar recurrence, ``"numpy"``
    the vectorised state-matrix DP, ``"python"`` the per-variable
    reference loop; ``None``/``"auto"`` resolve via
    :func:`repro.kernels.resolve_kernel_backend`.  All three produce
    bit-identical pmfs (same IEEE operations in the same order).
    """
    if backend != "dp":
        return [pb_pmf(ps, backend=backend) for ps in probs_list]
    resolved = resolve_kernel_backend(kernel)
    metas: list[tuple[int, int]] = []
    cores_in: list[np.ndarray] = []
    for probs in probs_list:
        ps = _validate_probs(probs)
        shift = int(np.count_nonzero(ps == 1.0))
        metas.append((int(ps.size), shift))
        cores_in.append(ps[(ps > 0.0) & (ps < 1.0)])
    if resolved == "numba":
        cores = pmf_dp_batch_numba(cores_in)
    elif resolved == "python":
        cores = [_pmf_dp(ps) for ps in cores_in]
    else:
        cores = _pmf_dp_batch(cores_in)
    out = []
    for (n_trials, shift), core in zip(metas, cores):
        pmf = np.zeros(n_trials + 1)
        pmf[shift : shift + core.size] = core
        out.append(pmf)
    return out


def _pmf_recursive(ps: np.ndarray) -> np.ndarray:
    """The paper's Eq. (1): Pr(K=k) = (1/k) * sum_i (-1)^{i-1} Pr(K=k-i) T(i).

    ``T(i) = sum_j (p_j / (1 - p_j))^i``.  Requires every ``p_j < 1``;
    trials with ``p_j == 1`` are split out by the caller.
    """
    n = ps.size
    if n == 0:
        return np.array([1.0])
    if np.any(ps >= 1.0):
        raise ValidationError(
            "the recursive backend requires all probabilities < 1 "
            "(certain trials must be factored out first)"
        )
    odds = ps / (1.0 - ps)
    # T(i) for i = 1..n, computed by cumulative powers of the odds.
    t = np.empty(n + 1)
    powers = np.ones_like(odds)
    for i in range(1, n + 1):
        powers = powers * odds
        t[i] = powers.sum()
    pmf = np.empty(n + 1)
    pmf[0] = np.prod(1.0 - ps)
    for k in range(1, n + 1):
        signs = (-1.0) ** np.arange(k + 1)  # signs[i] = (-1)^i
        # sum_{i=1..k} (-1)^(i-1) pmf[k-i] T(i)
        acc = 0.0
        for i in range(1, k + 1):
            acc += -signs[i] * pmf[k - i] * t[i]
        pmf[k] = acc / k
    # The alternating sum can produce small negative values; clip and
    # renormalise so downstream p-values stay in [0, 1].
    pmf = np.clip(pmf, 0.0, None)
    total = pmf.sum()
    if total > 0:
        pmf = pmf / total
    return pmf


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def _big_phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class PoissonBinomial:
    """A Poisson-Binomial random variable with fixed trial probabilities.

    Parameters
    ----------
    probs:
        Per-trial success probabilities in [0, 1].  Degenerate trials
        (p == 0 or p == 1) are factored out exactly: zeros are dropped,
        ones shift the support.
    backend:
        Evaluation method; see the module docstring.
    """

    def __init__(
        self, probs: Sequence[float] | np.ndarray, backend: str = "dp"
    ) -> None:
        if backend not in _BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; known: {_BACKENDS}"
            )
        ps = _validate_probs(probs)
        self._backend = backend
        self._n_trials = int(ps.size)
        self._shift = int(np.count_nonzero(ps == 1.0))
        self._ps = ps[(ps > 0.0) & (ps < 1.0)]
        self._pmf_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        return self._n_trials

    @property
    def backend(self) -> str:
        return self._backend

    def mean(self) -> float:
        return float(self._ps.sum()) + self._shift

    def var(self) -> float:
        return float((self._ps * (1.0 - self._ps)).sum())

    def std(self) -> float:
        return math.sqrt(self.var())

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------
    def pmf(self) -> np.ndarray:
        """The full pmf over support ``0 .. n_trials`` (exact backends).

        For the ``"normal"`` backend the pmf is derived from cdf
        differences of the refined approximation.
        """
        if self._pmf_cache is None:
            if self._backend == "dp":
                core = _pmf_dp(self._ps)
            elif self._backend == "recursive":
                core = _pmf_recursive(self._ps)
            else:
                core = self._pmf_normal()
            pmf = np.zeros(self._n_trials + 1)
            pmf[self._shift : self._shift + core.size] = core
            self._pmf_cache = pmf
        return self._pmf_cache

    def _pmf_normal(self) -> np.ndarray:
        n = self._ps.size
        cdfs = np.array([self._cdf_normal(k) for k in range(n + 1)])
        pmf = np.diff(np.concatenate([[0.0], cdfs]))
        pmf = np.clip(pmf, 0.0, None)
        total = pmf.sum()
        return pmf / total if total > 0 else pmf

    def _cdf_normal(self, k: float) -> float:
        """Refined (skew-corrected) normal cdf of the non-degenerate part."""
        mu = float(self._ps.sum())
        sigma2 = float((self._ps * (1.0 - self._ps)).sum())
        if sigma2 == 0.0:
            return 1.0 if k >= mu - 1e-12 else 0.0
        sigma = math.sqrt(sigma2)
        gamma = float((self._ps * (1.0 - self._ps) * (1.0 - 2.0 * self._ps)).sum())
        skew = gamma / sigma**3
        x = (k + 0.5 - mu) / sigma
        value = _big_phi(x) + skew * (1.0 - x * x) * _phi(x) / 6.0
        return min(max(value, 0.0), 1.0)

    def cdf(self, k: int) -> float:
        """``Pr(K <= k)``."""
        if k < 0:
            return 0.0
        if k >= self._n_trials:
            return 1.0
        if self._backend == "normal":
            core_k = k - self._shift
            if core_k < 0:
                return 0.0
            return self._cdf_normal(core_k)
        pmf = self.pmf()
        return float(min(pmf[: k + 1].sum(), 1.0))

    def sf(self, k: int) -> float:
        """``Pr(K >= k)`` (note: inclusive, unlike SciPy's ``sf``)."""
        if k <= 0:
            return 1.0
        if k > self._n_trials:
            return 0.0
        if self._backend == "normal":
            return max(0.0, 1.0 - self.cdf(k - 1))
        pmf = self.pmf()
        return float(min(pmf[k:].sum(), 1.0))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Monte-Carlo draws of K (used in validation tests)."""
        if size < 0:
            raise ValidationError(f"size must be non-negative, got {size}")
        draws = rng.random((size, self._ps.size)) < self._ps
        return draws.sum(axis=1).astype(np.int64) + self._shift


# ----------------------------------------------------------------------
# Functional convenience API
# ----------------------------------------------------------------------
def pb_pmf(probs: Sequence[float] | np.ndarray, backend: str = "dp") -> np.ndarray:
    """The Poisson-Binomial pmf over ``0..n`` for the given trials."""
    return PoissonBinomial(probs, backend=backend).pmf()


def pb_cdf(probs: Sequence[float] | np.ndarray, k: int, backend: str = "dp") -> float:
    """``Pr(K <= k)`` for the given trials."""
    return PoissonBinomial(probs, backend=backend).cdf(k)


def pb_sf(probs: Sequence[float] | np.ndarray, k: int, backend: str = "dp") -> float:
    """``Pr(K >= k)`` for the given trials."""
    return PoissonBinomial(probs, backend=backend).sf(k)
