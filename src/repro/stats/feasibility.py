"""FTL feasibility prediction from service access rates (Section VI).

The paper closes its analysis with: *"Our analysis reveals the
relationship between service access patterns and mutual segments.  This
is useful in evaluating the feasibility of FTL when real values for
lam_p and lam_q are known."*  This module operationalises that remark.

Given the two services' access rates and a fitted (or hypothesised)
model pair, it predicts:

* how many *informative* (in-horizon) mutual segments a day of data
  yields — combining the rate of mutual segments (Problem 2) with the
  exponential law of their lengths (Problem 3);
* the expected same-person evidence accumulated per day (in nats),
  using the per-bucket KL divergence of the model pair weighted by the
  theoretical gap distribution;
* how many days of data are needed to reach a target log-likelihood-
  ratio separation (e.g. ~6.9 nats ~ a posterior odds swing of 1000x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.diagnostics import bucket_divergence
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.errors import ValidationError
from repro.geo.units import SECONDS_PER_DAY
from repro.stats.theory import expected_mutual_segments

#: ln(1000): the evidence needed to swing posterior odds by 1000x.
DECISIVE_EVIDENCE_NATS = math.log(1000.0)


def informative_fraction(
    lam_p_per_s: float, lam_q_per_s: float, horizon_s: float
) -> float:
    """Fraction of mutual segments whose gap is below the horizon.

    Mutual segment lengths are Exponential(lam_p + lam_q) (Corollary
    6.2), so the in-horizon fraction is ``1 - exp(-(lam_p+lam_q) * h)``.
    """
    if lam_p_per_s <= 0 or lam_q_per_s <= 0:
        raise ValidationError("rates must be positive")
    if horizon_s <= 0:
        raise ValidationError("horizon_s must be positive")
    return 1.0 - math.exp(-(lam_p_per_s + lam_q_per_s) * horizon_s)


def informative_segments_per_day(
    lam_p_per_hour: float, lam_q_per_hour: float, horizon_s: float
) -> float:
    """Expected in-horizon mutual segments per day of co-observation."""
    lam_p_s = lam_p_per_hour / 3600.0
    lam_q_s = lam_q_per_hour / 3600.0
    # E(X) per second times seconds/day, thinned to in-horizon segments.
    per_second = expected_mutual_segments(
        lam_p_s * SECONDS_PER_DAY, lam_q_s * SECONDS_PER_DAY
    ) / SECONDS_PER_DAY
    return per_second * SECONDS_PER_DAY * informative_fraction(
        lam_p_s, lam_q_s, horizon_s
    )


def theoretical_gap_weights(
    lam_p_per_hour: float,
    lam_q_per_hour: float,
    config,
) -> np.ndarray:
    """Bucket weights implied by the Exponential(lam_p+lam_q) gap law.

    Returns the probability, conditioned on the segment being
    in-horizon, that an in-horizon mutual segment falls in each bucket
    of the given :class:`~repro.config.FTLConfig`.
    """
    total_per_s = (lam_p_per_hour + lam_q_per_hour) / 3600.0
    if total_per_s <= 0:
        raise ValidationError("rates must be positive")
    unit = config.time_unit_s
    n = config.n_buckets
    # Bucket i covers gaps in [(i - 0.5) * unit, (i + 0.5) * unit)
    # (bucket 0 covers [0, unit/2)).
    edges = np.concatenate([[0.0], (np.arange(n) + 0.5) * unit])
    cdf = 1.0 - np.exp(-total_per_s * edges)
    weights = np.diff(cdf)
    total = weights.sum()
    if total <= 0:
        raise ValidationError("horizon too small for the given rates")
    return weights / total


@dataclass(frozen=True)
class FeasibilityReport:
    """Predicted FTL feasibility for one (lam_p, lam_q, models) setting."""

    lam_p_per_hour: float
    lam_q_per_hour: float
    informative_segments_per_day: float
    evidence_per_segment_nats: float
    evidence_per_day_nats: float
    days_to_decisive: float

    def summary(self) -> str:
        return (
            f"lam_p={self.lam_p_per_hour:g}/h, lam_q={self.lam_q_per_hour:g}/h: "
            f"{self.informative_segments_per_day:.2f} informative segments/day, "
            f"{self.evidence_per_segment_nats:.3f} nats/segment, "
            f"{self.evidence_per_day_nats:.2f} nats/day "
            f"-> ~{self.days_to_decisive:.1f} days to decisive evidence"
        )


def assess_feasibility(
    lam_p_per_hour: float,
    lam_q_per_hour: float,
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    target_nats: float = DECISIVE_EVIDENCE_NATS,
) -> FeasibilityReport:
    """Predict how much data FTL needs at the given access rates.

    Combines the Section VI segment-frequency/length laws with the
    fitted models' per-bucket discriminability.  ``days_to_decisive``
    is ``inf`` when the models carry no evidence at all.
    """
    if target_nats <= 0:
        raise ValidationError(f"target_nats must be positive, got {target_nats}")
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    config = mr.config
    segments_per_day = informative_segments_per_day(
        lam_p_per_hour, lam_q_per_hour, config.horizon_s
    )
    weights = theoretical_gap_weights(lam_p_per_hour, lam_q_per_hour, config)
    divergence = bucket_divergence(mr, ma)
    per_segment = float((divergence * weights).sum())
    per_day = per_segment * segments_per_day
    days = target_nats / per_day if per_day > 0 else float("inf")
    return FeasibilityReport(
        lam_p_per_hour=lam_p_per_hour,
        lam_q_per_hour=lam_q_per_hour,
        informative_segments_per_day=segments_per_day,
        evidence_per_segment_nats=per_segment,
        evidence_per_day_nats=per_day,
        days_to_decisive=days,
    )
