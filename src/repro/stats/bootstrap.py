"""Bootstrap confidence intervals for evaluation metrics.

Perceptiveness and selectiveness are estimated from a few dozen sampled
queries (the paper uses 200); reporting them without uncertainty
invites over-reading small differences.  This module provides
percentile-bootstrap CIs over per-query outcome vectors, used by the
report generator and available for any custom metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    level: float
    n_samples: int

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] @ {self.level:.0%}"
        )

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    values: Sequence[float] | np.ndarray,
    rng: np.random.Generator,
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_boot: int = 2000,
    level: float = 0.95,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` over per-unit values.

    Parameters
    ----------
    values:
        One outcome per independent unit (e.g. per query: 1.0 if the
        true match was returned else 0.0).
    statistic:
        Vectorised reducer applied to each resample (default: mean).
    n_boot:
        Number of bootstrap resamples.
    level:
        Two-sided coverage level in (0, 1).
    """
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise ValidationError("need at least one value")
    if not 0.0 < level < 1.0:
        raise ValidationError(f"level must be in (0, 1), got {level}")
    if n_boot < 10:
        raise ValidationError(f"n_boot must be >= 10, got {n_boot}")
    estimate = float(statistic(data))
    idx = rng.integers(0, data.size, size=(n_boot, data.size))
    resamples = data[idx]
    stats = np.apply_along_axis(statistic, 1, resamples)
    alpha = (1.0 - level) / 2.0
    return ConfidenceInterval(
        estimate=estimate,
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        level=level,
        n_samples=int(data.size),
    )


def perceptiveness_ci(
    results: dict,
    truth: dict,
    rng: np.random.Generator,
    n_boot: int = 2000,
    level: float = 0.95,
) -> ConfidenceInterval:
    """Bootstrap CI of perceptiveness over the per-query hit indicators."""
    if not results:
        raise ValidationError("need at least one query result")
    hits = [
        1.0 if truth.get(qid) in set(cands) else 0.0
        for qid, cands in results.items()
    ]
    return bootstrap_ci(hits, rng, n_boot=n_boot, level=level)


def selectiveness_ci(
    results: dict,
    database_size: int,
    rng: np.random.Generator,
    n_boot: int = 2000,
    level: float = 0.95,
) -> ConfidenceInterval:
    """Bootstrap CI of selectiveness over the per-query set sizes."""
    if not results:
        raise ValidationError("need at least one query result")
    if database_size < 1:
        raise ValidationError("database_size must be >= 1")
    fractions = [len(cands) / database_size for cands in results.values()]
    return bootstrap_ci(fractions, rng, n_boot=n_boot, level=level)
