"""Observability: trace IDs, stage timers, and Prometheus exposition.

The production-serving counterpart of the paper's per-stage cost
analysis: SLIM-style spatio-temporal linkage justifies each pruning
stage by where the time goes, so the serving stack must be able to
*show* where the time goes.  Three small, dependency-free pieces:

* :mod:`repro.obs.trace` — request-scoped **trace IDs** carried through
  ``contextvars`` (they survive ``await`` and task switches), plus a
  structured JSON log formatter and :func:`log_event` helper that
  stamps every record with the current trace ID;
* :mod:`repro.obs.spans` — the **stage-timer API**: ``with
  span("prefilter"): ...`` measures a block and reports it to the
  context-bound :class:`SpanSink` (a no-op when none is bound, so
  library code can be instrumented unconditionally);
* :mod:`repro.obs.prometheus` — renders counter/histogram snapshots in
  the **Prometheus text exposition format** (version 0.0.4) and
  validates exposition documents line by line (used by CI).

The daemon binds a :class:`MetricsSpanSink` in its batch worker
threads, so engine/store spans accumulate into the shared
``/metrics`` histograms; ``ftl profile`` binds a
:class:`StageAccumulator` and prints the per-stage breakdown table.
See ``docs/observability.md``.
"""

from repro.obs.evidence import (
    BucketEvidence,
    bind_evidence_sink,
    current_evidence_sink,
    drift_against,
    merge_evidence,
    record_evidence,
    use_evidence_sink,
)
from repro.obs.prometheus import (
    merge_histogram_snapshots,
    render_exposition,
    validate_exposition,
)
from repro.obs.spans import (
    STAGES,
    MetricsSpanSink,
    StageAccumulator,
    bind_sink,
    current_sink,
    span,
    use_sink,
)
from repro.obs.trace import (
    JsonLogFormatter,
    configure_json_logging,
    current_trace_id,
    log_event,
    new_trace_id,
    reset_trace_id,
    set_trace_id,
    trace,
)

__all__ = [
    "BucketEvidence",
    "JsonLogFormatter",
    "MetricsSpanSink",
    "STAGES",
    "StageAccumulator",
    "bind_evidence_sink",
    "bind_sink",
    "current_evidence_sink",
    "drift_against",
    "merge_evidence",
    "record_evidence",
    "use_evidence_sink",
    "configure_json_logging",
    "current_sink",
    "current_trace_id",
    "log_event",
    "merge_histogram_snapshots",
    "new_trace_id",
    "render_exposition",
    "reset_trace_id",
    "set_trace_id",
    "span",
    "trace",
    "use_sink",
    "validate_exposition",
]
