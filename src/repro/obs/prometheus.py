"""Prometheus text exposition (version 0.0.4): rendering + validation.

:func:`render_exposition` turns counter / gauge / histogram snapshots
into the plain-text format a Prometheus server scrapes:

* counters keep their registry name under an ``ftl_`` prefix
  (``requests_total`` -> ``ftl_requests_total``);
* latency histograms become ``ftl_<name>_seconds`` histogram families
  with *cumulative* ``le``-labelled buckets, a ``+Inf`` bucket equal to
  ``_count``, plus ``_sum`` and ``_count`` samples.

:func:`validate_exposition` is the strict line-format checker used by
CI (and the test suite) against a live ``/metrics`` scrape: every line
must be a well-formed comment or sample, every sample's family must be
typed, and histogram families must satisfy the cumulative-bucket
invariants.  No Prometheus client library is required on either side.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

#: Namespace prefix for every exported metric.
NAMESPACE = "ftl"

#: Metric/label name grammar from the exposition-format spec.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: name, optional label set, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
_VALUE_RE = re.compile(
    r"^(?:[+-]?Inf|NaN|[+-]?(?:[0-9]+\.?[0-9]*|\.[0-9]+)(?:[eE][+-]?[0-9]+)?)$"
)

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _sanitize(name: str) -> str:
    """A registry name as a legal exposition metric name component."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Shortest decimal form Prometheus parses back exactly."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _series(value) -> list[tuple[dict, object]]:
    """Normalise a registry value to ``[(labels, payload), ...]``.

    A plain payload is one unlabelled series; a list of
    ``(labels_dict, payload)`` pairs is a multi-series family (the
    sharded daemon exposes per-worker series as ``{shard="0"}``,
    ``{shard="1"}``, ... alongside an unlabelled aggregate).
    """
    if isinstance(value, list):
        return [(dict(labels), payload) for labels, payload in value]
    return [({}, value)]


def _label_str(labels: Mapping[str, str], le: str | None = None) -> str:
    items = [
        (name, _escape_label(value)) for name, value in sorted(labels.items())
    ]
    if le is not None:
        items.append(("le", le))
    if not items:
        return ""
    return "{" + ",".join(f'{n}="{v}"' for n, v in items) + "}"


def merge_histogram_snapshots(snapshots) -> dict:
    """Element-wise merge of same-bounds histogram snapshots.

    The cross-worker aggregation for ``/metrics``: merging must happen
    on the *raw* (non-cumulative) per-bucket counts — summing documents
    that already carry cumulative ``le`` buckets would double-count
    every observation below each bound and leave ``+Inf != _count``
    (the regression :func:`validate_exposition` exists to catch).
    Sums ``counts``/``sum``/``count``, takes the max of ``max``.
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise ValueError("cannot merge zero histogram snapshots")
    bounds = tuple(snapshots[0]["bounds"])
    counts = [0] * len(snapshots[0]["counts"])
    total_sum, total_count, total_max = 0.0, 0, 0.0
    for snap in snapshots:
        if tuple(snap["bounds"]) != bounds:
            raise ValueError(
                "histogram snapshots have mismatched bucket bounds"
            )
        for i, c in enumerate(snap["counts"]):
            counts[i] += int(c)
        total_sum += float(snap["sum"])
        total_count += int(snap["count"])
        total_max = max(total_max, float(snap["max"]))
    return {
        "bounds": bounds,
        "counts": counts,
        "sum": total_sum,
        "count": total_count,
        "max": total_max,
    }


def render_exposition(
    counters: Mapping[str, object],
    histograms: Mapping[str, object] = (),
    gauges: Mapping[str, object] = (),
) -> str:
    """Render snapshots as one exposition document (trailing newline).

    ``histograms`` maps registry names to snapshots shaped like
    :meth:`repro.service.state.Histogram.snapshot`: ``bounds`` (bucket
    upper bounds in seconds), ``counts`` (per-bucket counts, one
    overflow bucket appended), ``sum`` and ``count``.

    Every mapping value may instead be a list of ``(labels, payload)``
    pairs to emit a labelled multi-series family (see :func:`_series`);
    HELP/TYPE comments are emitted once per family either way.
    """
    lines: list[str] = []
    for name in sorted(counters):
        metric = f"{NAMESPACE}_{_sanitize(name)}"
        lines.append(f"# HELP {metric} Monotonic counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        for labels, payload in _series(counters[name]):
            lines.append(f"{metric}{_label_str(labels)} {int(payload)}")
    for name in sorted(dict(gauges) if gauges else {}):
        metric = f"{NAMESPACE}_{_sanitize(name)}"
        lines.append(f"# HELP {metric} Gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        for labels, payload in _series(gauges[name]):
            lines.append(f"{metric}{_label_str(labels)} {_fmt(float(payload))}")
    for name in sorted(dict(histograms) if histograms else {}):
        metric = f"{NAMESPACE}_{_sanitize(name)}_seconds"
        lines.append(f"# HELP {metric} Latency histogram {name!r} (seconds).")
        lines.append(f"# TYPE {metric} histogram")
        for labels, snap in _series(histograms[name]):
            cumulative = 0
            for bound, count in zip(snap["bounds"], snap["counts"]):
                cumulative += int(count)
                lines.append(
                    f"{metric}_bucket"
                    f"{_label_str(labels, le=_fmt(float(bound)))} {cumulative}"
                )
            lines.append(
                f'{metric}_bucket{_label_str(labels, le="+Inf")} '
                f'{int(snap["count"])}'
            )
            lines.append(
                f"{metric}_sum{_label_str(labels)} {_fmt(float(snap['sum']))}"
            )
            lines.append(
                f"{metric}_count{_label_str(labels)} {int(snap['count'])}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validation (CI's strict line-format check)
# ----------------------------------------------------------------------
def _check_labels(raw: str, errors: list[str], lineno: int) -> dict:
    labels: dict[str, str] = {}
    if raw == "":
        return labels
    for part in raw.split(","):
        match = _LABEL_RE.match(part.strip())
        if match is None:
            errors.append(f"line {lineno}: malformed label {part!r}")
            continue
        labels[match.group("name")] = match.group("value")
    return labels


def validate_exposition(text: str) -> list[str]:
    """Strictly check an exposition document; returns a list of errors.

    Checks, per the text-format spec plus histogram semantics:

    * the document ends with a newline and contains no blank or
      non-ASCII-controlled garbage lines;
    * comment lines are well-formed ``# HELP`` / ``# TYPE`` with legal
      metric names and known types, declared before use and at most
      once per family;
    * sample lines parse as ``name{labels} value [timestamp]`` with
      legal names, labels and float values, and belong to a declared
      family;
    * histogram families carry ``_bucket`` samples with parseable,
      strictly increasing ``le`` bounds, cumulative non-decreasing
      counts, a ``+Inf`` bucket, and ``_count`` == the ``+Inf`` bucket
      — checked **per label signature**: ``{shard="0"}`` and
      ``{shard="1"}`` series of one family are independent histograms
      and must each satisfy the invariants on their own (lumping them
      together would mask the classic aggregation bug where
      already-cumulative buckets are summed across workers).
    """
    errors: list[str] = []
    if not text:
        return ["document is empty"]
    if not text.endswith("\n"):
        errors.append("document must end with a newline")
    types: dict[str, str] = {}
    helps: set[str] = set()
    # Histogram state keyed by (family, non-le label signature).
    buckets: dict[tuple, list[tuple[float, int]]] = {}
    histogram_counts: dict[tuple, int] = {}

    def family_of(sample_name: str) -> str | None:
        if sample_name in types:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and types.get(base) in ("histogram", "summary"):
                return base
        return None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "":
            errors.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            name = parts[2]
            if not _NAME_RE.match(name):
                errors.append(f"line {lineno}: illegal metric name {name!r}")
                continue
            if parts[1] == "TYPE":
                kind = parts[3] if len(parts) == 4 else ""
                if kind not in _TYPES:
                    errors.append(f"line {lineno}: unknown type {kind!r}")
                elif name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                else:
                    types[name] = kind
            else:
                if name in helps:
                    errors.append(f"line {lineno}: duplicate HELP for {name}")
                helps.add(name)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = match.group("name")
        value = match.group("value")
        if not _VALUE_RE.match(value):
            errors.append(f"line {lineno}: malformed value {value!r}")
            continue
        labels = _check_labels(match.group("labels") or "", errors, lineno)
        family = family_of(name)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE")
            continue
        if types[family] == "histogram":
            signature = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name == f"{family}_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: histogram bucket missing le")
                    continue
                bound = float("inf") if le == "+Inf" else None
                if bound is None:
                    try:
                        bound = float(le)
                    except ValueError:
                        errors.append(f"line {lineno}: bad le value {le!r}")
                        continue
                buckets.setdefault((family, signature), []).append(
                    (bound, int(float(value)))
                )
            elif name == f"{family}_count":
                histogram_counts[(family, signature)] = int(float(value))

    for (family, signature), series in sorted(buckets.items()):
        where = family + (
            "{" + ",".join(f'{k}="{v}"' for k, v in signature) + "}"
            if signature
            else ""
        )
        bounds = [b for b, _ in series]
        counts = [c for _, c in series]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"{where}: le bounds not strictly increasing")
        if counts != sorted(counts):
            errors.append(f"{where}: bucket counts not cumulative")
        if not bounds or not math.isinf(bounds[-1]):
            errors.append(f"{where}: missing +Inf bucket")
        else:
            key = (family, signature)
            if key in histogram_counts and counts[-1] != histogram_counts[key]:
                errors.append(
                    f"{where}: +Inf bucket {counts[-1]} != _count "
                    f"{histogram_counts[key]}"
                )
    histogram_families_with_buckets = {family for family, _ in buckets}
    for family, kind in types.items():
        if kind == "histogram" and family not in histogram_families_with_buckets:
            errors.append(f"{family}: histogram family has no buckets")
    return errors
