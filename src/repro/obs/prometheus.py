"""Prometheus text exposition (version 0.0.4): rendering + validation.

:func:`render_exposition` turns counter / gauge / histogram snapshots
into the plain-text format a Prometheus server scrapes:

* counters keep their registry name under an ``ftl_`` prefix
  (``requests_total`` -> ``ftl_requests_total``);
* latency histograms become ``ftl_<name>_seconds`` histogram families
  with *cumulative* ``le``-labelled buckets, a ``+Inf`` bucket equal to
  ``_count``, plus ``_sum`` and ``_count`` samples.

:func:`validate_exposition` is the strict line-format checker used by
CI (and the test suite) against a live ``/metrics`` scrape: every line
must be a well-formed comment or sample, every sample's family must be
typed, and histogram families must satisfy the cumulative-bucket
invariants.  No Prometheus client library is required on either side.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

#: Namespace prefix for every exported metric.
NAMESPACE = "ftl"

#: Metric/label name grammar from the exposition-format spec.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: name, optional label set, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
_VALUE_RE = re.compile(
    r"^(?:[+-]?Inf|NaN|[+-]?(?:[0-9]+\.?[0-9]*|\.[0-9]+)(?:[eE][+-]?[0-9]+)?)$"
)

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _sanitize(name: str) -> str:
    """A registry name as a legal exposition metric name component."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Shortest decimal form Prometheus parses back exactly."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def render_exposition(
    counters: Mapping[str, int],
    histograms: Mapping[str, Mapping] = (),
    gauges: Mapping[str, float] = (),
) -> str:
    """Render snapshots as one exposition document (trailing newline).

    ``histograms`` maps registry names to snapshots shaped like
    :meth:`repro.service.state.Histogram.snapshot`: ``bounds`` (bucket
    upper bounds in seconds), ``counts`` (per-bucket counts, one
    overflow bucket appended), ``sum`` and ``count``.
    """
    lines: list[str] = []
    for name in sorted(counters):
        metric = f"{NAMESPACE}_{_sanitize(name)}"
        lines.append(f"# HELP {metric} Monotonic counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(counters[name])}")
    for name in sorted(dict(gauges) if gauges else {}):
        metric = f"{NAMESPACE}_{_sanitize(name)}"
        lines.append(f"# HELP {metric} Gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(float(gauges[name]))}")
    for name in sorted(dict(histograms) if histograms else {}):
        snap = histograms[name]
        metric = f"{NAMESPACE}_{_sanitize(name)}_seconds"
        lines.append(f"# HELP {metric} Latency histogram {name!r} (seconds).")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(snap["bounds"], snap["counts"]):
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {int(snap["count"])}')
        lines.append(f"{metric}_sum {_fmt(float(snap['sum']))}")
        lines.append(f"{metric}_count {int(snap['count'])}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validation (CI's strict line-format check)
# ----------------------------------------------------------------------
def _check_labels(raw: str, errors: list[str], lineno: int) -> dict:
    labels: dict[str, str] = {}
    if raw == "":
        return labels
    for part in raw.split(","):
        match = _LABEL_RE.match(part.strip())
        if match is None:
            errors.append(f"line {lineno}: malformed label {part!r}")
            continue
        labels[match.group("name")] = match.group("value")
    return labels


def validate_exposition(text: str) -> list[str]:
    """Strictly check an exposition document; returns a list of errors.

    Checks, per the text-format spec plus histogram semantics:

    * the document ends with a newline and contains no blank or
      non-ASCII-controlled garbage lines;
    * comment lines are well-formed ``# HELP`` / ``# TYPE`` with legal
      metric names and known types, declared before use and at most
      once per family;
    * sample lines parse as ``name{labels} value [timestamp]`` with
      legal names, labels and float values, and belong to a declared
      family;
    * histogram families carry ``_bucket`` samples with parseable,
      strictly increasing ``le`` bounds, cumulative non-decreasing
      counts, a ``+Inf`` bucket, and ``_count`` == the ``+Inf`` bucket.
    """
    errors: list[str] = []
    if not text:
        return ["document is empty"]
    if not text.endswith("\n"):
        errors.append("document must end with a newline")
    types: dict[str, str] = {}
    helps: set[str] = set()
    buckets: dict[str, list[tuple[float, int]]] = {}
    histogram_counts: dict[str, int] = {}

    def family_of(sample_name: str) -> str | None:
        if sample_name in types:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and types.get(base) in ("histogram", "summary"):
                return base
        return None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "":
            errors.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            name = parts[2]
            if not _NAME_RE.match(name):
                errors.append(f"line {lineno}: illegal metric name {name!r}")
                continue
            if parts[1] == "TYPE":
                kind = parts[3] if len(parts) == 4 else ""
                if kind not in _TYPES:
                    errors.append(f"line {lineno}: unknown type {kind!r}")
                elif name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                else:
                    types[name] = kind
            else:
                if name in helps:
                    errors.append(f"line {lineno}: duplicate HELP for {name}")
                helps.add(name)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = match.group("name")
        value = match.group("value")
        if not _VALUE_RE.match(value):
            errors.append(f"line {lineno}: malformed value {value!r}")
            continue
        labels = _check_labels(match.group("labels") or "", errors, lineno)
        family = family_of(name)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE")
            continue
        if types[family] == "histogram":
            if name == f"{family}_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: histogram bucket missing le")
                    continue
                bound = float("inf") if le == "+Inf" else None
                if bound is None:
                    try:
                        bound = float(le)
                    except ValueError:
                        errors.append(f"line {lineno}: bad le value {le!r}")
                        continue
                buckets.setdefault(family, []).append((bound, int(float(value))))
            elif name == f"{family}_count":
                histogram_counts[family] = int(float(value))

    for family, series in sorted(buckets.items()):
        bounds = [b for b, _ in series]
        counts = [c for _, c in series]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"{family}: le bounds not strictly increasing")
        if counts != sorted(counts):
            errors.append(f"{family}: bucket counts not cumulative")
        if not bounds or not math.isinf(bounds[-1]):
            errors.append(f"{family}: missing +Inf bucket")
        elif family in histogram_counts and counts[-1] != histogram_counts[family]:
            errors.append(
                f"{family}: +Inf bucket {counts[-1]} != _count "
                f"{histogram_counts[family]}"
            )
    for family, kind in types.items():
        if kind == "histogram" and family not in buckets:
            errors.append(f"{family}: histogram family has no buckets")
    return errors
