"""Live per-bucket incompatibility evidence for model-drift detection.

The fitted Mr/Ma models predict, per time-difference bucket, how often
a mutual segment is incompatible.  The serving hot path computes
exactly that observation for every query/candidate pair it links — so
drift detection is free evidence-wise: the engine reports each pool's
``(bucket, incompatible)`` pairs to a context-bound sink, mirroring the
stage-timer API in :mod:`repro.obs.spans` (one ``ContextVar`` read, a
no-op when nothing is bound).

:class:`BucketEvidence` is the daemon-side sink: a thread-safe pair of
per-bucket ``total`` / ``incompatible`` tallies.  ``/metrics`` turns a
snapshot into ``ftl_model_drift{model="rejection"|"acceptance"}``
gauges via :func:`drift_against` — the mean absolute gap between the
live incompatibility rate and the model's fitted probability over
sufficiently observed buckets.  Shard workers ship their snapshots to
the coordinator, which merges them with :func:`merge_evidence` before
rendering, so the sharded daemon reports fleet-wide drift.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator, Protocol

import numpy as np


class EvidenceSink(Protocol):
    """Anything that can receive per-pool bucket/incompatibility arrays."""

    def record_evidence(
        self, buckets: np.ndarray, incompatible: np.ndarray
    ) -> None: ...


_evidence_var: ContextVar[EvidenceSink | None] = ContextVar(
    "ftl_evidence_sink", default=None
)


def current_evidence_sink() -> EvidenceSink | None:
    """The evidence sink bound to the current context, if any."""
    return _evidence_var.get()


def bind_evidence_sink(sink: EvidenceSink | None) -> None:
    """Bind a sink for the rest of this context (thread initializers)."""
    _evidence_var.set(sink)


@contextmanager
def use_evidence_sink(sink: EvidenceSink) -> Iterator[EvidenceSink]:
    """Bind a sink for the duration of a block, then restore."""
    token = _evidence_var.set(sink)
    try:
        yield sink
    finally:
        _evidence_var.reset(token)


def record_evidence(buckets: np.ndarray, incompatible: np.ndarray) -> None:
    """Report one pool's mutual-segment evidence (no-op when unbound)."""
    sink = _evidence_var.get()
    if sink is not None:
        sink.record_evidence(buckets, incompatible)


class BucketEvidence:
    """Thread-safe per-bucket incompatibility tallies from live traffic.

    The same shape as the fitting-time
    :class:`~repro.core.models.BucketCounts`, but mutated concurrently
    from batch worker threads and reset on model hot-swap (evidence
    gathered under the old model says nothing about the new one).
    """

    def __init__(self, n_buckets: int) -> None:
        self._lock = threading.Lock()
        self._total = np.zeros(int(n_buckets), dtype=np.int64)
        self._incompatible = np.zeros(int(n_buckets), dtype=np.int64)

    @property
    def n_buckets(self) -> int:
        return int(self._total.shape[0])

    def record_evidence(
        self, buckets: np.ndarray, incompatible: np.ndarray
    ) -> None:
        n = self._total.shape[0]
        buckets = np.asarray(buckets, dtype=np.int64)
        mask = buckets < n
        if not np.any(mask):
            return
        kept = buckets[mask]
        total_delta = np.bincount(kept, minlength=n)
        inc_delta = np.bincount(
            kept,
            weights=np.asarray(incompatible)[mask].astype(np.int64),
            minlength=n,
        ).astype(np.int64)
        with self._lock:
            self._total += total_delta
            self._incompatible += inc_delta

    def snapshot(self) -> dict:
        """JSON/pickle-friendly tallies (the shard "metrics" op payload)."""
        with self._lock:
            return {
                "total": self._total.tolist(),
                "incompatible": self._incompatible.tolist(),
            }

    def reset(self, n_buckets: int | None = None) -> None:
        """Zero the tallies, optionally resizing (model hot-swap)."""
        with self._lock:
            if n_buckets is not None and int(n_buckets) != self._total.shape[0]:
                self._total = np.zeros(int(n_buckets), dtype=np.int64)
                self._incompatible = np.zeros(int(n_buckets), dtype=np.int64)
            else:
                self._total[:] = 0
                self._incompatible[:] = 0


def merge_evidence(snapshots: Iterable[dict]) -> dict:
    """Element-wise sum of :meth:`BucketEvidence.snapshot` payloads.

    Snapshots of mismatched length are tolerated by padding with zeros
    (a worker may briefly report under an older model mid-swap); an
    empty iterable merges to empty tallies.
    """
    total: np.ndarray | None = None
    incompatible: np.ndarray | None = None
    for snap in snapshots:
        t = np.asarray(snap.get("total", []), dtype=np.int64)
        i = np.asarray(snap.get("incompatible", []), dtype=np.int64)
        if total is None:
            total, incompatible = t.copy(), i.copy()
            continue
        if t.shape[0] > total.shape[0]:
            total = np.pad(total, (0, t.shape[0] - total.shape[0]))
            incompatible = np.pad(
                incompatible, (0, i.shape[0] - incompatible.shape[0])
            )
        elif t.shape[0] < total.shape[0]:
            t = np.pad(t, (0, total.shape[0] - t.shape[0]))
            i = np.pad(i, (0, incompatible.shape[0] - i.shape[0]))
        total += t
        incompatible += i
    if total is None:
        return {"total": [], "incompatible": []}
    return {"total": total.tolist(), "incompatible": incompatible.tolist()}


def drift_against(
    prob_table: np.ndarray, evidence: dict, min_obs: int = 10
) -> float:
    """Mean absolute gap between live rates and a model's fitted rates.

    Only buckets with at least ``min_obs`` live observations vote (a
    bucket seen twice says nothing reliable about its rate); with no
    such bucket the drift is 0.0 — "no evidence of drift", which keeps
    the gauge well-defined on an idle daemon.
    """
    prob_table = np.asarray(prob_table, dtype=np.float64)
    total = np.asarray(evidence.get("total", []), dtype=np.float64)
    incompatible = np.asarray(
        evidence.get("incompatible", []), dtype=np.float64
    )
    n = min(prob_table.shape[0], total.shape[0])
    if n == 0:
        return 0.0
    total, incompatible = total[:n], incompatible[:n]
    mask = total >= max(int(min_obs), 1)
    if not np.any(mask):
        return 0.0
    live_rate = incompatible[mask] / total[mask]
    return float(np.mean(np.abs(live_rate - prob_table[:n][mask])))
