"""Request-scoped trace IDs and structured JSON logging.

A trace ID is minted once per inbound request (by
:meth:`repro.service.server.LinkServer._dispatch`), stored in a
``contextvars.ContextVar`` so it follows the request through ``await``
points and synchronous call chains, echoed in the response body and
the ``X-Trace-Id`` header, and stamped onto every structured log line
emitted while the request is in flight.  Correlating a slow response
with its server-side log records is then a grep for one hex string.

Logging is plain stdlib :mod:`logging` under the ``ftl`` namespace:
library code calls :func:`log_event` unconditionally (records without
a configured handler are dropped silently), and long-running processes
opt into JSON lines on a stream via :func:`configure_json_logging`
(``ftl serve`` does this at startup).
"""

from __future__ import annotations

import json
import logging
import sys
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

#: The context-local trace ID; ``None`` outside any traced request.
_trace_id_var: ContextVar[str | None] = ContextVar("ftl_trace_id", default=None)

#: Root logger namespace for all structured events.
LOGGER_NAMESPACE = "ftl"


# ----------------------------------------------------------------------
# Trace IDs
# ----------------------------------------------------------------------
def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID (128 random bits, truncated)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace ID bound to the current context, if any."""
    return _trace_id_var.get()


def set_trace_id(trace_id: str):
    """Bind a trace ID to the current context; returns the reset token."""
    return _trace_id_var.set(trace_id)


def reset_trace_id(token) -> None:
    """Restore the trace ID that was bound before :func:`set_trace_id`."""
    _trace_id_var.reset(token)


@contextmanager
def trace(trace_id: str | None = None) -> Iterator[str]:
    """Run a block under a (new or given) trace ID::

        with obs.trace() as tid:
            ...  # current_trace_id() == tid in here
    """
    tid = trace_id if trace_id is not None else new_trace_id()
    token = _trace_id_var.set(tid)
    try:
        yield tid
    finally:
        _trace_id_var.reset(token)


# ----------------------------------------------------------------------
# Structured JSON logging
# ----------------------------------------------------------------------
class JsonLogFormatter(logging.Formatter):
    """Format each record as one JSON object per line.

    The line carries the timestamp, level, logger name, the event name
    (the record message), the trace ID captured at the call site, and
    any extra fields attached by :func:`log_event`.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None)
        if trace_id is not None:
            payload["trace_id"] = trace_id
        fields = getattr(record, "ftl_fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def log_event(logger: logging.Logger, event: str, **fields) -> None:
    """Emit one structured event, stamped with the current trace ID.

    The trace ID is read *here*, in the calling thread and context, so
    events logged from a request handler carry that request's ID.
    ``fields`` must be JSON-serialisable (or reprs are used).
    """
    if not logger.isEnabledFor(logging.INFO):
        return
    logger.info(
        event,
        extra={"ftl_fields": fields, "trace_id": current_trace_id()},
    )


def configure_json_logging(
    stream=None, level: int = logging.INFO
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``ftl`` logger namespace.

    Idempotent: an existing JSON handler on the namespace is reused,
    re-pointed at the requested stream (``sys.stderr`` by default) —
    the stream it was first attached with may have been closed since
    (e.g. a redirected stderr from a previous daemon run).
    Returns the handler (tests detach it to capture lines elsewhere).
    """
    logger = logging.getLogger(LOGGER_NAMESPACE)
    logger.setLevel(level)
    target = stream if stream is not None else sys.stderr
    for handler in logger.handlers:
        if isinstance(handler.formatter, JsonLogFormatter):
            if isinstance(handler, logging.StreamHandler):
                handler.setStream(target)
            return handler
    handler = logging.StreamHandler(target)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    return handler
