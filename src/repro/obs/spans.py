"""Stage timers: measure named hot-path stages into a pluggable sink.

Library code wraps its stages unconditionally::

    with obs.span("profile"):
        ...  # alignment + evidence gathering

and pays (almost) nothing when no sink is bound: the context manager
reads one ``ContextVar`` and yields.  A *sink* decides what a timing
means:

* :class:`MetricsSpanSink` feeds the daemon's shared
  :class:`~repro.service.state.Metrics` histograms (each stage becomes
  a ``stage_<name>`` latency histogram served by ``/metrics``);
* :class:`StageAccumulator` collects per-stage totals for one run —
  the engine behind the ``ftl profile`` breakdown table.

The sink lives in a ``ContextVar``, so it follows synchronous call
chains and ``await`` points but is *per-thread* for plain threads:
the daemon binds its sink inside each batch worker thread (via the
executor initializer, :func:`bind_sink`), which also keeps concurrent
servers in one process from observing each other's stages.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Protocol

#: The canonical serving-path stages (order = pipeline order).  The
#: daemon pre-registers one histogram per stage so ``/metrics`` always
#: exposes the full breakdown, populated or not.
STAGES = (
    "queue_wait",
    "prefilter",
    "blocking",
    "profile",
    "pb_test",
    "rank",
)

#: Prefix under which stage histograms live in a ``Metrics`` registry.
STAGE_METRIC_PREFIX = "stage_"


class SpanSink(Protocol):
    """Anything that can receive ``(stage name, elapsed seconds)``."""

    def record(self, name: str, seconds: float) -> None: ...


_sink_var: ContextVar[SpanSink | None] = ContextVar("ftl_span_sink", default=None)


def current_sink() -> SpanSink | None:
    """The sink bound to the current context, if any."""
    return _sink_var.get()


def bind_sink(sink: SpanSink | None) -> None:
    """Bind a sink for the rest of this context (no reset token).

    Meant for thread initializers (each worker thread has its own
    context); prefer :func:`use_sink` in scoped code.
    """
    _sink_var.set(sink)


@contextmanager
def use_sink(sink: SpanSink) -> Iterator[SpanSink]:
    """Bind a sink for the duration of a block, then restore."""
    token = _sink_var.set(sink)
    try:
        yield sink
    finally:
        _sink_var.reset(token)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time a block and report it to the bound sink (no-op when none).

    The elapsed time is recorded even when the block raises, so error
    paths show up in the stage histograms too.
    """
    sink = _sink_var.get()
    if sink is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        sink.record(name, time.perf_counter() - started)


class MetricsSpanSink:
    """Feed span timings into a :class:`~repro.service.state.Metrics`.

    Each stage ``name`` accumulates into the ``stage_<name>`` latency
    histogram; the registry's own lock makes this thread-safe.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics) -> None:
        self._metrics = metrics

    def record(self, name: str, seconds: float) -> None:
        self._metrics.observe(STAGE_METRIC_PREFIX + name, seconds)


class StageAccumulator:
    """Per-stage call counts and total time for one profiling run."""

    def __init__(self) -> None:
        self._calls: dict[str, int] = {}
        self._totals: dict[str, float] = {}
        self._maxima: dict[str, float] = {}

    def record(self, name: str, seconds: float) -> None:
        self._calls[name] = self._calls.get(name, 0) + 1
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        if seconds > self._maxima.get(name, 0.0):
            self._maxima[name] = seconds

    @property
    def stages(self) -> list[str]:
        """Recorded stage names, largest total time first."""
        return sorted(self._totals, key=lambda n: -self._totals[n])

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def total_s(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def to_dict(self) -> dict:
        return {
            name: {
                "calls": self._calls[name],
                "total_ms": round(self._totals[name] * 1e3, 4),
                "mean_ms": round(
                    self._totals[name] / self._calls[name] * 1e3, 4
                ),
                "max_ms": round(self._maxima[name] * 1e3, 4),
            }
            for name in self.stages
        }

    def table(self, wall_s: float | None = None) -> str:
        """Render the breakdown as an aligned text table.

        ``wall_s`` (the workload's wall-clock time) adds a ``share``
        column; nested spans mean shares need not sum to 100%.
        """
        header = f"{'stage':<12} {'calls':>7} {'total ms':>10} {'mean ms':>9} {'max ms':>9}"
        if wall_s is not None:
            header += f" {'share':>7}"
        lines = [header]
        for name in self.stages:
            row = (
                f"{name:<12} {self._calls[name]:>7} "
                f"{self._totals[name] * 1e3:>10.2f} "
                f"{self._totals[name] / self._calls[name] * 1e3:>9.3f} "
                f"{self._maxima[name] * 1e3:>9.2f}"
            )
            if wall_s is not None:
                share = self._totals[name] / wall_s if wall_s > 0 else 0.0
                row += f" {share:>6.1%}"
            lines.append(row)
        return "\n".join(lines)
