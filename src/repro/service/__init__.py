"""The FTL linking daemon: JSON-over-HTTP serving of the batch engine.

A stdlib-only asyncio subsystem that turns the in-process
:class:`~repro.core.engine.LinkEngine` and
:class:`~repro.core.streaming.StreamingLinker` into a network service:

* :mod:`repro.service.protocol` — wire schemas (the versioned ``/v1``
  response envelope included), parsing, and the mapping from
  :mod:`repro.errors` to structured error responses;
* :mod:`repro.service.state` — shared daemon state: engine, resident
  candidate pool, streaming ingest sessions with idle-TTL expiry, and
  the metrics registry;
* :mod:`repro.service.batcher` — the micro-batching scheduler that
  coalesces concurrent ``/v1/link`` requests into single batches;
* :mod:`repro.service.shard` — consistent-hash pool partitioning, the
  worker wire protocol, and the scatter-gather merge (bit-identical to
  single-process ranking);
* :mod:`repro.service.supervisor` — the prefork shard supervisor:
  worker lifecycle (fork, crash detection, respawn), scatter-gather
  ``/v1/link``, sharded ingest routing and store flushes;
* :mod:`repro.service.server` — the asyncio HTTP/1.1 daemon
  (``/v1/link``, ``/v1/ingest``, ``/v1/healthz``, ``/v1/metrics``,
  plus deprecated bare aliases) with bounded queues, 503 backpressure,
  per-request deadlines and graceful drain;
* :mod:`repro.service.client` — a thin blocking client (speaks v1) for
  tests, examples and load generation.

See ``docs/service.md`` and ``docs/api-v1.md`` for the endpoint and
schema reference.
"""

from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient
from repro.service.protocol import (
    API_VERSION,
    DEFAULT_MAX_BODY_BYTES,
    ResponseEnvelope,
    ShardInfo,
    envelope_data,
    error_payload,
    link_request_from_wire,
    options_from_wire,
    result_from_wire,
    result_to_wire,
    trajectory_from_wire,
    trajectory_to_wire,
)
from repro.service.server import BackgroundServer, LinkServer, ServerConfig
from repro.service.shard import HashRing, merge_partials, partition_pool
from repro.service.state import IngestSession, Metrics, ServiceState
from repro.service.supervisor import ShardSupervisor

__all__ = [
    "API_VERSION",
    "BackgroundServer",
    "DEFAULT_MAX_BODY_BYTES",
    "HashRing",
    "IngestSession",
    "LinkServer",
    "Metrics",
    "MicroBatcher",
    "ResponseEnvelope",
    "ServerConfig",
    "ServiceClient",
    "ServiceState",
    "ShardInfo",
    "ShardSupervisor",
    "envelope_data",
    "error_payload",
    "link_request_from_wire",
    "merge_partials",
    "options_from_wire",
    "partition_pool",
    "result_from_wire",
    "result_to_wire",
    "trajectory_from_wire",
    "trajectory_to_wire",
]
