"""The FTL linking daemon: JSON-over-HTTP serving of the batch engine.

A stdlib-only asyncio subsystem that turns the in-process
:class:`~repro.core.engine.LinkEngine` and
:class:`~repro.core.streaming.StreamingLinker` into a network service:

* :mod:`repro.service.protocol` — wire schemas, parsing, and the
  mapping from :mod:`repro.errors` to structured error responses;
* :mod:`repro.service.state` — shared daemon state: engine, resident
  candidate pool, streaming ingest sessions with idle-TTL expiry, and
  the metrics registry;
* :mod:`repro.service.batcher` — the micro-batching scheduler that
  coalesces concurrent ``/link`` requests into single
  :meth:`~repro.core.engine.LinkEngine.link_requests` calls;
* :mod:`repro.service.server` — the asyncio HTTP/1.1 daemon
  (``/link``, ``/ingest``, ``/healthz``, ``/metrics``) with bounded
  queues, 503 backpressure, per-request deadlines and graceful drain;
* :mod:`repro.service.client` — a thin blocking client for tests,
  examples and load generation.

See ``docs/service.md`` for the endpoint and schema reference.
"""

from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient
from repro.service.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    error_payload,
    link_request_from_wire,
    options_from_wire,
    result_from_wire,
    result_to_wire,
    trajectory_from_wire,
    trajectory_to_wire,
)
from repro.service.server import BackgroundServer, LinkServer, ServerConfig
from repro.service.state import IngestSession, Metrics, ServiceState

__all__ = [
    "BackgroundServer",
    "DEFAULT_MAX_BODY_BYTES",
    "IngestSession",
    "LinkServer",
    "Metrics",
    "MicroBatcher",
    "ServerConfig",
    "ServiceClient",
    "ServiceState",
    "error_payload",
    "link_request_from_wire",
    "options_from_wire",
    "result_from_wire",
    "result_to_wire",
    "trajectory_from_wire",
    "trajectory_to_wire",
]
