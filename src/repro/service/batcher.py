"""Micro-batching scheduler: coalesce concurrent requests into one call.

Per-request serving pays a fixed overhead per engine invocation — an
executor handoff, a future wakeup, a pass over NumPy dispatch — that
dwarfs the marginal cost of linking one more query inside an already
vectorised :meth:`~repro.core.engine.LinkEngine.link_requests` call.
The :class:`MicroBatcher` therefore drains up to ``max_batch_size``
queued requests (waiting at most ``max_wait_ms`` for stragglers after
the first arrival) and runs them as *one* engine call on a worker
thread.

Load-shedding is explicit and bounded:

* the queue holds at most ``queue_limit`` requests; a submit against a
  full queue fails fast with
  :class:`~repro.errors.ServiceOverloadedError` (HTTP 503) instead of
  growing an unbounded backlog;
* a request may carry a deadline; requests whose deadline passed while
  queued are completed with
  :class:`~repro.errors.DeadlineExceededError` (HTTP 504) *without*
  spending engine time on them;
* :meth:`stop` drains: submits are refused, queued work is finished,
  then the scheduler exits — the graceful-shutdown half of SIGTERM
  handling.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ValidationError,
)

_LOG = logging.getLogger("ftl.batcher")

DEFAULT_MAX_BATCH_SIZE = 16
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_QUEUE_LIMIT = 128


@dataclass
class _Pending:
    """One queued request with its completion future.

    ``trace_id`` is the submitting request's trace ID, captured at
    submit time — batches mix requests from different traces, so the
    batch log event lists every member's ID.
    """

    payload: Any
    future: asyncio.Future
    enqueued_at: float
    deadline: float | None
    trace_id: str | None = None


class MicroBatcher:
    """Coalesces awaitable submissions into bounded batch executions.

    Parameters
    ----------
    runner:
        ``runner(payloads) -> results`` called on a worker thread with
        the payloads of one batch, returning one result per payload in
        order.  For the daemon this is a closure over
        :meth:`LinkEngine.link_requests`.
    max_batch_size:
        Most payloads per runner call; ``1`` degenerates to per-request
        serving (the baseline configuration in the load benchmark).
    max_wait_ms:
        How long the scheduler waits for more arrivals after the first
        request of a batch before dispatching a partial batch.
    queue_limit:
        Bound on queued (not yet dispatched) requests; beyond it,
        submissions fail with ``ServiceOverloadedError``.
    metrics:
        Optional :class:`~repro.service.state.Metrics` to record batch
        sizes, queue wait and execution latency.
    """

    def __init__(
        self,
        runner: Callable[[list[Any]], Sequence[Any]],
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        metrics=None,
        executor=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_ms < 0:
            raise ValidationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_limit < 1:
            raise ValidationError(f"queue_limit must be >= 1, got {queue_limit}")
        self._runner = runner
        self._max_batch_size = int(max_batch_size)
        self._max_wait_s = float(max_wait_ms) / 1e3
        self._queue_limit = int(queue_limit)
        self._metrics = metrics
        self._executor = executor
        self._clock = clock
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._accepting = False
        #: Requests whose future is not yet done — queued, collected
        #: into a batch, or executing.  ``stop`` drains on this, so a
        #: request can never be stranded between the queue and a batch.
        self._n_pending = 0
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the scheduler loop (idempotent)."""
        if self._task is None or self._task.done():
            self._accepting = True
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Refuse new work, drain queued *and* in-flight work, then stop."""
        self._accepting = False
        if self._task is None:
            return
        while self._n_pending:
            await asyncio.sleep(0.001)
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, payload: Any, timeout_ms: float | None = None) -> Any:
        """Enqueue one payload and await its batch result.

        Raises ``ServiceOverloadedError`` immediately when the queue is
        full or the batcher is draining, and ``DeadlineExceededError``
        when ``timeout_ms`` elapses before the payload is dispatched.
        """
        if not self._accepting:
            raise ServiceOverloadedError("service is draining; retry later")
        if self._queue.qsize() >= self._queue_limit:
            if self._metrics is not None:
                self._metrics.inc("queue_rejections_total")
            raise ServiceOverloadedError(
                f"request queue is full ({self._queue_limit} pending); retry later"
            )
        now = self._clock()
        deadline = None if timeout_ms is None else now + timeout_ms / 1e3
        pending = _Pending(
            payload=payload,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline=deadline,
            trace_id=obs.current_trace_id(),
        )
        self._n_pending += 1
        pending.future.add_done_callback(self._on_done)
        self._queue.put_nowait(pending)
        return await pending.future

    def _on_done(self, _future: asyncio.Future) -> None:
        self._n_pending -= 1

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    async def _collect_batch(self) -> list[_Pending]:
        """Block for the first request, then coalesce up to the limits."""
        batch = [await self._queue.get()]
        flush_at = self._clock() + self._max_wait_s
        while len(batch) < self._max_batch_size:
            remaining = flush_at - self._clock()
            if remaining <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    def _split_expired(
        self, batch: list[_Pending]
    ) -> tuple[list[_Pending], list[_Pending]]:
        now = self._clock()
        live = [p for p in batch if p.deadline is None or p.deadline > now]
        expired = [p for p in batch if p.deadline is not None and p.deadline <= now]
        return live, expired

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            await self._process(loop, batch)

    async def _process(self, loop, batch: list[_Pending]) -> None:
        live, expired = self._split_expired(batch)
        for pending in expired:
            if not pending.future.done():
                pending.future.set_exception(
                    DeadlineExceededError(
                        "request spent its deadline waiting in the queue"
                    )
                )
        if self._metrics is not None:
            if expired:
                self._metrics.inc("deadline_exceeded_total", len(expired))
            if live:
                now = self._clock()
                self._metrics.inc("batches_total")
                self._metrics.inc("batched_requests_total", len(live))
                for pending in live:
                    self._metrics.observe(
                        "stage_queue_wait", now - pending.enqueued_at
                    )
        if not live:
            return
        started = self._clock()
        try:
            results = await loop.run_in_executor(
                self._executor, self._runner, [p.payload for p in live]
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to callers
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        exec_s = self._clock() - started
        if self._metrics is not None:
            self._metrics.observe("batch_exec", exec_s)
        obs.log_event(
            _LOG,
            "batch",
            size=len(live),
            exec_ms=round(exec_s * 1e3, 3),
            trace_ids=[p.trace_id for p in live if p.trace_id is not None],
        )
        for pending, result in zip(live, results):
            if not pending.future.done():
                pending.future.set_result(result)
