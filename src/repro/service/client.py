"""Blocking client for the linking daemon.

A thin ``http.client`` wrapper used by tests, examples and the load
generator.  Connections are kept alive across calls and transparently
re-established; server-side failures surface as
:class:`~repro.errors.RemoteServiceError` carrying the structured error
payload, so callers can switch on ``exc.status`` /
``exc.payload["error"]["type"]`` without string matching.

Retries are bounded and verb-aware.  Failures while *establishing* a
connection never reached the server, so they are retried (with
exponential backoff) for the idempotent endpoints.  Failures after the
request went out on a **reused** keep-alive connection are almost
always the server having closed the idle socket between our calls —
also safe to retry, but again only for idempotent endpoints.  A
``POST /ingest`` that may have reached the server is *never* retried:
replaying it would double-observe every record.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterable, Mapping, Sequence
from urllib.parse import quote

from repro.core.engine import LinkOptions, LinkResult
from repro.core.trajectory import Trajectory
from repro.errors import RemoteServiceError, ValidationError
from repro.service.protocol import (
    envelope_data,
    result_from_wire,
    trajectory_to_wire,
)

#: ``LinkOptions`` fields forwarded on the wire by :meth:`ServiceClient.link`.
_WIRE_FIELDS = ("method", "alpha1", "alpha2", "phi_r", "top_k")

#: Endpoints safe to replay: re-sending them cannot change server state
#: (``/link`` is a pure read over the pool, ``/watch`` a pure read of
#: the event buffer, and ``/queries`` register/unregister are
#: replace/remove operations whose replay converges on the same
#: state).  ``/ingest`` is absent on purpose — replaying it would
#: double-observe records.  ``/admin/model`` converges too: swapping to
#: an artifact the daemon already serves is a no-op.  Both path
#: families are listed: the client speaks v1 but callers may pass
#: legacy paths to :meth:`ServiceClient.request` directly.
_IDEMPOTENT_PATHS = (
    "/v1/link", "/v1/assign", "/v1/queries", "/v1/watch", "/v1/healthz",
    "/v1/metrics", "/v1/admin/model",
    "/link", "/assign", "/queries", "/watch", "/healthz", "/metrics",
)

#: Exceptions that mean "the transport failed", as opposed to a parsed
#: HTTP error response.
_TRANSPORT_ERRORS = (ConnectionError, http.client.HTTPException, OSError)


class ServiceClient:
    """Call a running linking daemon over HTTP.

    Parameters
    ----------
    host, port:
        Where the daemon listens (e.g. ``*BackgroundServer.address``).
    timeout_s:
        Socket timeout for each call.
    max_retries:
        How many times a retryable failure is retried (on top of the
        initial attempt).  Only connection-phase failures and dropped
        keep-alive sockets on idempotent endpoints qualify; see the
        module docstring.
    backoff_s:
        Base sleep before the first retry; doubles per retry.
    sleep, connection_factory:
        Injection points for tests (fake clock, failing transports).

    The client is not thread-safe; give each thread its own instance
    (they are cheap — one lazy TCP connection each).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        sleep=time.sleep,
        connection_factory=http.client.HTTPConnection,
    ) -> None:
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        self._host = host
        self._port = int(port)
        self._timeout_s = timeout_s
        self._max_retries = int(max_retries)
        self._backoff_s = float(backoff_s)
        self._sleep = sleep
        self._connection_factory = connection_factory
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """A live connection plus whether it is a reused keep-alive one.

        Connecting eagerly (rather than inside ``conn.request``) keeps
        connection-phase failures distinguishable from failures after
        the request bytes may already have reached the server.
        """
        if self._conn is not None:
            return self._conn, True
        conn = self._connection_factory(
            self._host, self._port, timeout=self._timeout_s
        )
        conn.connect()
        self._conn = conn
        return conn, False

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, body: object | None = None) -> dict:
        """One JSON round trip with bounded, idempotency-aware retries."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        idempotent = path.partition("?")[0] in _IDEMPOTENT_PATHS
        attempt = 0
        while True:
            reused = connected = False
            try:
                conn, reused = self._connection()
                connected = True
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except _TRANSPORT_ERRORS:
                self.close()
                # Connect-phase failures (``connected`` still False)
                # never reached the server; a *reused* keep-alive socket
                # failing mid-request means the server dropped the idle
                # connection between calls.  Both are safe to replay for
                # idempotent endpoints.  A fresh connection failing
                # after the request went out may have been acted on —
                # never replayed (nor is anything non-idempotent).
                retryable = idempotent and (not connected or reused)
                if not retryable or attempt >= self._max_retries:
                    raise
                self._sleep(self._backoff_s * (2 ** attempt))
                attempt += 1
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError as exc:
            raise RemoteServiceError(
                response.status,
                {"error": {"type": "ProtocolError",
                           "message": f"undecodable response body: {exc}"}},
            ) from None
        if response.status >= 300:
            raise RemoteServiceError(response.status, parsed)
        return parsed

    # ------------------------------------------------------------------
    # Endpoints (v1 wire API; see docs/api-v1.md)
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The ``/v1/healthz`` payload (the envelope's ``data``)."""
        return envelope_data(self.request("GET", "/v1/healthz"))

    def metrics(self) -> dict:
        """The metrics registry as JSON (counters, latency, queue depth)."""
        return envelope_data(self.request("GET", "/v1/metrics?format=json"))

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition served at ``/v1/metrics``.

        Bypasses :meth:`request` (which decodes JSON): one GET on a
        fresh connection, returning the body verbatim.
        """
        conn = self._connection_factory(
            self._host, self._port, timeout=self._timeout_s
        )
        try:
            conn.request("GET", "/v1/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 300:
                raise RemoteServiceError(
                    response.status,
                    {"error": {"type": "RemoteServiceError",
                               "message": raw.decode("utf-8", "replace")}},
                )
            return raw.decode("utf-8")
        finally:
            conn.close()

    def link_raw(self, body: dict) -> dict:
        """POST a pre-built ``/v1/link`` body; returns the **full**
        response envelope (``data`` + ``shard_count`` + ``shards``
        provenance), for callers that want the scatter-gather detail."""
        return self.request("POST", "/v1/link", body)

    def link(
        self,
        query: Trajectory,
        candidates: Iterable[Trajectory] | None = None,
        options: LinkOptions | None = None,
        timeout_ms: float | None = None,
    ) -> LinkResult:
        """Link one query, decoding the response into a :class:`LinkResult`.

        ``candidates=None`` ranks against the daemon's resident pool.
        ``options`` fields are sent on the wire (``prefilter`` cannot
        be serialised and must be configured server-side).
        """
        if options is not None and options.prefilter is not None:
            raise ValidationError(
                "prefilter cannot be sent over the wire; configure it "
                "on the server's LinkOptions"
            )
        body: dict = {"query": trajectory_to_wire(query)}
        if candidates is not None:
            body["candidates"] = [trajectory_to_wire(c) for c in candidates]
        if options is not None:
            body["options"] = {
                field: getattr(options, field) for field in _WIRE_FIELDS
            }
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return result_from_wire(envelope_data(self.link_raw(body)))

    def assign_raw(self, body: dict) -> dict:
        """POST a pre-built ``/v1/assign`` body; returns the full
        response envelope (``data`` + scatter-gather provenance)."""
        return self.request("POST", "/v1/assign", body)

    def assign(
        self,
        queries: Iterable[Trajectory],
        options: LinkOptions | None = None,
        min_score: float | None = None,
        solver: str | None = None,
    ) -> dict:
        """Solve a global one-to-one assignment over the resident pool.

        Returns the assignment payload (``matches``, ``unassigned``,
        ``total_score``, ``solver``, component/edge counts).  Omitting
        ``options`` scores with the daemon's permissive score-all
        semantics; omitting ``solver`` picks the best available
        backend.  See ``docs/assignment.md``.
        """
        if options is not None and options.prefilter is not None:
            raise ValidationError(
                "prefilter cannot be sent over the wire; configure it "
                "on the server's LinkOptions"
            )
        body: dict = {
            "queries": [trajectory_to_wire(q) for q in queries]
        }
        if options is not None:
            body["options"] = {
                field: getattr(options, field) for field in _WIRE_FIELDS
            }
        if min_score is not None:
            body["min_score"] = min_score
        if solver is not None:
            body["solver"] = solver
        return envelope_data(self.assign_raw(body))

    def register_query(
        self,
        query: Trajectory,
        query_id: str | None = None,
        options: LinkOptions | None = None,
    ) -> dict:
        """Register (or replace) a standing query on the daemon.

        Returns the initial snapshot (``seq`` 1, full warm ranking).
        Requires a store-backed daemon (``ftl serve --store``).
        """
        if options is not None and options.prefilter is not None:
            raise ValidationError(
                "prefilter cannot be sent over the wire; configure it "
                "on the server's LinkOptions"
            )
        body: dict = {"query": trajectory_to_wire(query)}
        if query_id is not None:
            body["query_id"] = str(query_id)
        if options is not None:
            body["options"] = {
                field: getattr(options, field) for field in _WIRE_FIELDS
            }
        return envelope_data(self.request("POST", "/v1/queries", body))

    def unregister_query(self, query_id: str) -> dict:
        """Remove a standing query; ``{"removed": false}`` if unknown."""
        return envelope_data(
            self.request("POST", "/v1/queries", {"unregister": str(query_id)})
        )

    def queries(self) -> list[dict]:
        """Summaries of every registered standing query."""
        return envelope_data(self.request("GET", "/v1/queries"))["queries"]

    def watch(
        self,
        query_id: str,
        since: int = 0,
        wait_ms: float | None = None,
    ) -> dict:
        """One ``/v1/watch`` long-poll round for a standing query.

        Returns ``{"query_id", "seq", "resync", "events"}``; pass the
        returned ``seq`` back as ``since`` to resume.  ``wait_ms`` is
        how long the daemon may hold the poll open waiting for a new
        event (capped server-side); keep it below this client's
        ``timeout_s`` or the socket gives up first.
        """
        path = (
            f"/v1/watch?query={quote(str(query_id), safe='')}"
            f"&since={int(since)}"
        )
        if wait_ms is not None:
            path += f"&wait_ms={float(wait_ms)}"
        return envelope_data(self.request("GET", path))

    def model_info(self) -> dict:
        """The daemon's serving model + the store's artifact registry."""
        return envelope_data(self.request("GET", "/v1/admin/model"))

    def swap_model(self, artifact_id: str | None = None) -> dict:
        """Hot-swap the daemon onto a persisted model artifact.

        ``artifact_id=None`` swaps to the store's *active* artifact
        (re-read from disk, so an ``ftl model fit`` or ``activate`` in
        another process is picked up).  Returns ``{"swapped", "artifact",
        "previous", ...}``; requires a store-backed daemon.
        """
        body: dict = {}
        if artifact_id is not None:
            body["artifact_id"] = str(artifact_id)
        return envelope_data(self.request("POST", "/v1/admin/model", body))

    def ingest(
        self,
        session: str,
        query_records: Sequence[Sequence[float]] = (),
        candidate_records: Mapping[str, Sequence[Sequence[float]]] | None = None,
        expire_before: float | None = None,
        decide: bool = True,
        flush: bool = False,
    ) -> dict:
        """Stream records into a server-side session; returns decisions.

        Records are ``(t, x, y)`` triples (any sequence type).
        ``flush=True`` additionally persists the session's buffered
        candidate records into the daemon's trajectory store (requires
        ``ftl serve --store``); the response then carries
        ``flushed_records``.
        """
        body: dict = {
            "session": session,
            "query": [list(map(float, r)) for r in query_records],
            "candidates": {
                str(cid): [list(map(float, r)) for r in records]
                for cid, records in (candidate_records or {}).items()
            },
            "decide": decide,
        }
        if flush:
            body["flush"] = True
        if expire_before is not None:
            body["expire_before"] = expire_before
        return envelope_data(self.request("POST", "/v1/ingest", body))
