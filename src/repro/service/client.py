"""Blocking client for the linking daemon.

A thin ``http.client`` wrapper used by tests, examples and the load
generator.  Connections are kept alive across calls and transparently
re-established; server-side failures surface as
:class:`~repro.errors.RemoteServiceError` carrying the structured error
payload, so callers can switch on ``exc.status`` /
``exc.payload["error"]["type"]`` without string matching.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterable, Mapping, Sequence

from repro.core.engine import LinkOptions, LinkResult
from repro.core.trajectory import Trajectory
from repro.errors import RemoteServiceError, ValidationError
from repro.service.protocol import (
    result_from_wire,
    trajectory_to_wire,
)

#: ``LinkOptions`` fields forwarded on the wire by :meth:`ServiceClient.link`.
_WIRE_FIELDS = ("method", "alpha1", "alpha2", "phi_r", "top_k")


class ServiceClient:
    """Call a running linking daemon over HTTP.

    Parameters
    ----------
    host, port:
        Where the daemon listens (e.g. ``*BackgroundServer.address``).
    timeout_s:
        Socket timeout for each call.

    The client is not thread-safe; give each thread its own instance
    (they are cheap — one lazy TCP connection each).
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._host = host
        self._port = int(port)
        self._timeout_s = timeout_s
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, body: object | None = None) -> dict:
        """One JSON round trip; retries once on a dropped keep-alive."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError as exc:
            raise RemoteServiceError(
                response.status,
                {"error": {"type": "ProtocolError",
                           "message": f"undecodable response body: {exc}"}},
            ) from None
        if response.status >= 300:
            raise RemoteServiceError(response.status, parsed)
        return parsed

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def link_raw(self, body: dict) -> dict:
        """POST a pre-built ``/link`` body; returns the wire response."""
        return self.request("POST", "/link", body)

    def link(
        self,
        query: Trajectory,
        candidates: Iterable[Trajectory] | None = None,
        options: LinkOptions | None = None,
        timeout_ms: float | None = None,
    ) -> LinkResult:
        """Link one query, decoding the response into a :class:`LinkResult`.

        ``candidates=None`` ranks against the daemon's resident pool.
        ``options`` fields are sent on the wire (``prefilter`` cannot
        be serialised and must be configured server-side).
        """
        if options is not None and options.prefilter is not None:
            raise ValidationError(
                "prefilter cannot be sent over the wire; configure it "
                "on the server's LinkOptions"
            )
        body: dict = {"query": trajectory_to_wire(query)}
        if candidates is not None:
            body["candidates"] = [trajectory_to_wire(c) for c in candidates]
        if options is not None:
            body["options"] = {
                field: getattr(options, field) for field in _WIRE_FIELDS
            }
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return result_from_wire(self.link_raw(body))

    def ingest(
        self,
        session: str,
        query_records: Sequence[Sequence[float]] = (),
        candidate_records: Mapping[str, Sequence[Sequence[float]]] | None = None,
        expire_before: float | None = None,
        decide: bool = True,
        flush: bool = False,
    ) -> dict:
        """Stream records into a server-side session; returns decisions.

        Records are ``(t, x, y)`` triples (any sequence type).
        ``flush=True`` additionally persists the session's buffered
        candidate records into the daemon's trajectory store (requires
        ``ftl serve --store``); the response then carries
        ``flushed_records``.
        """
        body: dict = {
            "session": session,
            "query": [list(map(float, r)) for r in query_records],
            "candidates": {
                str(cid): [list(map(float, r)) for r in records]
                for cid, records in (candidate_records or {}).items()
            },
            "decide": decide,
        }
        if flush:
            body["flush"] = True
        if expire_before is not None:
            body["expire_before"] = expire_before
        return self.request("POST", "/ingest", body)
