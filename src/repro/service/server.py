"""The asyncio linking daemon: JSON over HTTP/1.1, stdlib only.

One event loop accepts connections and parses requests; ``/v1/link``
bodies are handed to the :class:`~repro.service.batcher.MicroBatcher`,
which coalesces them into batches.  With ``workers == 1`` a batch runs
in-process through
:meth:`~repro.core.engine.LinkEngine.link_requests`; with
``workers > 1`` the :class:`~repro.service.supervisor.ShardSupervisor`
forks one worker process per shard *before* the listener exists and
each batch is scattered across the shards and merged (bit-identical to
the single-process ranking; see :mod:`repro.service.shard`).
``/v1/ingest`` routes streaming record updates into per-session
:class:`~repro.core.streaming.StreamingLinker` instances (sharded:
queries broadcast, candidates routed to their owning shard), and
``/v1/healthz`` + ``/v1/metrics`` expose liveness and the
counter/latency registry aggregated across workers.  A store-backed
daemon additionally runs the continuous-linkage pipeline of
:class:`~repro.stream.runtime.StreamRuntime`: ``/v1/queries``
registers standing queries whose top-k rankings are kept warm across
ingest flushes and sliding-window evictions, and ``/v1/watch``
long-polls their result deltas (see ``docs/streaming.md``).

Every v1 JSON endpoint answers with the
:class:`~repro.service.protocol.ResponseEnvelope` shape; the bare
legacy paths (``/link``, ...) serve the identical body with a
``Deprecation: true`` header and a ``Link: </v1/...>;
rel="successor-version"`` pointer (see ``docs/api-v1.md``).

The HTTP layer is intentionally minimal: HTTP/1.1 with keep-alive and
``Content-Length`` bodies (chunked uploads are rejected), every error
answered with the structured JSON of
:func:`repro.service.protocol.error_payload`.  ``SIGTERM``/``SIGINT``
trigger a graceful drain: stop accepting, finish queued work, exit.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import logging
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from urllib.parse import parse_qs

from repro import obs
from repro.core.engine import LinkEngine, LinkOptions, LinkRequest
from repro.errors import (
    PayloadTooLargeError,
    ProtocolError,
    StateError,
    ValidationError,
)
from repro.service import protocol
from repro.service.batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_MS,
    DEFAULT_QUEUE_LIMIT,
    MicroBatcher,
)
from repro.service.state import DEFAULT_SESSION_TTL_S, ServiceState
from repro.service.supervisor import ShardSupervisor
from repro.stream.runtime import DEFAULT_MERGE_MIN_BLOCKS, StreamRuntime

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Cap on header lines per request (defence against header floods).
_MAX_HEADERS = 100

_LOG = logging.getLogger("ftl.server")


def _query_param(query: str, name: str) -> str | None:
    """The last value of a query parameter, or ``None`` when absent."""
    if not query:
        return None
    values = parse_qs(query, keep_blank_values=True).get(name)
    return values[-1] if values else None


@dataclass(frozen=True)
class ServerConfig:
    """Daemon knobs (everything the CLI ``ftl serve`` flags map onto).

    ``workers`` is the number of **shard worker processes**: ``1``
    serves every batch in-process (no fork); ``N > 1`` forks ``N``
    workers at startup, partitions the candidate pool across them by
    home-cell consistent hashing, and scatter-gathers each ``/v1/link``
    batch (see :class:`~repro.service.supervisor.ShardSupervisor`).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    workers: int = 1
    session_ttl_s: float = DEFAULT_SESSION_TTL_S
    max_body_bytes: int = protocol.DEFAULT_MAX_BODY_BYTES
    default_timeout_ms: float | None = None
    sweep_interval_s: float = 30.0
    #: Bind a span sink in batch worker threads so engine/store stage
    #: timers feed the ``/metrics`` histograms.  Off = timers no-op.
    spans: bool = True
    #: Server-side cap on a ``/v1/watch`` long-poll's ``wait_ms``.
    watch_max_wait_ms: float = 30_000.0
    #: Threads dedicated to ``/v1/watch`` long-polls.  Watch waits can
    #: park a thread for ``watch_max_wait_ms``, so they never share the
    #: default executor with ingest/flush handlers and the sweeper —
    #: a burst of watchers would starve all other off-loop work.
    #: Watchers beyond the cap queue for a free watch thread.
    watch_concurrency: int = 32
    #: Delta blocks accumulated before the sweeper folds them into the
    #: main ST-index (see :meth:`StreamRuntime.maybe_merge`).
    merge_min_blocks: int = DEFAULT_MERGE_MIN_BLOCKS

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.sweep_interval_s <= 0:
            raise ValidationError(
                f"sweep_interval_s must be positive, got {self.sweep_interval_s}"
            )
        if self.watch_max_wait_ms < 0:
            raise ValidationError(
                f"watch_max_wait_ms must be >= 0, got {self.watch_max_wait_ms}"
            )
        if self.merge_min_blocks < 1:
            raise ValidationError(
                f"merge_min_blocks must be >= 1, got {self.merge_min_blocks}"
            )
        if self.watch_concurrency < 1:
            raise ValidationError(
                f"watch_concurrency must be >= 1, got {self.watch_concurrency}"
            )


class LinkServer:
    """The daemon: routes, batching, sessions, lifecycle.

    Parameters
    ----------
    engine:
        A fitted :class:`~repro.core.engine.LinkEngine`.
    pool:
        Resident candidate pool served to ``/link`` requests without
        their own candidates.
    options:
        Server-default :class:`LinkOptions` (falls back to the
        engine's).
    config:
        Network and scheduling knobs; see :class:`ServerConfig`.
    clock:
        Injectable monotonic clock (session-TTL tests control time).
    store:
        Optional :class:`~repro.store.TrajectoryStore` backing the
        pool; enables ingest-session flushes into its append log.
    provenance:
        Data-source descriptor surfaced by ``/healthz`` and the
        startup log (see :meth:`ServiceState.health`).
    """

    def __init__(
        self,
        engine: LinkEngine,
        pool,
        options: LinkOptions | None = None,
        config: ServerConfig = ServerConfig(),
        clock=time.monotonic,
        store=None,
        provenance: dict | None = None,
        model_artifact_id: str | None = None,
    ) -> None:
        self._config = config
        self._state = ServiceState(
            engine=engine,
            pool=list(pool),
            options=options if options is not None else engine.options,
            session_ttl_s=config.session_ttl_s,
            clock=clock,
            store=store,
            provenance=provenance,
            model_artifact_id=model_artifact_id,
        )
        self._clock = clock
        # The engine's caches are plain dicts; one lock keeps them
        # consistent between the batch thread and coordinator-local
        # execution paths.
        self._engine_lock = threading.Lock()
        # workers > 1 = prefork sharding: the supervisor is built here
        # (partitions computed) but forks in start(), before the
        # asyncio listener exists, so children inherit engine + pool
        # copy-on-write and no server sockets.
        self._supervisor = (
            ShardSupervisor(self._state, config.workers, spans=config.spans)
            if config.workers > 1
            else None
        )
        # A store-backed daemon is a *streaming* daemon: the runtime
        # owns the delta log, the standing-query registry and the
        # background-merge policy, and the flush/evict hooks in
        # ServiceState (and the sharded supervisor) drive it.  Sharded,
        # the changed-pair re-scoring scatters to the workers owning
        # each candidate; unsharded it runs on the local engine.
        if store is not None:
            self._state.stream = StreamRuntime(
                store,
                engine,
                self._state.pool,
                self._state.options,
                metrics=self._state.metrics,
                clock=clock,
                scorer=(
                    self._supervisor.score_pairs
                    if self._supervisor is not None
                    else None
                ),
                engine_lock=self._engine_lock,
                merge_min_blocks=config.merge_min_blocks,
            )
        # Span and evidence sinks live in per-thread context, so bind
        # them inside the batch worker as it starts: engine/store spans
        # accumulate into *this* server's metrics, drift evidence into
        # *this* server's tallies, and concurrent servers in one
        # process (the test suite) never see each other's stages.
        # (Sharded mode binds sinks per worker process instead; batch
        # execution there is a scatter, not engine work — but
        # coordinator-local scoring still runs on this thread, covered
        # by the same binding.)
        self._executor = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix="ftl-batch",
            initializer=self._bind_batch_sinks,
        )
        # /v1/watch long-polls park a thread for up to
        # watch_max_wait_ms; a dedicated pool keeps them from starving
        # the default executor that serves ingest/flush handlers and
        # the sweeper.  Threads spawn lazily, so an idle daemon (or one
        # without a store) pays nothing.
        self._watch_executor = ThreadPoolExecutor(
            max_workers=config.watch_concurrency,
            thread_name_prefix="ftl-watch",
        )
        self._batcher = MicroBatcher(
            runner=self._run_batch,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            queue_limit=config.queue_limit,
            metrics=self._state.metrics,
            executor=self._executor,
            clock=clock,
        )
        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        return self._state

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` requests)."""
        if self._server is None or not self._server.sockets:
            raise ValidationError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        if self._supervisor is not None:
            # Fork the shard workers first: they must not inherit the
            # accept socket (or any connection state) created below.
            self._supervisor.start()
        await self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )
        self._sweeper = asyncio.get_running_loop().create_task(
            self._sweep_sessions()
        )

    async def stop(self) -> None:
        """Graceful drain: stop accepting, flush the queue, release threads."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._batcher.stop()
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        self._executor.shutdown(wait=True)
        # Wake parked long-polls first so the watch pool drains now,
        # not after each watcher's full wait_ms elapses.
        if self._state.stream is not None:
            self._state.stream.registry.close()
        self._watch_executor.shutdown(wait=True)
        if self._supervisor is not None:
            # After the batcher drain nothing is in flight, so worker
            # shutdown loses no queued work.
            self._supervisor.stop()

    def request_shutdown(self) -> None:
        """Signal-safe trigger for :meth:`serve_until_shutdown`."""
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Drain on SIGTERM/SIGINT where the platform supports it."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def serve_until_shutdown(
        self, shutdown_after_s: float | None = None
    ) -> None:
        """Serve until a shutdown request (or a timeout), then drain."""
        try:
            if shutdown_after_s is None:
                await self._shutdown.wait()
            else:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._shutdown.wait(), timeout=shutdown_after_s
                    )
        finally:
            await self.stop()

    async def _sweep_sessions(self) -> None:
        interval = min(self._config.sweep_interval_s, self._config.session_ttl_s)
        while True:
            await asyncio.sleep(interval)
            if self._supervisor is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._sweep_sharded
                )
            else:
                await self._off_loop(self._state.expire_idle_sessions)
            if self._state.stream is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._merge_deltas
                )

    def _merge_deltas(self) -> None:
        """Background fold of the delta log into the main ST-index."""
        try:
            self._state.stream.maybe_merge()
        except Exception:  # noqa: BLE001 - merge must never kill the sweeper
            _LOG.warning("background index delta merge failed", exc_info=True)

    def _sweep_sharded(self) -> None:
        """Periodic sharded housekeeping (off the event loop: it pings)."""
        self._supervisor.ensure_alive()
        self._supervisor.expire_idle()

    # ------------------------------------------------------------------
    # Batch execution (worker thread)
    # ------------------------------------------------------------------
    def _bind_batch_sinks(self) -> None:
        """Thread initializer for the batch executor: bind both sinks.

        The evidence sink is bound unconditionally — drift detection is
        an always-on correctness signal, not an opt-in timer — while
        the span sink follows ``config.spans``.
        """
        if self._config.spans:
            obs.bind_sink(obs.MetricsSpanSink(self._state.metrics))
        obs.bind_evidence_sink(self._state.evidence)

    def _run_batch(
        self, requests: list[LinkRequest]
    ) -> list[tuple[object, tuple[protocol.ShardInfo, ...]]]:
        """One batch -> ``(LinkResult, shard provenance)`` per request."""
        if self._supervisor is not None:
            return self._supervisor.link_requests(requests)
        started = self._clock()
        with self._engine_lock:
            results = self._state.engine.link_requests(
                requests, default_pool=self._state.pool
            )
        elapsed_ms = round((self._clock() - started) * 1e3, 3)
        pid = os.getpid()
        return [
            (
                result,
                (
                    protocol.ShardInfo(
                        shard=0,
                        pid=pid,
                        n_candidates=len(
                            request.candidates
                            if request.candidates is not None
                            else self._state.pool
                        ),
                        n_matched=len(result.candidates),
                        elapsed_ms=elapsed_ms,
                    ),
                ),
            )
            for request, result in zip(requests, results)
        ]

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (ProtocolError, PayloadTooLargeError) as exc:
                    status, body = protocol.error_payload(exc)
                    self._write_response(writer, status, body, close=True)
                    break
                if request is None:
                    break
                method, path, query, headers, body_bytes = request
                status, body, trace_id, extra_headers = await self._dispatch(
                    method, path, query, body_bytes
                )
                close = (
                    self._draining
                    or headers.get("connection", "").lower() == "close"
                )
                self._write_response(
                    writer,
                    status,
                    body,
                    close=close,
                    trace_id=trace_id,
                    extra_headers=extra_headers,
                )
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        """One parsed request, or ``None`` when the peer closed cleanly."""
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError("request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ProtocolError("malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            try:
                hline = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                raise ProtocolError("header line too long") from None
            if hline in (b"\r\n", b"\n"):
                break
            if not hline:
                return None
            if len(headers) >= _MAX_HEADERS:
                raise ProtocolError("too many header lines")
            name, sep, value = hline.decode("latin-1", "replace").partition(":")
            if not sep:
                raise ProtocolError(f"malformed header line {hline!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise ProtocolError("chunked request bodies are not supported")
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(
                f"invalid Content-Length {raw_length!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"invalid Content-Length {length}")
        if length > self._config.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self._config.max_body_bytes} byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, query, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict | str,
        close: bool,
        trace_id: str | None = None,
        extra_headers: dict | None = None,
    ) -> None:
        if isinstance(body, str):
            # Pre-rendered text body (the Prometheus exposition).
            payload = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = json.dumps(body, default=str).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "OK")
        extra = "Retry-After: 1\r\n" if status == 503 else ""
        if trace_id is not None:
            extra += f"X-Trace-Id: {trace_id}\r\n"
        for name, value in (extra_headers or {}).items():
            extra += f"{name}: {value}\r\n"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"{extra}\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        self._state.metrics.inc(f"responses_{status}_total")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, query: str, body: bytes
    ) -> tuple[int, dict | str, str, dict]:
        """Route one request under a fresh trace ID.

        The ID is bound to the task context for the request's lifetime
        (the batcher captures it at submit time), echoed in dict
        response bodies and the ``X-Trace-Id`` header, and stamped on
        the structured ``request`` log event.  ``/v1/...`` and bare
        legacy paths share one canonical route (and one latency
        histogram); the legacy family additionally answers with
        deprecation headers.
        """
        self._state.metrics.inc("requests_total")
        started = self._clock()
        trace_id = obs.new_trace_id()
        token = obs.set_trace_id(trace_id)
        route, extra_headers = self._canonical_route(path)
        try:
            status, payload = await self._route(method, route, query, body)
            if isinstance(payload, dict):
                payload.setdefault("trace_id", trace_id)
            obs.log_event(
                _LOG,
                "request",
                method=method,
                path=path,
                status=status,
                duration_ms=round((self._clock() - started) * 1e3, 3),
            )
            return status, payload, trace_id, extra_headers
        finally:
            obs.reset_trace_id(token)
            label = route.strip("/").replace("/", "_") or "root"
            self._state.metrics.observe(
                f"request_{label}", self._clock() - started
            )

    @staticmethod
    def _canonical_route(path: str) -> tuple[str, dict]:
        """``(bare route, response headers)`` for a request path.

        ``/v1/link`` -> ``/link`` with no extra headers; a bare legacy
        ``/link`` stays itself but gains ``Deprecation`` plus a
        ``Link`` header naming its v1 successor (RFC 8594-style).
        Unknown paths pass through untouched and 404 in :meth:`_route`.
        """
        if path.startswith("/v1/"):
            return path[len("/v1"):], {}
        if path.lstrip("/") in protocol.V1_ENDPOINTS:
            return path, {
                "Deprecation": "true",
                "Link": f'</v1{path}>; rel="successor-version"',
            }
        return path, {}

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> tuple[int, dict | str]:
        try:
            if path == "/healthz":
                self._require_method(method, "GET")
                return 200, self._envelope(
                    await self._off_loop(self._handle_health)
                )
            if path == "/metrics":
                self._require_method(method, "GET")
                payload = await self._off_loop(self._handle_metrics, query)
                if isinstance(payload, str):
                    # The Prometheus text exposition stays bare: a JSON
                    # envelope is not scrapeable.
                    return 200, payload
                return 200, self._envelope(payload)
            if path == "/link":
                self._require_method(method, "POST")
                return 200, await self._handle_link(body)
            if path == "/assign":
                self._require_method(method, "POST")
                return 200, await self._handle_assign(body)
            if path == "/ingest":
                self._require_method(method, "POST")
                return 200, self._envelope(
                    await self._off_loop(self._handle_ingest, body)
                )
            if path == "/queries":
                if method == "GET":
                    return 200, self._envelope(self._handle_queries_list())
                self._require_method(method, "POST")
                return 200, self._envelope(
                    await self._off_loop(self._handle_queries, body)
                )
            if path == "/watch":
                self._require_method(method, "GET")
                return 200, self._envelope(await self._handle_watch(query))
            if path == "/admin/model":
                if method == "GET":
                    return 200, self._envelope(
                        await self._off_loop(self._handle_model_info)
                    )
                self._require_method(method, "POST")
                return 200, self._envelope(await self._handle_admin_model(body))
            return 404, {
                "error": {
                    "type": "NotFound",
                    "message": f"unknown endpoint {path!r}; known: "
                               "/v1/link /v1/assign /v1/ingest /v1/queries "
                               "/v1/watch /v1/healthz /v1/metrics "
                               "/v1/admin/model",
                    "status": 404,
                }
            }
        except _MethodNotAllowed as exc:
            return 405, {
                "error": {
                    "type": "MethodNotAllowed",
                    "message": str(exc),
                    "status": 405,
                }
            }
        except Exception as exc:  # noqa: BLE001 - mapped, never leaked
            return protocol.error_payload(exc)

    # ------------------------------------------------------------------
    # Endpoint payloads
    # ------------------------------------------------------------------
    async def _off_loop(self, fn, *args):
        """Run a handler off the event loop when it may block.

        Sharded health/metrics/ingest block on shard-socket round
        trips, and a streaming daemon's ingest flush runs the whole
        incremental pipeline (delta block write + standing-query
        re-scoring) under the engine lock; both go to the executor.
        Otherwise handlers are pure in-memory work and run inline.
        """
        if self._supervisor is None and self._state.stream is None:
            return fn(*args)
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )

    def _envelope(
        self,
        data: dict,
        shards: tuple[protocol.ShardInfo, ...] | None = None,
    ) -> dict:
        return protocol.ResponseEnvelope(
            data=data,
            shard_count=(
                self._supervisor.n_shards if self._supervisor is not None else 1
            ),
            shards=shards,
        ).to_wire()

    def _session_count(self) -> int:
        if self._supervisor is not None:
            return len(self._supervisor.sessions)
        return len(self._state.sessions)

    def _handle_health(self) -> dict:
        data = self._state.health()
        if self._supervisor is not None:
            data["sessions"] = self._session_count()
            data["workers"] = self._supervisor.worker_status()
        if self._state.stream is not None:
            data["standing_queries"] = len(self._state.stream.registry)
            data["index_delta_blocks"] = self._state.stream.n_delta_blocks()
        return data

    # ------------------------------------------------------------------
    # Model lifecycle (/v1/admin/model; see docs/models.md)
    # ------------------------------------------------------------------
    def _handle_model_info(self) -> dict:
        """GET /v1/admin/model: the serving model + the store registry."""
        data: dict = {
            "serving_artifact": self._state.model_artifact_id,
            "n_buckets": self._state.engine.config.n_buckets,
            "config": self._state.engine.config.to_dict(),
            "swaps": self._state.metrics.counter("model_swaps_total"),
        }
        if self._state.store is not None:
            from repro.store import open_store

            # Re-read the manifest from disk: `ftl model fit/activate`
            # in another process may have registered artifacts since
            # this daemon opened its handle.
            store = open_store(self._state.store.path)
            data["store_active_model"] = store.active_model_id
            data["artifacts"] = [
                {"id": info.artifact_id, "created_at": info.created_at}
                for info in store.list_models()
            ]
        return data

    def _load_swap_artifact(self, artifact_id: str | None):
        from repro.store import open_store

        store = open_store(self._state.store.path)
        return store.load_model(artifact_id)

    async def _handle_admin_model(self, body: bytes) -> dict:
        """POST /v1/admin/model: hot-swap the serving model pair.

        Loads the named (or active) artifact from the store, then
        swaps atomically: the micro-batcher drains — every already
        submitted request finishes under the old engine; submissions
        arriving inside the swap window get a 503 with ``Retry-After``
        rather than a half-swapped fleet — the coordinator adopts the
        new engine under the engine lock, the stream runtime and every
        shard worker are rebound, and the batcher restarts.  Sharded
        responses stay bit-identical because workers rebuild their
        engines from the same canonical count tables + config snapshot
        the coordinator serves (see ``swap_model`` in
        :mod:`repro.service.shard`).
        """
        wire = protocol.admin_model_from_wire(
            protocol.parse_json_body(body, self._config.max_body_bytes)
        )
        if self._state.store is None:
            raise StateError(
                "model hot-swap needs a store-backed daemon; "
                "start with `ftl serve --store <dir>`"
            )
        loop = asyncio.get_running_loop()
        artifact = await loop.run_in_executor(
            None, self._load_swap_artifact, wire.artifact_id
        )
        previous = self._state.model_artifact_id
        if artifact.artifact_id == previous:
            return {
                "swapped": False,
                "artifact": artifact.artifact_id,
                "previous": previous,
            }
        engine = LinkEngine(
            artifact.rejection, artifact.acceptance, options=self._state.options
        )
        self._state.metrics.inc("model_swap_requests_total")
        await self._batcher.stop()
        try:
            await loop.run_in_executor(
                None, self._swap_engine_everywhere, engine, artifact
            )
        finally:
            await self._batcher.start()
        return {
            "swapped": True,
            "artifact": artifact.artifact_id,
            "previous": previous,
            "provenance": artifact.provenance.to_dict(),
        }

    def _swap_engine_everywhere(self, engine: LinkEngine, artifact) -> None:
        """Adopt ``engine`` on the coordinator, stream and all shards.

        Runs off-loop with the batcher drained.  Coordinator first:
        a worker that crashes mid-broadcast respawns from the already
        swapped ``state.engine`` (the supervisor reads it at fork), so
        the fleet converges on the new model either way.
        """
        with self._engine_lock:
            self._state.adopt_engine(engine, artifact.artifact_id)
            if self._state.stream is not None:
                self._state.stream.swap_engine(engine)
            if self._supervisor is not None:
                self._supervisor.broadcast_model(
                    artifact.rejection.to_dict(),
                    artifact.acceptance.to_dict(),
                    artifact.artifact_id,
                )

    def _drift_gauge(self, evidence: dict) -> list:
        """``ftl_model_drift{model=...}`` series against the live engine."""
        engine = self._state.engine
        return [
            (
                {"model": "rejection"},
                obs.drift_against(engine.rejection_model.prob_table, evidence),
            ),
            (
                {"model": "acceptance"},
                obs.drift_against(engine.acceptance_model.prob_table, evidence),
            ),
        ]

    def _handle_metrics(self, query: str) -> dict | str:
        """Prometheus exposition by default; ``?format=json`` for the
        JSON registry dump."""
        fmt = _query_param(query, "format")
        if fmt == "json":
            payload = self._state.metrics.to_dict()
            payload["queue_depth"] = self._batcher.queue_depth
            payload["sessions"] = self._session_count()
            if self._state.stream is not None:
                payload["standing_queries"] = len(self._state.stream.registry)
                payload["index_delta_blocks"] = (
                    self._state.stream.n_delta_blocks()
                )
            return payload
        if fmt not in (None, "prometheus", "text"):
            raise ValidationError(
                f"unknown metrics format {fmt!r}; use 'prometheus' or 'json'"
            )
        if self._supervisor is not None:
            return self._render_sharded_metrics()
        gauges = {
            "queue_depth": self._batcher.queue_depth,
            "sessions": len(self._state.sessions),
            "pool_size": len(self._state.pool),
            "model_drift": self._drift_gauge(self._state.evidence.snapshot()),
        }
        if self._state.stream is not None:
            gauges.update(self._state.stream.gauges())
        return self._state.metrics.to_prometheus(gauges=gauges)

    def _render_sharded_metrics(self) -> str:
        """One exposition document aggregated across the worker fleet.

        Histogram families carry an **unlabelled aggregate** series —
        coordinator + all workers merged on raw bucket counts via
        :func:`repro.obs.merge_histogram_snapshots` (merging cumulative
        buckets would double-count; ``validate_exposition`` guards the
        invariant) — plus one ``{shard="i"}`` series per worker.
        Worker counters appear *only* shard-labelled so a scrape's
        ``sum()`` over the coordinator's unlabelled series is never
        double-counted.
        """
        counters, histograms = self._state.metrics.snapshots()
        worker_payloads = self._supervisor.metrics_payloads()
        counter_families: dict[str, list] = {
            name: [({}, value)] for name, value in counters.items()
        }
        for shard_id, payload in sorted(worker_payloads.items()):
            for name, value in payload["counters"].items():
                counter_families.setdefault(name, []).append(
                    ({"shard": str(shard_id)}, value)
                )
        all_snaps: dict[str, list] = {
            name: [snap] for name, snap in histograms.items()
        }
        shard_series: dict[str, list] = {}
        for shard_id, payload in sorted(worker_payloads.items()):
            for name, snap in payload["histograms"].items():
                all_snaps.setdefault(name, []).append(snap)
                shard_series.setdefault(name, []).append(
                    ({"shard": str(shard_id)}, snap)
                )
        histogram_families = {
            name: [({}, obs.merge_histogram_snapshots(snaps))]
            + shard_series.get(name, [])
            for name, snaps in all_snaps.items()
        }
        # Fleet-wide drift: the engine runs inside the workers, so the
        # coordinator's own tallies (local-candidate requests) merge
        # with every worker's shipped evidence snapshot.
        evidence = obs.merge_evidence(
            [self._state.evidence.snapshot()]
            + [
                payload["evidence"]
                for payload in worker_payloads.values()
                if "evidence" in payload
            ]
        )
        gauges = {
            "queue_depth": self._batcher.queue_depth,
            "sessions": self._session_count(),
            "pool_size": len(self._state.pool),
            "model_drift": self._drift_gauge(evidence),
            "shard_count": self._supervisor.n_shards,
            "shard_plan_stale": 1.0 if self._supervisor.plan_drift() else 0.0,
            "worker_up": [
                ({"shard": str(shard_id)}, 1.0 if shard_id in worker_payloads else 0.0)
                for shard_id in range(self._supervisor.n_shards)
            ],
        }
        if self._state.stream is not None:
            gauges.update(self._state.stream.gauges())
        return obs.render_exposition(counter_families, histogram_families, gauges)

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise _MethodNotAllowed(
                f"method {method} is not allowed here; use {expected}"
            )

    async def _handle_link(self, body: bytes) -> dict:
        wire = protocol.link_request_from_wire(
            protocol.parse_json_body(body, self._config.max_body_bytes),
            self._state.options,
        )
        request = LinkRequest(
            query=wire.query, candidates=wire.candidates, options=wire.options
        )
        timeout_ms = (
            wire.timeout_ms
            if wire.timeout_ms is not None
            else self._config.default_timeout_ms
        )
        self._state.metrics.inc("link_requests_total")
        result, shards = await self._batcher.submit(
            request, timeout_ms=timeout_ms
        )
        return self._envelope(protocol.result_to_wire(result), shards=shards)

    async def _handle_assign(self, body: bytes) -> dict:
        wire = protocol.assign_request_from_wire(
            protocol.parse_json_body(body, self._config.max_body_bytes),
            self._state.options,
        )
        self._state.metrics.inc("assign_requests_total")
        # Scoring a |Q| x |pool| batch is the heaviest request the
        # daemon serves; it runs on the batch executor (where the span
        # sink is bound, so edge_scoring/component_split/solve land in
        # the stage histograms) rather than inline on the loop.
        data, shards = await asyncio.get_running_loop().run_in_executor(
            self._executor, self._assign_compute, wire
        )
        return self._envelope(data, shards=shards)

    def _assign_compute(
        self, wire: protocol.AssignWireRequest
    ) -> tuple[dict, tuple[protocol.ShardInfo, ...]]:
        """Score the edge set, then solve the global matching.

        Scatter-gather aware: under ``--workers N`` each shard scores
        its home-cell slice of the pool and ``merge_partials`` restores
        the exact single-process ranking per query (property-tested in
        ``tests/test_shard.py``), so the coordinator's solve sees the
        same edges — and returns the same matching — as an unsharded
        daemon over the same pool.
        """
        from repro.assign import graph_from_link_results, solve

        requests = [
            LinkRequest(query=q, options=wire.options) for q in wire.queries
        ]
        pool_ids = [t.traj_id for t in self._state.pool]
        started = self._clock()
        if self._supervisor is not None:
            with obs.span("edge_scoring"):
                scattered = self._supervisor.link_requests(requests)
            results = [result for result, _ in scattered]
            shards = self._aggregate_shards(
                info for _, infos in scattered for info in infos
            )
        else:
            with self._engine_lock:
                with obs.span("edge_scoring"):
                    results = self._state.engine.link_requests(
                        requests, default_pool=self._state.pool
                    )
            elapsed_ms = round((self._clock() - started) * 1e3, 3)
            shards = (
                protocol.ShardInfo(
                    shard=0,
                    pid=os.getpid(),
                    n_candidates=len(pool_ids) * len(requests),
                    n_matched=sum(len(r.candidates) for r in results),
                    elapsed_ms=elapsed_ms,
                ),
            )
        graph = graph_from_link_results(
            results,
            [q.traj_id for q in wire.queries],
            pool_ids,
            wire.min_score,
            len(pool_ids) * len(requests),
        )
        assignment = solve(graph, backend=wire.solver)
        data = assignment.to_dict()
        data["unassigned"] = assignment.unassigned(graph.query_ids)
        data["density"] = graph.density
        return data, shards

    @staticmethod
    def _aggregate_shards(
        infos,
    ) -> tuple[protocol.ShardInfo, ...]:
        """Per-shard totals across an assign request's scattered batches."""
        agg: dict[int, dict] = {}
        for info in infos:
            cur = agg.setdefault(
                info.shard,
                {
                    "pid": info.pid,
                    "n_candidates": 0,
                    "n_matched": 0,
                    "elapsed_ms": 0.0,
                },
            )
            cur["n_candidates"] += info.n_candidates
            cur["n_matched"] += info.n_matched
            cur["elapsed_ms"] = max(cur["elapsed_ms"], info.elapsed_ms)
        return tuple(
            protocol.ShardInfo(shard=shard, **agg[shard])
            for shard in sorted(agg)
        )

    def _handle_ingest(self, body: bytes) -> dict:
        wire = protocol.ingest_request_from_wire(
            protocol.parse_json_body(body, self._config.max_body_bytes)
        )
        if self._supervisor is not None:
            return self._supervisor.ingest(wire)
        entry = self._state.ingest(
            wire.session,
            wire.query_records,
            wire.candidate_records,
            expire_before=wire.expire_before,
        )
        response = {
            "session": entry.session_id,
            "n_candidates": entry.linker.n_candidates,
            "n_query_records": entry.linker.n_query_records,
            "n_records_ingested": entry.n_records,
        }
        if wire.flush:
            response["flushed_records"] = self._state.flush_session(
                wire.session
            )
        if wire.decide:
            response["decisions"] = [
                {
                    "candidate_id": d.candidate_id,
                    "same_person": d.same_person,
                    "log_posterior_ratio": d.log_posterior_ratio,
                    "n_mutual": d.n_mutual,
                    "n_incompatible": d.n_incompatible,
                }
                for d in entry.linker.decisions()
            ]
        return response

    # ------------------------------------------------------------------
    # Standing queries (/queries + /watch; see docs/streaming.md)
    # ------------------------------------------------------------------
    def _require_stream(self) -> StreamRuntime:
        stream = self._state.stream
        if stream is None:
            raise StateError(
                "standing queries need a store-backed daemon; "
                "start with `ftl serve --store <dir>`"
            )
        return stream

    def _handle_queries(self, body: bytes) -> dict:
        wire = protocol.standing_query_from_wire(
            protocol.parse_json_body(body, self._config.max_body_bytes),
            self._state.options,
        )
        stream = self._require_stream()
        if wire.unregister is not None:
            removed = stream.unregister_query(wire.unregister)
            return {"unregistered": wire.unregister, "removed": removed}
        return stream.register_query(
            wire.query, query_id=wire.query_id, options=wire.options
        )

    def _handle_queries_list(self) -> dict:
        stream = self._require_stream()
        return {"queries": stream.registry.summaries()}

    async def _handle_watch(self, query: str) -> dict:
        """One ``/v1/watch`` long-poll round.

        The wait blocks on the registry's condition variable, so it
        runs in the dedicated watch executor — a long-poll must never
        park the event loop, and must not occupy the shared default
        executor that serves ingest/flush handlers and the sweeper.
        """
        stream = self._require_stream()
        query_id = _query_param(query, "query")
        if not query_id:
            raise ValidationError(
                "watch needs a ?query=<standing query id> parameter"
            )
        raw_since = _query_param(query, "since") or "0"
        try:
            since = int(raw_since)
        except ValueError:
            raise ValidationError(
                f"since must be an integer sequence number, got {raw_since!r}"
            ) from None
        raw_wait = _query_param(query, "wait_ms")
        if raw_wait is None:
            wait_ms = 0.0
        else:
            try:
                wait_ms = float(raw_wait)
            except ValueError:
                raise ValidationError(
                    f"wait_ms must be a number, got {raw_wait!r}"
                ) from None
            if wait_ms < 0:
                raise ValidationError(f"wait_ms must be >= 0, got {wait_ms}")
        wait_ms = min(wait_ms, self._config.watch_max_wait_ms)
        return await asyncio.get_running_loop().run_in_executor(
            self._watch_executor,
            functools.partial(
                stream.registry.wait_events,
                query_id,
                since=since,
                timeout_s=wait_ms / 1e3,
            ),
        )


class _MethodNotAllowed(Exception):
    """Internal routing signal; rendered as a structured 405."""


class BackgroundServer:
    """Run a :class:`LinkServer` on a dedicated thread and event loop.

    The blocking harness used by tests, examples and the load
    benchmark::

        with BackgroundServer(engine, pool, config=ServerConfig(port=0)) as bg:
            client = ServiceClient(*bg.address)
            ...

    ``port=0`` binds an ephemeral port; :attr:`address` reports the
    real one once :meth:`start` returns.
    """

    def __init__(
        self,
        engine: LinkEngine,
        pool,
        options: LinkOptions | None = None,
        config: ServerConfig = ServerConfig(),
        clock=time.monotonic,
        store=None,
        provenance: dict | None = None,
        model_artifact_id: str | None = None,
    ) -> None:
        self._args = (
            engine, pool, options, config, clock, store, provenance,
            model_artifact_id,
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._address: tuple[str, int] | None = None
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: LinkServer | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise ValidationError("server is not started")
        return self._address

    @property
    def server(self) -> LinkServer:
        if self._server is None:
            raise ValidationError("server is not started")
        return self._server

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise ValidationError("server already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="ftl-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        (engine, pool, options, config, clock, store, provenance,
         model_artifact_id) = self._args
        server = LinkServer(engine, pool, options=options, config=config,
                            clock=clock, store=store, provenance=provenance,
                            model_artifact_id=model_artifact_id)
        await server.start()
        self._server = server
        self._loop = asyncio.get_running_loop()
        self._address = server.address
        self._ready.set()
        await server.serve_until_shutdown()
