"""Wire protocol of the linking daemon: JSON schemas and error mapping.

Everything here is pure (bytes/dicts in, dataclasses/dicts out) so the
protocol is testable without opening a socket.  The daemon speaks JSON
over HTTP/1.1; the schemas are documented in ``docs/service.md``.

Design rules:

* every request failure maps to a *structured* error body
  ``{"error": {"type", "message", "status"}}`` via :func:`error_payload`
  — a traceback is never put on the wire;
* the error type names come from :mod:`repro.errors`, so a client can
  switch on them without parsing messages;
* floats survive the round trip bit-exactly: ``json`` emits
  ``repr``-shortest forms, which parse back to the identical float64,
  so a ``/link`` response equals the in-process
  :meth:`~repro.core.engine.LinkEngine.link_batch` result bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.engine import Candidate, LinkOptions, LinkResult
from repro.core.trajectory import Trajectory
from repro.errors import (
    DeadlineExceededError,
    FTLError,
    NotFittedError,
    PayloadTooLargeError,
    ProtocolError,
    ServiceOverloadedError,
    StateError,
    ValidationError,
)

#: Default cap on request body size (bytes); larger bodies get HTTP 413.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: The current wire API version; endpoints live under ``/v1/...``.
API_VERSION = "v1"

#: Endpoint suffixes served under ``/v1/`` (bare legacy paths are
#: deprecated aliases; see ``docs/api-v1.md``).  ``/v1/admin/model`` is
#: deliberately absent: the admin surface is new and has no legacy
#: alias to deprecate.
V1_ENDPOINTS = (
    "link", "assign", "ingest", "queries", "watch", "healthz", "metrics"
)

#: ``LinkOptions`` fields settable over the wire.  ``prefilter`` is
#: deliberately absent: it is a live object, not a serialisable value.
WIRE_OPTION_KEYS = ("method", "alpha1", "alpha2", "phi_r", "top_k")


# ----------------------------------------------------------------------
# Body parsing
# ----------------------------------------------------------------------
def parse_json_body(raw: bytes, max_bytes: int = DEFAULT_MAX_BODY_BYTES):
    """Decode a request body, mapping every failure to a protocol error."""
    if len(raw) > max_bytes:
        raise PayloadTooLargeError(
            f"request body of {len(raw)} bytes exceeds the {max_bytes} byte limit"
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"request body is not valid UTF-8: {exc}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from None


def _require_object(obj, what: str) -> dict:
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# Trajectories
# ----------------------------------------------------------------------
def trajectory_to_wire(trajectory: Trajectory) -> dict:
    """``{"traj_id": ..., "records": [[t, x, y], ...]}``."""
    return {
        "traj_id": trajectory.traj_id,
        "records": [
            [float(t), float(x), float(y)]
            for t, x, y in zip(trajectory.ts, trajectory.xs, trajectory.ys)
        ],
    }


def records_from_wire(obj, what: str = "records") -> list[list[float]]:
    """Validate a ``[[t, x, y], ...]`` array (shared by /link and /ingest)."""
    if not isinstance(obj, list):
        raise ProtocolError(f"{what} must be an array of [t, x, y] triples")
    for i, item in enumerate(obj):
        if (
            not isinstance(item, list)
            or len(item) != 3
            or not all(isinstance(v, (int, float)) for v in item)
        ):
            raise ProtocolError(
                f"{what}[{i}] must be a numeric [t, x, y] triple, got {item!r}"
            )
    return obj


def trajectory_from_wire(obj, what: str = "trajectory") -> Trajectory:
    """Parse and validate one wire trajectory."""
    body = _require_object(obj, what)
    unknown = set(body) - {"traj_id", "records"}
    if unknown:
        raise ProtocolError(f"{what} has unknown keys: {sorted(unknown)}")
    records = records_from_wire(body.get("records"), f"{what}.records")
    ts = [r[0] for r in records]
    xs = [r[1] for r in records]
    ys = [r[2] for r in records]
    try:
        return Trajectory(ts, xs, ys, body.get("traj_id"), sort=True)
    except ValidationError as exc:
        raise ProtocolError(f"invalid {what}: {exc}") from None


# ----------------------------------------------------------------------
# Options
# ----------------------------------------------------------------------
def options_from_wire(obj, base: LinkOptions) -> LinkOptions:
    """Apply a wire ``options`` object on top of the server defaults.

    Unknown keys are rejected (the caller is probably misspelling a
    knob, and a silently ignored knob is worse than an error); known
    keys are validated by ``LinkOptions`` itself, so an unknown
    ``method`` or out-of-range alpha surfaces as a 400.
    """
    body = _require_object(obj, "options")
    unknown = set(body) - set(WIRE_OPTION_KEYS)
    if unknown:
        raise ProtocolError(
            f"options has unknown keys: {sorted(unknown)}; "
            f"settable: {list(WIRE_OPTION_KEYS)}"
        )
    if not body:
        return base
    if "method" in body and not isinstance(body["method"], str):
        raise ProtocolError(f"options.method must be a string, got {body['method']!r}")
    for key in ("alpha1", "alpha2", "phi_r"):
        if key in body and not isinstance(body[key], (int, float)):
            raise ProtocolError(
                f"options.{key} must be a number, got {body[key]!r}"
            )
    top_k = body.get("top_k")
    if top_k is not None and not isinstance(top_k, int):
        raise ProtocolError(f"options.top_k must be an integer, got {top_k!r}")
    return base.with_updates(**body)


# ----------------------------------------------------------------------
# /link
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkWireRequest:
    """A parsed ``/link`` request body."""

    query: Trajectory
    candidates: tuple[Trajectory, ...] | None
    options: LinkOptions
    timeout_ms: float | None


def link_request_from_wire(obj, base_options: LinkOptions) -> LinkWireRequest:
    """Parse and validate one ``/link`` body.

    Schema::

        {"query": {"traj_id": ..., "records": [[t, x, y], ...]},
         "candidates": [<trajectory>, ...],   # optional; default: pool
         "options": {"method": ..., ...},     # optional
         "timeout_ms": 250}                   # optional deadline
    """
    body = _require_object(obj, "request")
    unknown = set(body) - {"query", "candidates", "options", "timeout_ms"}
    if unknown:
        raise ProtocolError(f"request has unknown keys: {sorted(unknown)}")
    if "query" not in body:
        raise ProtocolError("request is missing the required 'query' field")
    query = trajectory_from_wire(body["query"], "query")
    candidates = None
    if body.get("candidates") is not None:
        raw = body["candidates"]
        if not isinstance(raw, list):
            raise ProtocolError("candidates must be an array of trajectories")
        candidates = tuple(
            trajectory_from_wire(c, f"candidates[{i}]") for i, c in enumerate(raw)
        )
    options = (
        options_from_wire(body["options"], base_options)
        if body.get("options") is not None
        else base_options
    )
    timeout_ms = body.get("timeout_ms")
    if timeout_ms is not None:
        if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
            raise ProtocolError(
                f"timeout_ms must be a positive number, got {timeout_ms!r}"
            )
        timeout_ms = float(timeout_ms)
    return LinkWireRequest(
        query=query, candidates=candidates, options=options, timeout_ms=timeout_ms
    )


def result_to_wire(result: LinkResult) -> dict:
    """Serialise a :class:`LinkResult` (exactly its ``to_dict`` shape)."""
    return result.to_dict()


def result_from_wire(obj) -> LinkResult:
    """Rebuild a :class:`LinkResult` from its wire form (client side)."""
    body = _require_object(obj, "result")
    try:
        candidates = tuple(
            Candidate(
                candidate_id=c["candidate_id"],
                score=float(c["score"]),
                p_rejection=float(c["p_rejection"]),
                p_acceptance=float(c["p_acceptance"]),
                n_mutual=int(c["n_mutual"]),
                n_incompatible=int(c["n_incompatible"]),
            )
            for c in body["candidates"]
        )
        return LinkResult(
            query_id=body["query_id"],
            method=body["method"],
            candidates=candidates,
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed link result on the wire: {exc}") from None


# ----------------------------------------------------------------------
# /assign
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AssignWireRequest:
    """A parsed ``/assign`` request body."""

    queries: tuple[Trajectory, ...]
    options: LinkOptions
    min_score: float
    solver: str


def assign_request_from_wire(obj, base_options: LinkOptions) -> AssignWireRequest:
    """Parse and validate one ``/assign`` body.

    Schema::

        {"queries": [<trajectory>, ...],     # required, non-empty
         "options": {"method": ..., ...},    # optional; default scores
                                             #   every pair (see below)
         "min_score": 1e-6,                  # optional edge threshold
         "solver": "auto"}                   # optional assign backend

    When ``options`` is absent the daemon scores with the subsystem's
    permissive score-all semantics
    (:data:`repro.assign.graph.PERMISSIVE_LINK_OPTIONS`) so the solver
    sees every positive-score edge; an explicit ``options`` object is
    applied on top of the server defaults, exactly like ``/link``
    (``top_k`` is forced off either way — a truncated ranking would
    silently drop edges).
    """
    from repro.assign.graph import PERMISSIVE_LINK_OPTIONS
    from repro.assign.solver import BACKENDS

    body = _require_object(obj, "request")
    unknown = set(body) - {"queries", "options", "min_score", "solver"}
    if unknown:
        raise ProtocolError(f"request has unknown keys: {sorted(unknown)}")
    raw = body.get("queries")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "request needs a non-empty 'queries' array of trajectories"
        )
    queries = tuple(
        trajectory_from_wire(q, f"queries[{i}]") for i, q in enumerate(raw)
    )
    ids = [q.traj_id for q in queries]
    if any(i is None for i in ids):
        raise ProtocolError(
            "every assign query needs a traj_id (it keys the matching)"
        )
    if len(set(ids)) != len(ids):
        raise ProtocolError("assign queries have duplicate traj_ids")
    options = (
        options_from_wire(body["options"], base_options)
        if body.get("options") is not None
        else PERMISSIVE_LINK_OPTIONS
    )
    if options.top_k is not None:
        options = options.with_updates(top_k=None)
    min_score = body.get("min_score", 1e-6)
    if not isinstance(min_score, (int, float)) or min_score < 0:
        raise ProtocolError(
            f"min_score must be a number >= 0, got {min_score!r}"
        )
    solver = body.get("solver", "auto")
    if not isinstance(solver, str) or solver not in BACKENDS:
        raise ProtocolError(
            f"solver must be one of {list(BACKENDS)}, got {solver!r}"
        )
    return AssignWireRequest(
        queries=queries,
        options=options,
        min_score=float(min_score),
        solver=solver,
    )


# ----------------------------------------------------------------------
# /ingest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestWireRequest:
    """A parsed ``/ingest`` request body."""

    session: str
    query_records: list[list[float]]
    candidate_records: dict[str, list[list[float]]]
    expire_before: float | None
    decide: bool
    flush: bool


def ingest_request_from_wire(obj) -> IngestWireRequest:
    """Parse and validate one ``/ingest`` body.

    Schema::

        {"session": "case-42",
         "query": [[t, x, y], ...],                  # optional
         "candidates": {"cand-1": [[t, x, y], ...]}, # optional
         "expire_before": 1700000000.0,              # optional
         "decide": true,                             # optional (default)
         "flush": false}                             # optional: persist the
                                                     # session to the store
    """
    body = _require_object(obj, "request")
    unknown = set(body) - {
        "session", "query", "candidates", "expire_before", "decide", "flush"
    }
    if unknown:
        raise ProtocolError(f"request has unknown keys: {sorted(unknown)}")
    session = body.get("session")
    if not isinstance(session, str) or not session:
        raise ProtocolError("request needs a non-empty string 'session' id")
    query_records = records_from_wire(body.get("query", []), "query")
    raw_candidates = body.get("candidates", {})
    if not isinstance(raw_candidates, dict):
        raise ProtocolError("candidates must map candidate id -> record array")
    candidate_records = {
        cid: records_from_wire(recs, f"candidates[{cid!r}]")
        for cid, recs in raw_candidates.items()
    }
    expire_before = body.get("expire_before")
    if expire_before is not None and not isinstance(expire_before, (int, float)):
        raise ProtocolError(
            f"expire_before must be a number, got {expire_before!r}"
        )
    decide = body.get("decide", True)
    if not isinstance(decide, bool):
        raise ProtocolError(f"decide must be a boolean, got {decide!r}")
    flush = body.get("flush", False)
    if not isinstance(flush, bool):
        raise ProtocolError(f"flush must be a boolean, got {flush!r}")
    return IngestWireRequest(
        session=session,
        query_records=query_records,
        candidate_records=candidate_records,
        expire_before=None if expire_before is None else float(expire_before),
        decide=decide,
        flush=flush,
    )


# ----------------------------------------------------------------------
# /admin/model (model lifecycle; see docs/models.md)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdminModelWireRequest:
    """A parsed ``POST /v1/admin/model`` body."""

    artifact_id: str | None


def admin_model_from_wire(obj) -> AdminModelWireRequest:
    """Parse and validate one ``/admin/model`` swap body.

    Schema::

        {"artifact_id": "m-1a2b3c4d5e6f7a8b"}   # optional; default: the
                                                # store's active artifact

    An empty object requests a swap to whatever artifact the store's
    manifest currently marks active (the ``ftl model activate`` +
    ``POST {}`` two-step).
    """
    body = _require_object(obj, "request")
    unknown = set(body) - {"artifact_id"}
    if unknown:
        raise ProtocolError(f"request has unknown keys: {sorted(unknown)}")
    artifact_id = body.get("artifact_id")
    if artifact_id is not None and (
        not isinstance(artifact_id, str) or not artifact_id
    ):
        raise ProtocolError(
            f"artifact_id must be a non-empty string, got {artifact_id!r}"
        )
    return AdminModelWireRequest(artifact_id=artifact_id)


# ----------------------------------------------------------------------
# /queries (standing queries; see docs/streaming.md)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StandingQueryWireRequest:
    """A parsed ``/queries`` request body.

    Exactly one of ``query`` (register/replace) or ``unregister`` is
    set; the parser rejects bodies carrying both.
    """

    query: Trajectory | None
    query_id: str | None
    options: LinkOptions
    unregister: str | None


def standing_query_from_wire(
    obj, base_options: LinkOptions
) -> StandingQueryWireRequest:
    """Parse and validate one ``/queries`` body.

    Schema::

        {"query": {"traj_id": ..., "records": [[t, x, y], ...]},
         "query_id": "watch-42",              # optional; default traj_id
         "options": {"top_k": 5, ...}}        # optional

    or, to remove a standing query::

        {"unregister": "watch-42"}
    """
    body = _require_object(obj, "request")
    unknown = set(body) - {"query", "query_id", "options", "unregister"}
    if unknown:
        raise ProtocolError(f"request has unknown keys: {sorted(unknown)}")
    unregister = body.get("unregister")
    if unregister is not None:
        if not isinstance(unregister, str) or not unregister:
            raise ProtocolError(
                "unregister must be a non-empty standing-query id string"
            )
        if "query" in body or "query_id" in body or "options" in body:
            raise ProtocolError(
                "request cannot both register and unregister a standing query"
            )
        return StandingQueryWireRequest(
            query=None, query_id=None, options=base_options,
            unregister=unregister,
        )
    if "query" not in body:
        raise ProtocolError(
            "request needs 'query' (register) or 'unregister' (remove)"
        )
    query = trajectory_from_wire(body["query"], "query")
    query_id = body.get("query_id")
    if query_id is not None and (not isinstance(query_id, str) or not query_id):
        raise ProtocolError(
            f"query_id must be a non-empty string, got {query_id!r}"
        )
    options = (
        options_from_wire(body["options"], base_options)
        if body.get("options") is not None
        else base_options
    )
    return StandingQueryWireRequest(
        query=query, query_id=query_id, options=options, unregister=None
    )


# ----------------------------------------------------------------------
# v1 response envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardInfo:
    """Per-shard execution provenance attached to a ``/v1/link`` response.

    ``shard`` is the shard index (``-1`` when the request carried its
    own candidates and executed on the coordinator), ``pid`` the
    process that did the work, ``n_candidates`` the size of the pool
    slice the shard scanned, ``n_matched`` how many entries its partial
    ranking contributed, and ``elapsed_ms`` the shard-local link time.
    """

    shard: int
    pid: int
    n_candidates: int
    n_matched: int
    elapsed_ms: float

    def to_wire(self) -> dict:
        return {
            "shard": self.shard,
            "pid": self.pid,
            "n_candidates": self.n_candidates,
            "n_matched": self.n_matched,
            "elapsed_ms": self.elapsed_ms,
        }


@dataclass(frozen=True)
class ResponseEnvelope:
    """The structured body every v1 JSON endpoint answers with.

    Wire shape::

        {"api_version": "v1",
         "shard_count": 2,
         "shards": [{"shard": 0, "pid": ..., ...}, ...],  # /v1/link only
         "data": {...},            # the endpoint's payload
         "trace_id": "..."}        # stamped by the dispatcher

    Legacy bare paths return the *identical* body (plus a
    ``Deprecation`` response header) so migrating is a path change, not
    a parse change.  Error responses are **not** enveloped: they keep
    the bare ``{"error": {...}}`` shape of :func:`error_payload` on
    both path families.
    """

    data: dict
    shard_count: int
    shards: tuple[ShardInfo, ...] | None = None
    api_version: str = field(default=API_VERSION)

    def to_wire(self) -> dict:
        body = {
            "api_version": self.api_version,
            "shard_count": self.shard_count,
            "data": self.data,
        }
        if self.shards is not None:
            body["shards"] = [s.to_wire() for s in self.shards]
        return body


def envelope_data(body: dict) -> dict:
    """Unwrap a v1 envelope body (client side), validating its shape."""
    wrapped = _require_object(body, "response")
    if "data" not in wrapped:
        raise ProtocolError(
            "response is not a v1 envelope (missing 'data'); "
            f"keys: {sorted(wrapped)}"
        )
    return _require_object(wrapped["data"], "response.data")


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def status_for(exc: BaseException) -> int:
    """The HTTP status an exception maps to.

    The mapping walks the :mod:`repro.errors` hierarchy most-specific
    first; anything unrecognised is an internal error.
    """
    if isinstance(exc, PayloadTooLargeError):
        return 413
    if isinstance(exc, ServiceOverloadedError):
        return 503
    if isinstance(exc, DeadlineExceededError):
        return 504
    if isinstance(exc, (ProtocolError, ValidationError)):
        return 400
    if isinstance(exc, (NotFittedError, StateError)):
        return 409
    return 500


def error_payload(exc: BaseException) -> tuple[int, dict]:
    """``(status, body)`` for an exception; never leaks a traceback.

    Library errors (:class:`~repro.errors.FTLError` subclasses) expose
    their type name and message — they are user-input diagnoses.  Any
    other exception is an internal bug: the body says only
    ``InternalError`` so implementation details stay out of responses.
    """
    status = status_for(exc)
    if isinstance(exc, FTLError) and status != 500:
        kind, message = type(exc).__name__, str(exc)
    else:
        kind, message = "InternalError", "internal server error"
    return status, {"error": {"type": kind, "message": message, "status": status}}
