"""Shared daemon state: engine, pool, ingest sessions, metrics.

Everything the request handlers touch lives here, behind plain method
calls with an injectable clock, so the state machine (session creation,
idle-TTL garbage collection, counter accounting) is unit-testable
without an event loop.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field

from repro.core.engine import LinkEngine, LinkOptions
from repro.core.records import Record
from repro.core.streaming import StreamingLinker
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.obs import BucketEvidence, STAGES, render_exposition
from repro.obs.spans import STAGE_METRIC_PREFIX

#: Idle seconds after which an ingest session is garbage-collected.
DEFAULT_SESSION_TTL_S = 900.0

#: Histogram bucket upper bounds in seconds (log-spaced, sub-ms to 10 s).
_LATENCY_BOUNDS_S = tuple(
    round(0.0001 * (10 ** (i / 4)), 7) for i in range(21)
)  # 0.1 ms ... 10 s


class Histogram:
    """A fixed-bucket latency histogram with percentile estimates.

    Cumulative-bucket percentile estimation (the Prometheus approach):
    cheap to update, bounded memory, and accurate to within one bucket
    width — plenty for p50/p99 served from ``/metrics``.
    """

    def __init__(self, bounds_s: tuple[float, ...] = _LATENCY_BOUNDS_S) -> None:
        self._bounds = bounds_s
        self._counts = [0] * (len(bounds_s) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        idx = bisect.bisect_left(self._bounds, seconds)
        self._counts[idx] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (seconds)."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        rank = q * self._count
        if rank <= 0:
            # q == 0 (or an empty histogram): the infimum of observed
            # values, by convention 0, never the first bucket's bound —
            # rank 0 would otherwise satisfy ``seen >= rank`` before any
            # count has been seen.
            return 0.0
        seen = 0
        for i, n in enumerate(self._counts):
            seen += n
            if seen >= rank:
                return self._bounds[i] if i < len(self._bounds) else self._max
        return self._max

    def snapshot(self) -> dict:
        """Raw bucket state for Prometheus rendering (non-cumulative)."""
        return {
            "bounds": self._bounds,
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
            "max": self._max,
        }

    def to_dict(self) -> dict:
        return {
            "count": self._count,
            "mean_ms": round(self.mean * 1e3, 4),
            "p50_ms": round(self.quantile(0.50) * 1e3, 4),
            "p90_ms": round(self.quantile(0.90) * 1e3, 4),
            "p99_ms": round(self.quantile(0.99) * 1e3, 4),
            "max_ms": round(self._max * 1e3, 4),
        }


class Metrics:
    """Thread-safe named counters and latency histograms.

    Handlers run on the event loop but batches execute on worker
    threads, so every mutation takes one process-wide lock; the ops are
    increments, so contention is negligible.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(seconds)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        """The named histogram, registered empty on first use.

        Pre-registering (e.g. the per-stage timers) guarantees the
        family appears in ``/metrics`` output even before any sample.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            return hist

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "latency": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def snapshots(self) -> tuple[dict, dict]:
        """``(counters, histogram snapshots)`` — the raw registry state.

        Histogram snapshots are *non-cumulative* per-bucket counts (see
        :meth:`Histogram.snapshot`), the shape
        :func:`repro.obs.merge_histogram_snapshots` aggregates across
        shard workers before exposition.
        """
        with self._lock:
            return dict(self._counters), {
                name: hist.snapshot() for name, hist in self._histograms.items()
            }

    def to_prometheus(self, gauges: dict | None = None) -> str:
        """The registry in Prometheus text exposition format."""
        counters, histograms = self.snapshots()
        return render_exposition(counters, histograms, gauges or {})


@dataclass
class IngestSession:
    """One streaming-ingest session: a linker plus bookkeeping.

    When the daemon runs over a persistent store, ``pending`` buffers
    the session's raw candidate records until they are flushed into the
    store's append log (explicitly via the wire ``flush`` flag, or
    automatically when the idle session expires).
    """

    session_id: str
    linker: StreamingLinker
    created_at: float
    last_used_at: float
    n_records: int = 0
    pending: dict[str, list[tuple[float, float, float]]] = field(
        default_factory=dict
    )

    def touch(self, now: float) -> None:
        self.last_used_at = now


@dataclass
class ServiceState:
    """Everything the daemon's handlers share.

    Parameters
    ----------
    engine:
        The fitted :class:`~repro.core.engine.LinkEngine` serving
        ``/link``.
    pool:
        Resident candidate pool used by ``/link`` requests that do not
        carry their own candidates.
    options:
        Server-default :class:`LinkOptions`; per-request ``options``
        objects are applied on top.
    session_ttl_s:
        Idle seconds before an ingest session is garbage-collected.
    clock:
        Monotonic-seconds source; injectable so TTL tests control time.
    store:
        Optional :class:`~repro.store.TrajectoryStore` the daemon
        serves from.  When set, ingest sessions buffer their candidate
        records and :meth:`flush_session` appends them to the store's
        append log (idle-expired sessions are flushed automatically, so
        ingested evidence survives the daemon).
    provenance:
        Where the resident pool came from (store dir + manifest
        generation, parsed files, ...); reported by :meth:`health` and
        the startup log so operators can tell which snapshot a daemon
        is serving.
    collect_pending:
        Buffer ingest-session candidate records even without a store
        attached.  Shard workers run with this on: the *coordinator*
        owns the store, so workers buffer their shards' records and
        hand them over via :meth:`take_pending` when the coordinator
        flushes the session.
    """

    engine: LinkEngine
    pool: list[Trajectory]
    options: LinkOptions
    session_ttl_s: float = DEFAULT_SESSION_TTL_S
    clock: object = time.monotonic
    metrics: Metrics = field(default_factory=Metrics)
    store: object | None = None
    provenance: dict | None = None
    collect_pending: bool = False
    #: Optional :class:`repro.stream.StreamRuntime`; when set, every
    #: store flush runs the incremental pipeline (delta block, pool
    #: refresh, targeted cache invalidation, standing-query re-scoring).
    stream: object | None = None
    #: Artifact id of the model pair the engine was built from (``None``
    #: for an ad-hoc in-process fit); reported by health/admin handlers.
    model_artifact_id: str | None = None
    started_at: float = field(init=False)
    evidence: BucketEvidence = field(init=False)
    sessions: dict[str, IngestSession] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.session_ttl_s <= 0:
            raise ValidationError(
                f"session_ttl_s must be positive, got {self.session_ttl_s}"
            )
        self.started_at = self.clock()
        #: Live per-bucket drift evidence; batch worker threads bind it
        #: as their evidence sink, ``/metrics`` renders it as the
        #: ``ftl_model_drift`` gauges.
        self.evidence = BucketEvidence(self.engine.config.n_buckets)
        # Pre-register the per-stage timer histograms so ``/metrics``
        # always exposes the full pipeline breakdown, sampled or not.
        for stage in STAGES:
            self.metrics.histogram(STAGE_METRIC_PREFIX + stage)

    def adopt_engine(self, engine: LinkEngine, artifact_id: str | None) -> None:
        """Swap the serving engine in place (model hot-swap).

        Rebinds the engine, records which artifact it came from, and
        resets the drift evidence — tallies gathered under the old
        model pair say nothing about the new one.  Callers are
        responsible for quiescing in-flight batches first (the server
        drains its batcher before calling this).
        """
        self.engine = engine
        self.model_artifact_id = artifact_id
        self.evidence.reset(engine.config.n_buckets)
        self.metrics.inc("model_swaps_total")

    def refresh_pool(self) -> int:
        """Reload the resident pool from the attached store, in place.

        In-place mutation (not rebinding) so the engine/server views
        holding a reference to the same list observe the refresh.
        Returns the new pool size.  Raises
        :class:`~repro.errors.ValidationError` without a store.
        """
        if self.store is None:
            raise ValidationError("no trajectory store attached to this daemon")
        self.pool[:] = list(self.store.load())
        self.metrics.inc("pool_refreshes_total")
        return len(self.pool)

    # ------------------------------------------------------------------
    # Ingest sessions
    # ------------------------------------------------------------------
    def session(self, session_id: str) -> IngestSession:
        """The named session, created on first use (and TTL-refreshed)."""
        now = self.clock()
        entry = self.sessions.get(session_id)
        if entry is None:
            linker = StreamingLinker(
                self.engine.rejection_model,
                self.engine.acceptance_model,
                phi_r=self.options.phi_r,
            )
            entry = IngestSession(
                session_id=session_id,
                linker=linker,
                created_at=now,
                last_used_at=now,
            )
            self.sessions[session_id] = entry
            self.metrics.inc("sessions_created_total")
        entry.touch(now)
        return entry

    def expire_idle_sessions(self, now: float | None = None) -> list[str]:
        """Drop sessions idle for longer than the TTL; returns their ids.

        Called lazily from the ingest path and periodically by the
        server's sweeper task.  Dropping the session releases every
        :class:`~repro.core.streaming.StreamingPairEvidence` it held, so
        a later request under the same id starts from zero evidence —
        its decisions then equal a fresh batch-path run over only the
        newly ingested records (covered by tests).
        """
        if now is None:
            now = self.clock()
        expired = [
            sid
            for sid, entry in self.sessions.items()
            if now - entry.last_used_at > self.session_ttl_s
        ]
        for sid in expired:
            if self.store is not None:
                self.flush_session(sid)
            del self.sessions[sid]
        if expired:
            self.metrics.inc("sessions_expired_total", len(expired))
        return expired

    def flush_session(self, session_id: str) -> int:
        """Append a session's buffered candidate records to the store.

        Each buffered candidate becomes one record-delta trajectory in
        a new store segment (merge-on-read with whatever the store
        already holds under that id; ``compact()`` materialises the
        union).  Returns the number of records flushed; a no-op (0)
        when the session has no buffered records.  Raises
        :class:`~repro.errors.ValidationError` when no store is
        attached or the session is unknown.
        """
        if self.store is None:
            raise ValidationError("no trajectory store attached to this daemon")
        entry = self.sessions.get(session_id)
        if entry is None:
            raise ValidationError(f"unknown ingest session {session_id!r}")
        if not entry.pending:
            return 0
        deltas = []
        for cid, records in entry.pending.items():
            ts, xs, ys = zip(*records)
            deltas.append(Trajectory(ts, xs, ys, cid, sort=True))
        # The stream runtime appends *inside* its locks so the delta
        # block is stamped with exactly the generation this append
        # commits (concurrent flushes would otherwise race the stamp).
        if self.stream is not None:
            flushed, _segment = self.stream.append_flush(deltas)
        else:
            flushed = self.store.append(deltas)
        entry.pending.clear()
        self.metrics.inc("store_flushes_total")
        self.metrics.inc("store_flushed_records_total", flushed)
        return flushed

    def take_pending(
        self, session_id: str
    ) -> dict[str, list[tuple[float, float, float]]]:
        """Hand over (and clear) a session's buffered candidate records.

        The shard-worker half of a coordinator-driven flush: the worker
        buffered records under ``collect_pending`` and the coordinator —
        the only process holding the store — appends them.  Unknown
        sessions yield ``{}`` (the worker may have been respawned since
        the records were ingested).
        """
        entry = self.sessions.get(session_id)
        if entry is None or not entry.pending:
            return {}
        pending, entry.pending = entry.pending, {}
        return pending

    def ingest(self, session_id: str, query_records, candidate_records,
               expire_before: float | None = None) -> IngestSession:
        """Route new records into a session's streaming linker."""
        self.expire_idle_sessions()
        entry = self.session(session_id)
        linker = entry.linker
        for t, x, y in query_records:
            linker.observe_query(Record(t, x, y))
            entry.n_records += 1
        for cid, records in candidate_records.items():
            if not linker.has_candidate(cid):
                linker.add_candidate(cid)
            buffer = (
                entry.pending.setdefault(str(cid), [])
                if self.store is not None or self.collect_pending
                else None
            )
            for t, x, y in records:
                linker.observe_candidate(cid, Record(t, x, y))
                entry.n_records += 1
                if buffer is not None:
                    buffer.append((float(t), float(x), float(y)))
        total = len(query_records) + sum(
            len(r) for r in candidate_records.values()
        )
        if total:
            self.metrics.inc("ingested_records_total", total)
        if expire_before is not None:
            linker.expire_before(expire_before)
            # With a stream runtime attached, the sliding window is
            # store-wide: old records age out of the append log, the
            # index delta log, and every standing query — not just this
            # session's evidence.
            if self.stream is not None:
                self.stream.evict_before(float(expire_before))
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(self.clock() - self.started_at, 3),
            "pool_size": len(self.pool),
            "sessions": len(self.sessions),
            "method": self.options.method,
            "model_artifact": self.model_artifact_id,
            "kernel_backend": self.engine.kernel_backend,
            "stage_backends": self.engine.stage_backends(),
            "data_source": (
                self.provenance
                if self.provenance is not None
                else {"source": "in-memory"}
            ),
        }
