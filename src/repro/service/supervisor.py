"""Prefork shard supervisor: worker lifecycle and scatter-gather.

:class:`ShardSupervisor` owns the multi-process half of the daemon.  It
``fork``s one worker per shard *after* the engine, pool and store are
built, so workers inherit everything copy-on-write — for an
mmap-backed store the pool's record arrays are shared pages, not
copies.  Each worker runs :func:`repro.service.shard.run_worker` over a
``socketpair``; the supervisor keeps the parent ends and scatters work
across them with one thread per shard.

Division of labour:

* **Workers** hold disjoint pool slices (consistent-hashed by home
  cell) and answer ``link`` with per-shard partial rankings; for
  ingest they run real :class:`~repro.core.streaming.StreamingLinker`
  sessions over the query stream (broadcast) and their owned
  candidates (routed), buffering raw candidate records.
* **The coordinator** merges partial rankings
  (:func:`~repro.service.shard.merge_partials` — bit-identical to the
  single-process order), keeps the session registry that reassembles
  legacy-shaped ingest responses, and is the *only* process that
  touches the store: flushes pull buffered records out of workers via
  ``take_pending`` and append them here.

Failure semantics: any transport error marks the worker dead, the
supervisor respawns it and retries the operation once
(``worker_restarts_total`` counts respawns).  A respawned worker
restarts from the original pool snapshot, so streaming-session
evidence its shard held is lost — equivalent to an idle-TTL expiry of
that shard's slice of the session, and exactly the trade documented in
``docs/service.md``.
"""

from __future__ import annotations

import contextlib
import logging
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.engine import LinkRequest
from repro.errors import FTLError, ValidationError, WorkerCrashedError
from repro.service.protocol import IngestWireRequest, ShardInfo
from repro.service.shard import (
    HashRing,
    ShardHandle,
    ShardPlan,
    merge_partials,
    plan_shards,
    run_worker,
)
from repro.service.state import ServiceState
from repro.core.trajectory import Trajectory

_LOG = logging.getLogger("ftl.supervisor")

#: Cap on query records retained per session for worker rehydration.
#: Beyond it the oldest records are dropped (counted by
#: ``session_ledger_truncated_records_total``): a respawn then replays
#: a truncated query stream — the same best-effort trade as losing a
#: worker's unflushed buffer.
MAX_QUERY_HISTORY_RECORDS = 50_000


@dataclass
class _SessionEntry:
    """Coordinator-side view of one sharded ingest session.

    ``owners`` maps candidate id -> owning shard in *first-seen order*,
    which is exactly the registration order a single-process
    :class:`StreamingLinker` would report decisions in.  ``n_records``
    is the monotone ingested-record counter the legacy response
    exposes (query + candidate records ever routed).

    ``query_history``, ``expire_before`` and ``flushed_segments`` are
    the rehydration ledger: enough coordinator-side state to replay a
    respawned worker's slice of the session (the broadcast query
    stream, the latest eviction cutoff, and the store segments holding
    the session's flushed candidate records).  The ledger is bounded:
    query records behind the eviction cutoff are compacted away, the
    total is capped at :data:`MAX_QUERY_HISTORY_RECORDS`, and segments
    compacted out of the store are pruned on flush — a long-lived
    session cannot grow coordinator memory without bound.
    """

    session_id: str
    created_at: float
    last_used_at: float
    n_records: int = 0
    owners: dict[str, int] = field(default_factory=dict)
    query_history: list[list[list[float]]] = field(default_factory=list)
    expire_before: float | None = None
    flushed_segments: list[str] = field(default_factory=list)


class ShardSupervisor:
    """Forked shard workers + the scatter-gather coordinator logic.

    Parameters
    ----------
    state:
        The daemon's coordinator :class:`ServiceState` — source of the
        engine, pool, server-default options, store, metrics, TTL and
        clock.  Workers get their own states built from its parts.
    n_shards:
        Worker process count (>= 1).
    spans:
        Bind a :class:`~repro.obs.MetricsSpanSink` inside each worker
        so per-stage timers land in the worker's own registry (exposed
        shard-labelled by ``/v1/metrics``).
    cell_size_m:
        Home-cell size for shard routing; defaults to the engine
        config's ``shard_cell_size_m``.
    """

    def __init__(
        self,
        state: ServiceState,
        n_shards: int,
        spans: bool = True,
        cell_size_m: float | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self._state = state
        self._spans = spans
        self.n_shards = int(n_shards)
        self.ring = HashRing(self.n_shards)
        if cell_size_m is None:
            cell_size_m = state.engine.config.shard_cell_size_m
        self._cell_size_m = float(cell_size_m)
        # The shard plan is frozen at construction: a pool refresh in
        # the coordinator does NOT repartition live workers (restart
        # the daemon to re-shard; documented in docs/service.md).
        self._plans: list[ShardPlan] = plan_shards(
            list(state.pool), self.ring, self._cell_size_m
        )
        self._pool_ids = [t.traj_id for t in state.pool]
        # A streaming flush can append records to *existing* ids (the
        # id list then never changes), so drift detection also pins the
        # store generation the plan was computed against.
        self._plan_generation = (
            state.store.generation if state.store is not None else None
        )
        self._plan_stale = False
        self._handles: list[ShardHandle | None] = [None] * self.n_shards
        self._restarts = [0] * self.n_shards
        self._spawn_lock = threading.Lock()
        self._scatter: ThreadPoolExecutor | None = None
        self.sessions: dict[str, _SessionEntry] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork one worker per shard.

        Call before the asyncio listener exists: children must not
        inherit the accept socket or any event loop state.
        """
        if self._started:
            raise ValidationError("supervisor already started")
        self._started = True
        self._scatter = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="ftl-scatter"
        )
        for shard_id in range(self.n_shards):
            self._handles[shard_id] = self._spawn(shard_id)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Graceful worker shutdown: ack'd shutdown op, then reap.

        Workers that do not exit within ``timeout_s`` are SIGKILLed —
        drain happened upstream (batcher stop), so nothing is lost.
        """
        if not self._started:
            return
        self._started = False
        for handle in self._handles:
            if handle is None or handle.broken:
                continue
            with contextlib.suppress(Exception):
                handle.call("shutdown")
            handle.close()
        deadline = time.monotonic() + timeout_s
        for handle in self._handles:
            if handle is not None:
                self._reap(handle.pid, deadline)
        if self._scatter is not None:
            self._scatter.shutdown(wait=True)
            self._scatter = None

    @staticmethod
    def _reap(pid: int, deadline: float) -> None:
        while True:
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return
            if done:
                return
            if time.monotonic() >= deadline:
                with contextlib.suppress(OSError):
                    os.kill(pid, signal.SIGKILL)
                with contextlib.suppress(OSError):
                    os.waitpid(pid, 0)
                return
            time.sleep(0.01)

    def _spawn(self, shard_id: int) -> ShardHandle:
        plan = self._plans[shard_id]
        parent_sock, child_sock = socket.socketpair()
        pid = os.fork()
        if pid == 0:
            # Worker child.  Drop every parent-side socket we inherited
            # (ours *and* the other shards' — a stray copy here would
            # keep a sibling's pipe open and defeat EOF-based exit),
            # then serve until the coordinator closes our pipe.
            try:
                parent_sock.close()
                for other in self._handles:
                    if other is not None:
                        other.close()
                worker_state = ServiceState(
                    engine=self._state.engine,
                    pool=list(plan.local_pool),
                    options=self._state.options,
                    session_ttl_s=float("inf"),
                    collect_pending=True,
                )
                run_worker(child_sock, worker_state, shard_id, self._spans)
            finally:
                os._exit(0)
        child_sock.close()
        return ShardHandle(shard_id, parent_sock, pid)

    def _respawn(self, shard_id: int, dead: ShardHandle) -> None:
        with self._spawn_lock:
            current = self._handles[shard_id]
            if current is not dead and current is not None and not current.broken:
                return  # another thread already respawned this shard
            dead.close()
            self._reap(dead.pid, time.monotonic())  # non-blocking best effort
            self._handles[shard_id] = self._spawn(shard_id)
            self._restarts[shard_id] += 1
            self._state.metrics.inc("worker_restarts_total")
            self._rehydrate(shard_id)

    def _rehydrate(self, shard_id: int) -> None:
        """Replay a respawned worker's slice of every live session.

        The broadcast query stream comes back from the coordinator's
        per-session history; the worker's owned candidate records come
        back from the store segments the session flushed (records that
        were still buffered worker-side died with it — the documented
        idle-TTL-equivalent loss).  Replayed candidate records are
        already persisted, so the fresh worker's pending buffer is
        drained immediately lest the next flush append them twice.
        """
        handle = self._handles[shard_id]
        for entry in self.sessions.values():
            records_by_cid: dict[str, list[list[float]]] = {}
            if self._state.store is not None:
                owned = {
                    cid for cid, shard in entry.owners.items()
                    if shard == shard_id
                }
                for dirname in entry.flushed_segments:
                    try:
                        segment = self._state.store.read_segment(dirname)
                    except (FTLError, OSError):
                        continue  # compacted away since the flush
                    for traj in segment:
                        cid = str(traj.traj_id)
                        if cid not in owned:
                            continue
                        records_by_cid.setdefault(cid, []).extend(
                            [float(t), float(x), float(y)]
                            for t, x, y in zip(traj.ts, traj.xs, traj.ys)
                        )
            query_records = [
                record for batch in entry.query_history for record in batch
            ]
            if not query_records and not records_by_cid:
                continue
            try:
                handle.call(
                    "ingest",
                    {
                        "session": entry.session_id,
                        "query_records": query_records,
                        "candidate_records": records_by_cid,
                        "expire_before": entry.expire_before,
                    },
                )
                if records_by_cid:
                    handle.call("take_pending", entry.session_id)
                self._state.metrics.inc("worker_rehydrated_sessions_total")
                _LOG.info(
                    "worker_rehydrated",
                    extra={"ftl_fields": {
                        "shard": shard_id,
                        "session": entry.session_id,
                        "n_query_records": len(query_records),
                        "n_candidates": len(records_by_cid),
                    }},
                )
            except (WorkerCrashedError, FTLError):
                continue  # best effort: the next op respawns again

    def _call(self, shard_id: int, op: str, payload=None):
        """One shard op with crash-respawn-retry-once semantics."""
        handle = self._handles[shard_id]
        try:
            return handle.call(op, payload)
        except WorkerCrashedError:
            self._respawn(shard_id, handle)
            return self._handles[shard_id].call(op, payload)

    # ------------------------------------------------------------------
    # /link scatter-gather
    # ------------------------------------------------------------------
    def link_requests(
        self, requests: list[LinkRequest]
    ) -> list[tuple[object, tuple[ShardInfo, ...]]]:
        """Serve a batch: ``(LinkResult, shard provenance)`` per request.

        Pool-backed requests are scattered to every shard in one
        batched ``link`` op per shard and merged; requests carrying
        their own candidates execute on the coordinator's engine
        (their candidates were never partitioned), reported as shard
        ``-1``.
        """
        pool_units: list[tuple[int, LinkRequest]] = []
        results: list[tuple[object, tuple[ShardInfo, ...]] | None]
        results = [None] * len(requests)
        for index, request in enumerate(requests):
            if request.candidates is not None:
                results[index] = self._link_local(request)
            else:
                pool_units.append((index, request))
        if pool_units:
            payload = [
                (request.query, request.options) for _, request in pool_units
            ]
            futures = [
                self._scatter.submit(self._call, shard_id, "link", payload)
                for shard_id in range(self.n_shards)
            ]
            replies = [future.result() for future in futures]
            for j, (index, request) in enumerate(pool_units):
                options = (
                    request.options
                    if request.options is not None
                    else self._state.options
                )
                merged = merge_partials(
                    [reply["matches"][j] for reply in replies],
                    self._pool_ids,
                    request.query.traj_id,
                    options,
                )
                provenance = tuple(
                    ShardInfo(
                        shard=reply["shard"],
                        pid=reply["pid"],
                        n_candidates=reply["n_candidates"],
                        n_matched=len(reply["matches"][j]),
                        elapsed_ms=reply["elapsed_ms"],
                    )
                    for reply in replies
                )
                results[index] = (merged, provenance)
        return results

    def _link_local(self, request: LinkRequest):
        started = time.monotonic()
        result = self._state.engine.link_requests(
            [request],
            default_pool=self._state.pool,
            options=self._state.options,
        )[0]
        info = ShardInfo(
            shard=-1,
            pid=os.getpid(),
            n_candidates=len(request.candidates),
            n_matched=len(result.candidates),
            elapsed_ms=round((time.monotonic() - started) * 1e3, 3),
        )
        return result, (info,)

    # ------------------------------------------------------------------
    # Standing-query re-scoring scatter
    # ------------------------------------------------------------------
    def score_pairs(self, query, candidates, options, changed_ids):
        """Score changed standing-query pairs on the workers owning them.

        The workers' resident pools are frozen fork-time slices, so the
        *current* candidate trajectories ship with the request and each
        worker first drops its cached profiles for those ids.
        Candidates route by id hash (the ring ingest uses); a shard
        that cannot answer even after a respawn falls back to the
        coordinator engine, so an update is never silently lost.  The
        returned :class:`Candidate` entries are bit-identical to a
        coordinator-local score — per-pair statistics depend only on
        (query, candidate, options), regardless of which process runs
        them (the merge-correctness argument in
        :mod:`repro.service.shard`).
        """
        del changed_ids  # implied by the shipped candidates
        groups: dict[int, list[Trajectory]] = {}
        for trajectory in candidates:
            shard_id = self.ring.shard_for(f"id:{trajectory.traj_id}")
            groups.setdefault(shard_id, []).append(trajectory)
        futures = {
            shard_id: self._scatter.submit(
                self._call,
                shard_id,
                "score_pairs",
                {
                    "query": query,
                    "candidates": group,
                    "options": options,
                    "invalidate": [str(t.traj_id) for t in group],
                },
            )
            for shard_id, group in groups.items()
        }
        scored = []
        for shard_id, future in futures.items():
            try:
                scored.extend(future.result())
            except WorkerCrashedError:
                self._state.metrics.inc("score_pairs_fallback_total")
                self._state.engine.invalidate_profiles(
                    [str(t.traj_id) for t in groups[shard_id]]
                )
                result = self._state.engine.link_requests(
                    [LinkRequest(
                        query,
                        candidates=tuple(groups[shard_id]),
                        options=options,
                    )]
                )[0]
                scored.extend(result.candidates)
        return scored

    # ------------------------------------------------------------------
    # /ingest routing
    # ------------------------------------------------------------------
    def ingest(self, wire: IngestWireRequest) -> dict:
        """Route one ingest request and reassemble the legacy response.

        Query records and ``expire_before`` are broadcast to every
        shard (each worker's linker needs the full query stream);
        candidate records go only to their owning shard.  The response
        counts come back out the same way: retained query records from
        any shard (they agree), candidate counts summed, the monotone
        ingested-record total from the coordinator registry.
        """
        now = self._state.clock()
        self.expire_idle(now)
        entry = self.sessions.get(wire.session)
        if entry is None:
            entry = _SessionEntry(
                session_id=wire.session, created_at=now, last_used_at=now
            )
            self.sessions[wire.session] = entry
            self._state.metrics.inc("sessions_created_total")
        entry.last_used_at = now
        if wire.query_records:
            entry.query_history.append(
                [list(map(float, r)) for r in wire.query_records]
            )
        if wire.expire_before is not None:
            entry.expire_before = (
                wire.expire_before
                if entry.expire_before is None
                else max(entry.expire_before, wire.expire_before)
            )
        self._compact_ledger(entry)
        for cid in wire.candidate_records:
            if cid not in entry.owners:
                entry.owners[cid] = self.ring.shard_for(f"id:{cid}")
        per_shard: list[dict] = [{} for _ in range(self.n_shards)]
        for cid, records in wire.candidate_records.items():
            per_shard[entry.owners[cid]][cid] = records
        futures = [
            self._scatter.submit(
                self._call,
                shard_id,
                "ingest",
                {
                    "session": wire.session,
                    "query_records": wire.query_records,
                    "candidate_records": per_shard[shard_id],
                    "expire_before": wire.expire_before,
                },
            )
            for shard_id in range(self.n_shards)
        ]
        replies = [future.result() for future in futures]
        total = len(wire.query_records) + sum(
            len(r) for r in wire.candidate_records.values()
        )
        entry.n_records += total
        if total:
            self._state.metrics.inc("ingested_records_total", total)
        if wire.expire_before is not None and self._state.stream is not None:
            # Workers already dropped their in-session records; slide
            # the store window and re-score standing queries to match.
            self._state.stream.evict_before(float(wire.expire_before))
        response = {
            "session": wire.session,
            "n_candidates": sum(r["n_candidates"] for r in replies),
            "n_query_records": max(r["n_query_records"] for r in replies),
            "n_records_ingested": entry.n_records,
        }
        if wire.flush:
            response["flushed_records"] = self.flush_session(wire.session)
        if wire.decide:
            response["decisions"] = self._decisions(entry)
        return response

    def _compact_ledger(self, entry: _SessionEntry) -> None:
        """Keep the session's rehydration ledger bounded.

        Query records behind the eviction cutoff would be dropped by
        the workers' linkers on replay anyway (``expire_before`` is
        replayed too), so compacting them away changes nothing.  Past
        :data:`MAX_QUERY_HISTORY_RECORDS` the oldest records go as
        well — lossy but counted, and strictly better than unbounded
        coordinator growth.
        """
        if entry.expire_before is not None:
            cutoff = entry.expire_before
            entry.query_history = [
                kept
                for batch in entry.query_history
                if (kept := [r for r in batch if r[0] >= cutoff])
            ]
        overflow = (
            sum(len(batch) for batch in entry.query_history)
            - MAX_QUERY_HISTORY_RECORDS
        )
        if overflow <= 0:
            return
        self._state.metrics.inc(
            "session_ledger_truncated_records_total", overflow
        )
        while overflow > 0:
            batch = entry.query_history[0]
            if len(batch) <= overflow:
                overflow -= len(batch)
                entry.query_history.pop(0)
            else:
                del batch[:overflow]
                overflow = 0

    def _decisions(self, entry: _SessionEntry) -> list[dict]:
        """Per-candidate decisions in global registration order.

        Each owning shard reports its candidates' decisions; the
        registry's first-seen order stitches them back into the order a
        single-process linker would emit.  Candidates living on a shard
        that was respawned since their ingest are absent (their
        evidence died with the worker) and are skipped.
        """
        shard_ids = sorted(set(entry.owners.values()))
        futures = {
            shard_id: self._scatter.submit(
                self._call, shard_id, "decisions", entry.session_id
            )
            for shard_id in shard_ids
        }
        by_cid = {}
        for shard_id in shard_ids:
            for decision in futures[shard_id].result():
                by_cid[decision["candidate_id"]] = decision
        return [by_cid[cid] for cid in entry.owners if cid in by_cid]

    # ------------------------------------------------------------------
    # Store flushes and session expiry (coordinator-owned)
    # ------------------------------------------------------------------
    def flush_session(self, session_id: str) -> int:
        """Pull buffered records out of the workers, append to the store."""
        if self._state.store is None:
            raise ValidationError("no trajectory store attached to this daemon")
        entry = self.sessions.get(session_id)
        if entry is None:
            raise ValidationError(f"unknown ingest session {session_id!r}")
        pending: dict[str, list[tuple[float, float, float]]] = {}
        for shard_id in range(self.n_shards):
            pending.update(self._call(shard_id, "take_pending", session_id))
        if not pending:
            return 0
        deltas = []
        for cid, records in pending.items():
            ts, xs, ys = zip(*records)
            deltas.append(Trajectory(ts, xs, ys, cid, sort=True))
        # The stream runtime appends inside its locks (delta-block
        # stamp must match this append's committed generation) and
        # reports back the segment it wrote for the rehydration ledger.
        if self._state.stream is not None:
            flushed, segment = self._state.stream.append_flush(deltas)
        else:
            flushed = self._state.store.append(deltas)
            segment = (
                self._state.store.manifest.segments[-1].dirname
                if flushed
                else None
            )
        if segment is not None and segment not in entry.flushed_segments:
            entry.flushed_segments.append(segment)
        # Compaction rewrites the store into one segment; ledger
        # entries pointing at dead segments are useless for rehydration
        # and would otherwise accumulate for the session's lifetime.
        live = {info.dirname for info in self._state.store.manifest.segments}
        entry.flushed_segments = [
            d for d in entry.flushed_segments if d in live
        ]
        self._state.metrics.inc("store_flushes_total")
        self._state.metrics.inc("store_flushed_records_total", flushed)
        return flushed

    def expire_idle(self, now: float | None = None) -> list[str]:
        """TTL-expire idle sessions everywhere (flushing first if stored)."""
        if now is None:
            now = self._state.clock()
        expired = [
            sid
            for sid, entry in self.sessions.items()
            if now - entry.last_used_at > self._state.session_ttl_s
        ]
        for sid in expired:
            if self._state.store is not None:
                self.flush_session(sid)
            for shard_id in range(self.n_shards):
                self._call(shard_id, "drop_session", sid)
            del self.sessions[sid]
        if expired:
            self._state.metrics.inc("sessions_expired_total", len(expired))
        return expired

    # ------------------------------------------------------------------
    # Model hot-swap broadcast
    # ------------------------------------------------------------------
    def broadcast_model(
        self,
        rejection: dict,
        acceptance: dict,
        artifact_id: str | None,
    ) -> list[dict]:
        """Ship a fitted model pair to every shard worker.

        Called *after* the coordinator's own :meth:`ServiceState.adopt_engine`
        (and while the batcher is drained), so a worker that crashes
        mid-broadcast respawns from the already-swapped coordinator
        engine — ``_spawn`` reads ``self._state.engine`` at fork time —
        and the retry lands the explicit swap on the fresh process too.
        Models travel as ``to_dict()`` payloads, not pickled objects,
        so each worker rebuilds its engine from the canonical count
        tables + config snapshot.
        """
        payload = {
            "rejection": rejection,
            "acceptance": acceptance,
            "artifact_id": artifact_id,
        }
        futures = [
            self._scatter.submit(self._call, shard_id, "swap_model", payload)
            for shard_id in range(self.n_shards)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Introspection / aggregation
    # ------------------------------------------------------------------
    def ensure_alive(self) -> None:
        """Ping every shard, respawning any dead worker (sweeper hook)."""
        for shard_id in range(self.n_shards):
            self._call(shard_id, "ping")

    def plan_drift(self) -> bool:
        """Whether the coordinator pool drifted from the frozen plan.

        The shard plan is frozen at fork time, but streaming flushes
        and evictions refresh the coordinator pool in place — so
        pool-backed ``/v1/link`` scatters keep serving the fork-time
        snapshot while standing queries track the live pool.  Drift is
        either an id-list change *or* a store-generation change: a
        flush appending records to already-stored ids mutates pool
        content without touching the id list.  The transition into
        staleness emits one structured warning (and bumps
        ``shard_plan_drift_total``); ``/v1/metrics`` gauges the
        current state as ``ftl_shard_plan_stale``.  Restart the daemon
        to re-shard, as documented in ``docs/service.md``.
        """
        current = [t.traj_id for t in self._state.pool]
        generation = (
            self._state.store.generation
            if self._state.store is not None
            else None
        )
        stale = (
            current != self._pool_ids or generation != self._plan_generation
        )
        if stale and not self._plan_stale:
            self._state.metrics.inc("shard_plan_drift_total")
            _LOG.warning(
                "shard_plan_stale",
                extra={"ftl_fields": {
                    "frozen_pool": len(self._pool_ids),
                    "current_pool": len(current),
                    "plan_generation": self._plan_generation,
                    "store_generation": generation,
                }},
            )
        self._plan_stale = stale
        return stale

    def worker_status(self) -> list[dict]:
        """Live per-worker status for ``/v1/healthz`` (active ping)."""
        status = []
        for shard_id in range(self.n_shards):
            try:
                reply = self._call(shard_id, "ping")
                status.append(
                    {
                        "shard": shard_id,
                        "pid": reply["pid"],
                        "alive": True,
                        "pool_size": reply["pool_size"],
                        "sessions": reply["sessions"],
                        "restarts": self._restarts[shard_id],
                    }
                )
            except WorkerCrashedError:
                status.append(
                    {
                        "shard": shard_id,
                        "pid": self._handles[shard_id].pid,
                        "alive": False,
                        "pool_size": len(self._plans[shard_id].global_indices),
                        "sessions": 0,
                        "restarts": self._restarts[shard_id],
                    }
                )
        return status

    def metrics_payloads(self) -> dict[int, dict]:
        """Per-shard ``{"counters", "histograms", "evidence"}`` snapshots.

        A shard whose worker cannot answer even after a respawn is
        omitted — ``/v1/metrics`` then simply lacks that shard's
        labelled series for the scrape.
        """
        payloads: dict[int, dict] = {}
        for shard_id in range(self.n_shards):
            try:
                payloads[shard_id] = self._call(shard_id, "metrics")
            except WorkerCrashedError:
                continue
        return payloads
