"""Prefork shard supervisor: worker lifecycle and scatter-gather.

:class:`ShardSupervisor` owns the multi-process half of the daemon.  It
``fork``s one worker per shard *after* the engine, pool and store are
built, so workers inherit everything copy-on-write — for an
mmap-backed store the pool's record arrays are shared pages, not
copies.  Each worker runs :func:`repro.service.shard.run_worker` over a
``socketpair``; the supervisor keeps the parent ends and scatters work
across them with one thread per shard.

Division of labour:

* **Workers** hold disjoint pool slices (consistent-hashed by home
  cell) and answer ``link`` with per-shard partial rankings; for
  ingest they run real :class:`~repro.core.streaming.StreamingLinker`
  sessions over the query stream (broadcast) and their owned
  candidates (routed), buffering raw candidate records.
* **The coordinator** merges partial rankings
  (:func:`~repro.service.shard.merge_partials` — bit-identical to the
  single-process order), keeps the session registry that reassembles
  legacy-shaped ingest responses, and is the *only* process that
  touches the store: flushes pull buffered records out of workers via
  ``take_pending`` and append them here.

Failure semantics: any transport error marks the worker dead, the
supervisor respawns it and retries the operation once
(``worker_restarts_total`` counts respawns).  A respawned worker
restarts from the original pool snapshot, so streaming-session
evidence its shard held is lost — equivalent to an idle-TTL expiry of
that shard's slice of the session, and exactly the trade documented in
``docs/service.md``.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.engine import LinkRequest
from repro.errors import ValidationError, WorkerCrashedError
from repro.service.protocol import IngestWireRequest, ShardInfo
from repro.service.shard import (
    HashRing,
    ShardHandle,
    ShardPlan,
    merge_partials,
    plan_shards,
    run_worker,
)
from repro.service.state import ServiceState
from repro.core.trajectory import Trajectory


@dataclass
class _SessionEntry:
    """Coordinator-side view of one sharded ingest session.

    ``owners`` maps candidate id -> owning shard in *first-seen order*,
    which is exactly the registration order a single-process
    :class:`StreamingLinker` would report decisions in.  ``n_records``
    is the monotone ingested-record counter the legacy response
    exposes (query + candidate records ever routed).
    """

    session_id: str
    created_at: float
    last_used_at: float
    n_records: int = 0
    owners: dict[str, int] = field(default_factory=dict)


class ShardSupervisor:
    """Forked shard workers + the scatter-gather coordinator logic.

    Parameters
    ----------
    state:
        The daemon's coordinator :class:`ServiceState` — source of the
        engine, pool, server-default options, store, metrics, TTL and
        clock.  Workers get their own states built from its parts.
    n_shards:
        Worker process count (>= 1).
    spans:
        Bind a :class:`~repro.obs.MetricsSpanSink` inside each worker
        so per-stage timers land in the worker's own registry (exposed
        shard-labelled by ``/v1/metrics``).
    cell_size_m:
        Home-cell size for shard routing; defaults to the engine
        config's ``shard_cell_size_m``.
    """

    def __init__(
        self,
        state: ServiceState,
        n_shards: int,
        spans: bool = True,
        cell_size_m: float | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self._state = state
        self._spans = spans
        self.n_shards = int(n_shards)
        self.ring = HashRing(self.n_shards)
        if cell_size_m is None:
            cell_size_m = state.engine.config.shard_cell_size_m
        self._cell_size_m = float(cell_size_m)
        # The shard plan is frozen at construction: a pool refresh in
        # the coordinator does NOT repartition live workers (restart
        # the daemon to re-shard; documented in docs/service.md).
        self._plans: list[ShardPlan] = plan_shards(
            list(state.pool), self.ring, self._cell_size_m
        )
        self._pool_ids = [t.traj_id for t in state.pool]
        self._handles: list[ShardHandle | None] = [None] * self.n_shards
        self._restarts = [0] * self.n_shards
        self._spawn_lock = threading.Lock()
        self._scatter: ThreadPoolExecutor | None = None
        self.sessions: dict[str, _SessionEntry] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork one worker per shard.

        Call before the asyncio listener exists: children must not
        inherit the accept socket or any event loop state.
        """
        if self._started:
            raise ValidationError("supervisor already started")
        self._started = True
        self._scatter = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="ftl-scatter"
        )
        for shard_id in range(self.n_shards):
            self._handles[shard_id] = self._spawn(shard_id)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Graceful worker shutdown: ack'd shutdown op, then reap.

        Workers that do not exit within ``timeout_s`` are SIGKILLed —
        drain happened upstream (batcher stop), so nothing is lost.
        """
        if not self._started:
            return
        self._started = False
        for handle in self._handles:
            if handle is None or handle.broken:
                continue
            with contextlib.suppress(Exception):
                handle.call("shutdown")
            handle.close()
        deadline = time.monotonic() + timeout_s
        for handle in self._handles:
            if handle is not None:
                self._reap(handle.pid, deadline)
        if self._scatter is not None:
            self._scatter.shutdown(wait=True)
            self._scatter = None

    @staticmethod
    def _reap(pid: int, deadline: float) -> None:
        while True:
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return
            if done:
                return
            if time.monotonic() >= deadline:
                with contextlib.suppress(OSError):
                    os.kill(pid, signal.SIGKILL)
                with contextlib.suppress(OSError):
                    os.waitpid(pid, 0)
                return
            time.sleep(0.01)

    def _spawn(self, shard_id: int) -> ShardHandle:
        plan = self._plans[shard_id]
        parent_sock, child_sock = socket.socketpair()
        pid = os.fork()
        if pid == 0:
            # Worker child.  Drop every parent-side socket we inherited
            # (ours *and* the other shards' — a stray copy here would
            # keep a sibling's pipe open and defeat EOF-based exit),
            # then serve until the coordinator closes our pipe.
            try:
                parent_sock.close()
                for other in self._handles:
                    if other is not None:
                        other.close()
                worker_state = ServiceState(
                    engine=self._state.engine,
                    pool=list(plan.local_pool),
                    options=self._state.options,
                    session_ttl_s=float("inf"),
                    collect_pending=True,
                )
                run_worker(child_sock, worker_state, shard_id, self._spans)
            finally:
                os._exit(0)
        child_sock.close()
        return ShardHandle(shard_id, parent_sock, pid)

    def _respawn(self, shard_id: int, dead: ShardHandle) -> None:
        with self._spawn_lock:
            current = self._handles[shard_id]
            if current is not dead and current is not None and not current.broken:
                return  # another thread already respawned this shard
            dead.close()
            self._reap(dead.pid, time.monotonic())  # non-blocking best effort
            self._handles[shard_id] = self._spawn(shard_id)
            self._restarts[shard_id] += 1
            self._state.metrics.inc("worker_restarts_total")

    def _call(self, shard_id: int, op: str, payload=None):
        """One shard op with crash-respawn-retry-once semantics."""
        handle = self._handles[shard_id]
        try:
            return handle.call(op, payload)
        except WorkerCrashedError:
            self._respawn(shard_id, handle)
            return self._handles[shard_id].call(op, payload)

    # ------------------------------------------------------------------
    # /link scatter-gather
    # ------------------------------------------------------------------
    def link_requests(
        self, requests: list[LinkRequest]
    ) -> list[tuple[object, tuple[ShardInfo, ...]]]:
        """Serve a batch: ``(LinkResult, shard provenance)`` per request.

        Pool-backed requests are scattered to every shard in one
        batched ``link`` op per shard and merged; requests carrying
        their own candidates execute on the coordinator's engine
        (their candidates were never partitioned), reported as shard
        ``-1``.
        """
        pool_units: list[tuple[int, LinkRequest]] = []
        results: list[tuple[object, tuple[ShardInfo, ...]] | None]
        results = [None] * len(requests)
        for index, request in enumerate(requests):
            if request.candidates is not None:
                results[index] = self._link_local(request)
            else:
                pool_units.append((index, request))
        if pool_units:
            payload = [
                (request.query, request.options) for _, request in pool_units
            ]
            futures = [
                self._scatter.submit(self._call, shard_id, "link", payload)
                for shard_id in range(self.n_shards)
            ]
            replies = [future.result() for future in futures]
            for j, (index, request) in enumerate(pool_units):
                options = (
                    request.options
                    if request.options is not None
                    else self._state.options
                )
                merged = merge_partials(
                    [reply["matches"][j] for reply in replies],
                    self._pool_ids,
                    request.query.traj_id,
                    options,
                )
                provenance = tuple(
                    ShardInfo(
                        shard=reply["shard"],
                        pid=reply["pid"],
                        n_candidates=reply["n_candidates"],
                        n_matched=len(reply["matches"][j]),
                        elapsed_ms=reply["elapsed_ms"],
                    )
                    for reply in replies
                )
                results[index] = (merged, provenance)
        return results

    def _link_local(self, request: LinkRequest):
        started = time.monotonic()
        result = self._state.engine.link_requests(
            [request],
            default_pool=self._state.pool,
            options=self._state.options,
        )[0]
        info = ShardInfo(
            shard=-1,
            pid=os.getpid(),
            n_candidates=len(request.candidates),
            n_matched=len(result.candidates),
            elapsed_ms=round((time.monotonic() - started) * 1e3, 3),
        )
        return result, (info,)

    # ------------------------------------------------------------------
    # /ingest routing
    # ------------------------------------------------------------------
    def ingest(self, wire: IngestWireRequest) -> dict:
        """Route one ingest request and reassemble the legacy response.

        Query records and ``expire_before`` are broadcast to every
        shard (each worker's linker needs the full query stream);
        candidate records go only to their owning shard.  The response
        counts come back out the same way: retained query records from
        any shard (they agree), candidate counts summed, the monotone
        ingested-record total from the coordinator registry.
        """
        now = self._state.clock()
        self.expire_idle(now)
        entry = self.sessions.get(wire.session)
        if entry is None:
            entry = _SessionEntry(
                session_id=wire.session, created_at=now, last_used_at=now
            )
            self.sessions[wire.session] = entry
            self._state.metrics.inc("sessions_created_total")
        entry.last_used_at = now
        for cid in wire.candidate_records:
            if cid not in entry.owners:
                entry.owners[cid] = self.ring.shard_for(f"id:{cid}")
        per_shard: list[dict] = [{} for _ in range(self.n_shards)]
        for cid, records in wire.candidate_records.items():
            per_shard[entry.owners[cid]][cid] = records
        futures = [
            self._scatter.submit(
                self._call,
                shard_id,
                "ingest",
                {
                    "session": wire.session,
                    "query_records": wire.query_records,
                    "candidate_records": per_shard[shard_id],
                    "expire_before": wire.expire_before,
                },
            )
            for shard_id in range(self.n_shards)
        ]
        replies = [future.result() for future in futures]
        total = len(wire.query_records) + sum(
            len(r) for r in wire.candidate_records.values()
        )
        entry.n_records += total
        if total:
            self._state.metrics.inc("ingested_records_total", total)
        response = {
            "session": wire.session,
            "n_candidates": sum(r["n_candidates"] for r in replies),
            "n_query_records": max(r["n_query_records"] for r in replies),
            "n_records_ingested": entry.n_records,
        }
        if wire.flush:
            response["flushed_records"] = self.flush_session(wire.session)
        if wire.decide:
            response["decisions"] = self._decisions(entry)
        return response

    def _decisions(self, entry: _SessionEntry) -> list[dict]:
        """Per-candidate decisions in global registration order.

        Each owning shard reports its candidates' decisions; the
        registry's first-seen order stitches them back into the order a
        single-process linker would emit.  Candidates living on a shard
        that was respawned since their ingest are absent (their
        evidence died with the worker) and are skipped.
        """
        shard_ids = sorted(set(entry.owners.values()))
        futures = {
            shard_id: self._scatter.submit(
                self._call, shard_id, "decisions", entry.session_id
            )
            for shard_id in shard_ids
        }
        by_cid = {}
        for shard_id in shard_ids:
            for decision in futures[shard_id].result():
                by_cid[decision["candidate_id"]] = decision
        return [by_cid[cid] for cid in entry.owners if cid in by_cid]

    # ------------------------------------------------------------------
    # Store flushes and session expiry (coordinator-owned)
    # ------------------------------------------------------------------
    def flush_session(self, session_id: str) -> int:
        """Pull buffered records out of the workers, append to the store."""
        if self._state.store is None:
            raise ValidationError("no trajectory store attached to this daemon")
        entry = self.sessions.get(session_id)
        if entry is None:
            raise ValidationError(f"unknown ingest session {session_id!r}")
        pending: dict[str, list[tuple[float, float, float]]] = {}
        for shard_id in range(self.n_shards):
            pending.update(self._call(shard_id, "take_pending", session_id))
        if not pending:
            return 0
        deltas = []
        for cid, records in pending.items():
            ts, xs, ys = zip(*records)
            deltas.append(Trajectory(ts, xs, ys, cid, sort=True))
        flushed = self._state.store.append(deltas)
        self._state.metrics.inc("store_flushes_total")
        self._state.metrics.inc("store_flushed_records_total", flushed)
        return flushed

    def expire_idle(self, now: float | None = None) -> list[str]:
        """TTL-expire idle sessions everywhere (flushing first if stored)."""
        if now is None:
            now = self._state.clock()
        expired = [
            sid
            for sid, entry in self.sessions.items()
            if now - entry.last_used_at > self._state.session_ttl_s
        ]
        for sid in expired:
            if self._state.store is not None:
                self.flush_session(sid)
            for shard_id in range(self.n_shards):
                self._call(shard_id, "drop_session", sid)
            del self.sessions[sid]
        if expired:
            self._state.metrics.inc("sessions_expired_total", len(expired))
        return expired

    # ------------------------------------------------------------------
    # Introspection / aggregation
    # ------------------------------------------------------------------
    def ensure_alive(self) -> None:
        """Ping every shard, respawning any dead worker (sweeper hook)."""
        for shard_id in range(self.n_shards):
            self._call(shard_id, "ping")

    def worker_status(self) -> list[dict]:
        """Live per-worker status for ``/v1/healthz`` (active ping)."""
        status = []
        for shard_id in range(self.n_shards):
            try:
                reply = self._call(shard_id, "ping")
                status.append(
                    {
                        "shard": shard_id,
                        "pid": reply["pid"],
                        "alive": True,
                        "pool_size": reply["pool_size"],
                        "sessions": reply["sessions"],
                        "restarts": self._restarts[shard_id],
                    }
                )
            except WorkerCrashedError:
                status.append(
                    {
                        "shard": shard_id,
                        "pid": self._handles[shard_id].pid,
                        "alive": False,
                        "pool_size": len(self._plans[shard_id].global_indices),
                        "sessions": 0,
                        "restarts": self._restarts[shard_id],
                    }
                )
        return status

    def metrics_payloads(self) -> dict[int, dict]:
        """Per-shard ``{"counters", "histograms"}`` snapshots.

        A shard whose worker cannot answer even after a respawn is
        omitted — ``/v1/metrics`` then simply lacks that shard's
        labelled series for the scrape.
        """
        payloads: dict[int, dict] = {}
        for shard_id in range(self.n_shards):
            try:
                payloads[shard_id] = self._call(shard_id, "metrics")
            except WorkerCrashedError:
                continue
        return payloads
