"""Candidate-pool sharding: hash ring, partitioning, worker protocol.

The multi-worker daemon (see :mod:`repro.service.supervisor`) splits
the resident candidate pool across ``fork``ed worker processes and
turns ``/link`` into a scatter-gather.  This module holds the pieces
that are pure enough to test without forking:

* a **consistent-hash ring** over the spatio-temporal index's packed
  cell keys (:func:`repro.store.stindex.pack_cell_keys`): each pool
  trajectory's *home cell* — the cell of its first record at
  :attr:`~repro.config.FTLConfig.shard_cell_size_m` resolution — maps
  to a shard, so spatially co-located candidates (the ones that block
  together) tend to stay together and ring perturbations move few keys;
* :func:`partition_pool`, which turns a pool into per-shard lists of
  **global pool indices** (ascending within each shard — the invariant
  the merge's tie-breaking rests on);
* a length-prefixed pickle **framing** over ``socketpair`` and the
  blocking worker loop :func:`run_worker` / parent-side
  :class:`ShardHandle`;
* :func:`merge_partials` with the correctness argument for why the
  merged top-k equals the single-process ranking bit for bit.

**Merge correctness.**  Every per-candidate statistic the engine
computes (``p_rejection``, ``p_acceptance``, ``score``) depends only on
the (query, candidate, options) triple — the batched kernels are
bit-identical to the per-pair reference regardless of batch composition
(property-tested in ``tests/test_kernels.py``) — so a candidate's
evidence is the same whether its shard holds 3 or 3000 neighbours.
Single-process ranking sorts the matched set with a *stable* sort on
descending score over a pool-ordered list, i.e. orders by
``(-score, pool_index)``.  Workers link against their local slice with
each trajectory re-identified by its **global** pool index, so partial
rankings arrive with exact global positions; sorting the concatenation
by ``(-score, global_index)`` reproduces the single-process order
exactly.  Per-shard ``top_k`` truncation is lossless: any candidate in
the global top k ranks at most k-th within its own shard under the same
comparator.  The equivalence is property-tested across shard counts and
both methods in ``tests/test_shard.py``.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import pickle
import socket
import struct
import time
from dataclasses import dataclass, replace

from repro.core.engine import Candidate, LinkOptions, LinkRequest, LinkResult
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError, WorkerCrashedError
from repro.store.stindex import pack_cell_keys

#: Virtual nodes per shard on the hash ring; enough for an even spread
#: at single-digit shard counts without bloating ring construction.
DEFAULT_VNODES = 64

#: Frame header: one unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")

#: Hard cap on one framed message (guards against a corrupt length).
_MAX_FRAME_BYTES = 1 << 30


def stable_hash(key: object) -> int:
    """A 64-bit hash of ``key`` stable across processes and runs.

    ``hash()`` is salted per process (``PYTHONHASHSEED``), which would
    scatter the same pool differently in every worker generation;
    blake2b of the repr is not.
    """
    raw = repr(key).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing: keys -> shards via virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit ring; a key is
    owned by the first point clockwise from its hash.  Adding or
    removing one shard relocates only the keys whose owning arc
    changed (~1/n of them), which is what keeps ingest routing stable
    when a deployment resizes.
    """

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ValidationError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = int(n_shards)
        points = [
            (stable_hash(f"shard:{shard}:vnode:{v}"), shard)
            for shard in range(self.n_shards)
            for v in range(vnodes)
        ]
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: object) -> int:
        """The shard owning ``key`` (any hashable/reprable value)."""
        if self.n_shards == 1:
            return 0
        idx = bisect.bisect_right(self._hashes, stable_hash(key))
        if idx == len(self._hashes):
            idx = 0
        return self._owners[idx]


def home_shard(
    ring: HashRing, trajectory: Trajectory, cell_size_m: float
) -> int:
    """The shard owning a trajectory, via its home cell.

    The home cell is the packed grid cell of the trajectory's *first*
    record — a stable spatial key that keeps co-located candidates on
    the same shard.  Empty trajectories and out-of-range coordinates
    fall back to hashing the trajectory id.
    """
    if len(trajectory) > 0:
        keys = pack_cell_keys(
            trajectory.xs[:1], trajectory.ys[:1], cell_size_m
        )
        if keys is not None:
            return ring.shard_for(f"cell:{int(keys[0])}")
    return ring.shard_for(f"id:{trajectory.traj_id!r}")


def partition_pool(
    pool: list[Trajectory], ring: HashRing, cell_size_m: float
) -> list[list[int]]:
    """Global pool indices per shard (ascending; disjoint; covering).

    Ascending order within each shard is load-bearing: workers link
    against their slice in global-index order, so stable same-score
    ties inside a shard already agree with the global
    ``(-score, global_index)`` merge order.
    """
    partitions: list[list[int]] = [[] for _ in range(ring.n_shards)]
    for index, trajectory in enumerate(pool):
        partitions[home_shard(ring, trajectory, cell_size_m)].append(index)
    return partitions


def reindexed(trajectory: Trajectory, global_index: int) -> Trajectory:
    """A view of ``trajectory`` whose id is its global pool index.

    Shares the underlying record arrays (no copy).  Workers link
    against re-identified slices so every partial-ranking entry carries
    its exact global pool position; the coordinator swaps the real id
    back in after the merge.
    """
    # Records are already validated and time-sorted; bypass __init__ so
    # re-identifying a large pool at fork time costs O(1) per trajectory.
    clone = Trajectory.__new__(Trajectory)
    clone._ts = trajectory._ts
    clone._xs = trajectory._xs
    clone._ys = trajectory._ys
    clone._traj_id = global_index
    return clone


# ----------------------------------------------------------------------
# Framing (length-prefixed pickle over a socketpair)
# ----------------------------------------------------------------------
def send_msg(sock: socket.socket, obj: object) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("peer closed the shard socket")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> object:
    (length,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    if length > _MAX_FRAME_BYTES:
        raise EOFError(f"shard frame of {length} bytes exceeds the cap")
    return pickle.loads(_recv_exactly(sock, length))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def shard_link_matches(
    engine,
    local_pool: list[Trajectory],
    units: list[tuple[Trajectory, LinkOptions | None]],
    default_options: LinkOptions,
) -> list[list[Candidate]]:
    """One shard's partial rankings for a batch of pool-backed queries.

    ``local_pool`` must already be re-identified by global pool index
    (see :func:`reindexed`); the returned :class:`Candidate` entries
    therefore carry global indices as their ``candidate_id``.  Exposed
    separately from the socket loop so the merge-equivalence property
    tests exercise the exact serving code without forking.
    """
    requests = [
        LinkRequest(query=query, options=options) for query, options in units
    ]
    results = engine.link_requests(
        requests, default_pool=local_pool, options=default_options
    )
    return [list(result.candidates) for result in results]


def run_worker(
    sock: socket.socket,
    state,
    shard_id: int,
    spans: bool = True,
) -> None:
    """The blocking shard-worker loop (runs in the forked child).

    ``state`` is a :class:`~repro.service.state.ServiceState` whose
    ``pool`` is the shard's re-identified slice and whose sessions
    buffer pending records (``collect_pending``).  The loop answers
    ``(op, payload)`` frames with ``("ok", result)`` or
    ``("error", exception)`` and exits on socket EOF — the coordinator
    closing its end (shutdown or crash) is the worker's cue to die.
    """
    from repro import obs

    if spans:
        obs.bind_sink(obs.MetricsSpanSink(state.metrics))
    # Drift evidence accumulates worker-side (the engine runs here);
    # the coordinator pulls snapshots via the "metrics" op and merges
    # them fleet-wide before rendering the ftl_model_drift gauges.
    obs.bind_evidence_sink(state.evidence)
    while True:
        try:
            op, payload = recv_msg(sock)
        except (EOFError, OSError):
            break
        try:
            result = _dispatch_op(state, shard_id, op, payload)
        except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
            try:
                send_msg(sock, ("error", exc))
            except (OSError, pickle.PicklingError):
                send_msg(sock, ("error", RuntimeError(repr(exc))))
            continue
        send_msg(sock, ("ok", result))
        if op == "shutdown":
            break


def _dispatch_op(state, shard_id: int, op: str, payload) -> object:
    if op == "ping" or op == "health" or op == "shutdown":
        return {
            "shard": shard_id,
            "pid": os.getpid(),
            "pool_size": len(state.pool),
            "sessions": len(state.sessions),
        }
    if op == "link":
        started = time.monotonic()
        matches = shard_link_matches(
            state.engine, state.pool, payload, state.options
        )
        return {
            "shard": shard_id,
            "pid": os.getpid(),
            "n_candidates": len(state.pool),
            "elapsed_ms": round((time.monotonic() - started) * 1e3, 3),
            "matches": matches,
        }
    if op == "ingest":
        entry = state.ingest(
            payload["session"],
            payload["query_records"],
            payload["candidate_records"],
            expire_before=payload["expire_before"],
        )
        # The coordinator reassembles the legacy response counts from
        # these: query records are broadcast (any shard knows the
        # retained count), candidates are partitioned (counts sum).
        return {
            "shard": shard_id,
            "n_candidates": entry.linker.n_candidates,
            "n_query_records": entry.linker.n_query_records,
        }
    if op == "decisions":
        entry = state.sessions.get(payload)
        if entry is None:
            return []
        return [
            {
                "candidate_id": d.candidate_id,
                "same_person": d.same_person,
                "log_posterior_ratio": d.log_posterior_ratio,
                "n_mutual": d.n_mutual,
                "n_incompatible": d.n_incompatible,
            }
            for d in entry.linker.decisions()
        ]
    if op == "score_pairs":
        # Standing-query re-scoring: the coordinator ships the current
        # candidate trajectories (the worker's resident pool is a
        # frozen fork-time slice) and names the ids whose cached
        # profiles are stale from the flush/eviction being applied.
        state.engine.invalidate_profiles(payload["invalidate"])
        result = state.engine.link_requests(
            [
                LinkRequest(
                    payload["query"],
                    candidates=tuple(payload["candidates"]),
                    options=payload["options"],
                )
            ]
        )[0]
        return list(result.candidates)
    if op == "take_pending":
        return state.take_pending(payload)
    if op == "drop_session":
        state.sessions.pop(payload, None)
        return {"shard": shard_id}
    if op == "metrics":
        counters, histograms = state.metrics.snapshots()
        return {
            "counters": counters,
            "histograms": histograms,
            "evidence": state.evidence.snapshot(),
        }
    if op == "swap_model":
        # Model hot-swap broadcast.  The coordinator ships to_dict()
        # payloads (not pickled models): both models are rebuilt from
        # their count tables + config snapshot, so the worker's engine
        # is provably the same pure function of the artifact as the
        # coordinator's — partial rankings stay bit-identical.
        from repro.core.engine import LinkEngine
        from repro.core.models import CompatibilityModel

        mr = CompatibilityModel.from_dict(payload["rejection"])
        ma = CompatibilityModel.from_dict(payload["acceptance"])
        state.adopt_engine(
            LinkEngine(mr, ma, options=state.options),
            payload.get("artifact_id"),
        )
        return {
            "shard": shard_id,
            "pid": os.getpid(),
            "model_artifact": payload.get("artifact_id"),
        }
    raise ValidationError(f"unknown shard op {op!r}")


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardHandle:
    """Coordinator-side handle of one forked shard worker.

    One blocking request/response round trip at a time per handle (a
    lock serialises callers — the supervisor's scatter pool gives each
    shard its own thread).  Any transport failure is surfaced as
    :class:`~repro.errors.WorkerCrashedError`; the supervisor owns
    respawn policy.
    """

    def __init__(self, shard_id: int, sock: socket.socket, pid: int) -> None:
        import threading

        self.shard_id = shard_id
        self.pid = pid
        self._sock = sock
        self._lock = threading.Lock()
        self._broken = False

    @property
    def broken(self) -> bool:
        return self._broken

    def call(self, op: str, payload: object = None) -> object:
        with self._lock:
            if self._broken:
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker (pid {self.pid}) is down"
                )
            try:
                send_msg(self._sock, (op, payload))
                status, result = recv_msg(self._sock)
            except (OSError, EOFError) as exc:
                self._broken = True
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker (pid {self.pid}) died "
                    f"mid-operation: {exc}"
                ) from None
        if status == "error":
            raise result
        return result

    def close(self) -> None:
        self._broken = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


@dataclass(frozen=True)
class ShardPlan:
    """One shard's share of the pool: global indices + re-ID'd slice."""

    shard_id: int
    global_indices: tuple[int, ...]
    local_pool: tuple[Trajectory, ...]


def plan_shards(
    pool: list[Trajectory], ring: HashRing, cell_size_m: float
) -> list[ShardPlan]:
    """Partition the pool and pre-build each shard's re-ID'd slice."""
    plans = []
    for shard_id, indices in enumerate(partition_pool(pool, ring, cell_size_m)):
        plans.append(
            ShardPlan(
                shard_id=shard_id,
                global_indices=tuple(indices),
                local_pool=tuple(
                    reindexed(pool[index], index) for index in indices
                ),
            )
        )
    return plans


def merge_partials(
    partials: list[list[Candidate]],
    pool_ids: list[object],
    query_id: object,
    options: LinkOptions,
) -> LinkResult:
    """Merge per-shard partial rankings into the global result.

    ``partials`` hold :class:`Candidate` entries whose ``candidate_id``
    is the *global pool index*; the merged order is
    ``(-score, global_index)`` — exactly the single-process stable
    sort's order (see the module docstring) — truncated to ``top_k``
    and re-identified with the real pool ids.
    """
    merged: list[Candidate] = []
    for partial in partials:
        merged.extend(partial)
    merged.sort(key=lambda c: (-c.score, c.candidate_id))
    if options.top_k is not None:
        merged = merged[: options.top_k]
    return LinkResult(
        query_id=query_id,
        method=options.method,
        candidates=tuple(
            replace(c, candidate_id=pool_ids[c.candidate_id]) for c in merged
        ),
    )
