"""Exception hierarchy for the FTL reproduction.

All library-raised exceptions derive from :class:`FTLError` so callers can
catch one base type.  Input problems raise subclasses of
:class:`ValidationError`; algorithmic misuse (e.g. querying an unfitted
model) raises :class:`StateError`.
"""

from __future__ import annotations


class FTLError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(FTLError, ValueError):
    """Invalid user input (bad parameter value, malformed record, ...)."""


class EmptyTrajectoryError(ValidationError):
    """An operation required a non-empty trajectory."""


class UnsortedRecordsError(ValidationError):
    """Records supplied to a trajectory were not in time order."""


class StateError(FTLError, RuntimeError):
    """Operation called in the wrong object state (e.g. unfitted model)."""


class NotFittedError(StateError):
    """A model was used before being fitted."""


class DataFormatError(ValidationError):
    """A file being loaded does not match the expected format."""


class StoreError(FTLError):
    """Base class for errors raised by the persistent trajectory store."""


class StoreFormatError(StoreError, DataFormatError):
    """An on-disk store directory does not match the expected layout."""


class StaleIndexError(StoreError, StateError):
    """A persisted blocking index no longer matches its store snapshot."""


class ServiceError(FTLError):
    """Base class for errors raised by the linking service layer."""


class ProtocolError(ServiceError, ValidationError):
    """A request violates the wire protocol (malformed JSON, bad schema)."""


class PayloadTooLargeError(ProtocolError):
    """A request body exceeds the service's configured size limit."""


class ServiceOverloadedError(ServiceError):
    """The service's request queue is full; retry later (HTTP 503)."""


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before it could be served (HTTP 504)."""


class WorkerCrashedError(ServiceError):
    """A shard worker process died mid-operation.

    The supervisor respawns the worker and retries the operation once;
    this surfaces only when the retry also fails, at which point the
    request is answered with an internal error rather than hanging.
    """


class RemoteServiceError(ServiceError):
    """A service call failed server-side; carries the wire error payload.

    Raised by :class:`repro.service.client.ServiceClient` when the
    daemon answers with a non-2xx status.  ``status`` is the HTTP
    status code and ``payload`` the structured error body.
    """

    def __init__(self, status: int, payload: dict | None = None) -> None:
        self.status = int(status)
        self.payload = payload or {}
        error = self.payload.get("error", {})
        message = error.get("message", "service call failed")
        kind = error.get("type", "ServiceError")
        super().__init__(f"[{self.status}] {kind}: {message}")
