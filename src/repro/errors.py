"""Exception hierarchy for the FTL reproduction.

All library-raised exceptions derive from :class:`FTLError` so callers can
catch one base type.  Input problems raise subclasses of
:class:`ValidationError`; algorithmic misuse (e.g. querying an unfitted
model) raises :class:`StateError`.
"""

from __future__ import annotations


class FTLError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(FTLError, ValueError):
    """Invalid user input (bad parameter value, malformed record, ...)."""


class EmptyTrajectoryError(ValidationError):
    """An operation required a non-empty trajectory."""


class UnsortedRecordsError(ValidationError):
    """Records supplied to a trajectory were not in time order."""


class StateError(FTLError, RuntimeError):
    """Operation called in the wrong object state (e.g. unfitted model)."""


class NotFittedError(StateError):
    """A model was used before being fitted."""


class DataFormatError(ValidationError):
    """A file being loaded does not match the expected format."""
