"""Hypothesis-testing p-values for the (alpha1, alpha2)-filtering scheme.

Under either model, the number ``K`` of incompatible mutual segments in
an aligned pair follows a Poisson-Binomial law parameterised by the
model's per-bucket probabilities ``(s^(l_1), ..., s^(l_n))`` (paper
Section IV-D).

The two tests look at opposite tails:

* **rejection p-value** ``p1 = Pr(K >= k_obs | Mr)`` — small when the
  observed pair has *more* incompatibilities than a same-person pair
  can explain; the alpha1-rejection phase prunes when ``p1 < alpha1``.
* **acceptance p-value** ``p2 = Pr(K <= k_obs | Ma)`` — small when the
  pair has *fewer* incompatibilities than different persons would
  produce; the alpha2-acceptance phase accepts when ``p2 < alpha2``.

This tail choice makes the paper's monotonicity statements hold
(raising alpha1 or lowering alpha2 is stricter) and makes the ranking
score ``v = p1 * (1 - p2)`` largest for true matches.

Mutual segments at or beyond the model horizon are excluded: both
models give them incompatibility probability 0, so they carry no
information (they are almost surely compatible in the data as well
whenever ``horizon >= city diameter / Vmax``).
"""

from __future__ import annotations

import numpy as np

from repro.core.alignment import MutualSegmentProfile
from repro.core.models import CompatibilityModel
from repro.errors import ValidationError
from repro.stats.poisson_binomial import PoissonBinomial, pb_pmf_batch


def _test_arrays(
    profile: MutualSegmentProfile, model: CompatibilityModel
) -> tuple[np.ndarray, int]:
    """Per-segment model probabilities and the observed count, in-horizon."""
    within = profile.within_horizon(model.n_buckets)
    ps = model.probs_for(within.buckets)
    return ps, within.n_incompatible


def rejection_pvalue_arrays(ps: np.ndarray, k_obs: int, backend: str) -> float:
    """``p1 = Pr(K >= k_obs)`` from pre-gathered per-segment probabilities.

    The array form used by the batch engine: ``ps`` are the rejection
    model's in-horizon probabilities of one pair, in segment order.
    Returns 1.0 for an empty observation (vacuous: nothing contradicts
    the same-person hypothesis).
    """
    if ps.size == 0:
        return 1.0
    return PoissonBinomial(ps, backend=backend).sf(k_obs)


def acceptance_pvalue_arrays(ps: np.ndarray, k_obs: int, backend: str) -> float:
    """``p2 = Pr(K <= k_obs)`` from pre-gathered per-segment probabilities.

    Returns 1.0 for an empty observation: with no evidence the
    different-person hypothesis can never be rejected, so such pairs
    are never accepted.
    """
    if ps.size == 0:
        return 1.0
    return PoissonBinomial(ps, backend=backend).cdf(k_obs)


def rejection_pvalue_batch(
    ps_list: list[np.ndarray],
    k_obs: list[int],
    backend: str,
    kernel: str | None = None,
) -> list[float]:
    """``p1`` for many pairs at once; bit-identical to the scalar loop.

    With the exact ``"dp"`` backend all Poisson-Binomial pmfs are run
    through one batched convolution (``pb_pmf_batch`` on the given
    ``kernel``) and each tail is then read off with the same slice-sum
    as ``PoissonBinomial.sf``; other backends fall back to the per-pair
    path (their tails are not pmf-slice sums).
    """
    if backend != "dp":
        return [
            rejection_pvalue_arrays(ps, k, backend)
            for ps, k in zip(ps_list, k_obs)
        ]
    pmfs = pb_pmf_batch(ps_list, backend="dp", kernel=kernel)
    out = []
    for ps, pmf, k in zip(ps_list, pmfs, k_obs):
        n = ps.size
        if n == 0:
            out.append(1.0)
        elif k <= 0:
            out.append(1.0)
        elif k > n:
            out.append(0.0)
        else:
            out.append(float(min(pmf[k:].sum(), 1.0)))
    return out


def acceptance_pvalue_batch(
    ps_list: list[np.ndarray],
    k_obs: list[int],
    backend: str,
    kernel: str | None = None,
) -> list[float]:
    """``p2`` for many pairs at once; bit-identical to the scalar loop."""
    if backend != "dp":
        return [
            acceptance_pvalue_arrays(ps, k, backend)
            for ps, k in zip(ps_list, k_obs)
        ]
    pmfs = pb_pmf_batch(ps_list, backend="dp", kernel=kernel)
    out = []
    for ps, pmf, k in zip(ps_list, pmfs, k_obs):
        n = ps.size
        if n == 0:
            out.append(1.0)
        elif k < 0:
            out.append(0.0)
        elif k >= n:
            out.append(1.0)
        else:
            out.append(float(min(pmf[: k + 1].sum(), 1.0)))
    return out


def rejection_pvalue(
    profile: MutualSegmentProfile,
    rejection_model: CompatibilityModel,
    backend: str | None = None,
) -> float:
    """``p1 = Pr(K >= k_obs)`` under the rejection model.

    Returns 1.0 for pairs with no in-horizon mutual segments (vacuous
    observation: nothing contradicts the same-person hypothesis).
    """
    if rejection_model.kind != "rejection":
        raise ValidationError("rejection_pvalue needs a rejection model")
    ps, k_obs = _test_arrays(profile, rejection_model)
    used = backend if backend is not None else rejection_model.config.pb_backend
    return rejection_pvalue_arrays(ps, k_obs, used)


def acceptance_pvalue(
    profile: MutualSegmentProfile,
    acceptance_model: CompatibilityModel,
    backend: str | None = None,
) -> float:
    """``p2 = Pr(K <= k_obs)`` under the acceptance model.

    Returns 1.0 for pairs with no in-horizon mutual segments: with no
    evidence, the different-person hypothesis can never be rejected, so
    such pairs are never accepted.
    """
    if acceptance_model.kind != "acceptance":
        raise ValidationError("acceptance_pvalue needs an acceptance model")
    ps, k_obs = _test_arrays(profile, acceptance_model)
    used = backend if backend is not None else acceptance_model.config.pb_backend
    return acceptance_pvalue_arrays(ps, k_obs, used)
