"""Hypothesis-testing p-values for the (alpha1, alpha2)-filtering scheme.

Under either model, the number ``K`` of incompatible mutual segments in
an aligned pair follows a Poisson-Binomial law parameterised by the
model's per-bucket probabilities ``(s^(l_1), ..., s^(l_n))`` (paper
Section IV-D).

The two tests look at opposite tails:

* **rejection p-value** ``p1 = Pr(K >= k_obs | Mr)`` — small when the
  observed pair has *more* incompatibilities than a same-person pair
  can explain; the alpha1-rejection phase prunes when ``p1 < alpha1``.
* **acceptance p-value** ``p2 = Pr(K <= k_obs | Ma)`` — small when the
  pair has *fewer* incompatibilities than different persons would
  produce; the alpha2-acceptance phase accepts when ``p2 < alpha2``.

This tail choice makes the paper's monotonicity statements hold
(raising alpha1 or lowering alpha2 is stricter) and makes the ranking
score ``v = p1 * (1 - p2)`` largest for true matches.

Mutual segments at or beyond the model horizon are excluded: both
models give them incompatibility probability 0, so they carry no
information (they are almost surely compatible in the data as well
whenever ``horizon >= city diameter / Vmax``).
"""

from __future__ import annotations

import numpy as np

from repro.core.alignment import MutualSegmentProfile
from repro.core.models import CompatibilityModel
from repro.errors import ValidationError
from repro.stats.poisson_binomial import PoissonBinomial


def _test_arrays(
    profile: MutualSegmentProfile, model: CompatibilityModel
) -> tuple[np.ndarray, int]:
    """Per-segment model probabilities and the observed count, in-horizon."""
    within = profile.within_horizon(model.n_buckets)
    ps = model.probs_for(within.buckets)
    return ps, within.n_incompatible


def rejection_pvalue(
    profile: MutualSegmentProfile,
    rejection_model: CompatibilityModel,
    backend: str | None = None,
) -> float:
    """``p1 = Pr(K >= k_obs)`` under the rejection model.

    Returns 1.0 for pairs with no in-horizon mutual segments (vacuous
    observation: nothing contradicts the same-person hypothesis).
    """
    if rejection_model.kind != "rejection":
        raise ValidationError("rejection_pvalue needs a rejection model")
    ps, k_obs = _test_arrays(profile, rejection_model)
    if ps.size == 0:
        return 1.0
    used = backend if backend is not None else rejection_model.config.pb_backend
    return PoissonBinomial(ps, backend=used).sf(k_obs)


def acceptance_pvalue(
    profile: MutualSegmentProfile,
    acceptance_model: CompatibilityModel,
    backend: str | None = None,
) -> float:
    """``p2 = Pr(K <= k_obs)`` under the acceptance model.

    Returns 1.0 for pairs with no in-horizon mutual segments: with no
    evidence, the different-person hypothesis can never be rejected, so
    such pairs are never accepted.
    """
    if acceptance_model.kind != "acceptance":
        raise ValidationError("acceptance_pvalue needs an acceptance model")
    ps, k_obs = _test_arrays(profile, acceptance_model)
    if ps.size == 0:
        return 1.0
    used = backend if backend is not None else acceptance_model.config.pb_backend
    return PoissonBinomial(ps, backend=used).cdf(k_obs)
