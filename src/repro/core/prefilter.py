"""Candidate pre-filters: cheap pruning before the statistical tests.

FTL evidence lives entirely in mutual segments with small time gaps, so
a candidate whose observation window barely overlaps the query's — or
whose record density near the query's records is too low — cannot be
confidently accepted no matter what the tests say.  These pre-filters
exploit that to skip the (comparatively expensive) Poisson-Binomial
evaluation for hopeless candidates, a first step toward the paper's
future-work goal of large-scale linking.

Pre-filters are *conservative*: they may only drop candidates that
could not have produced enough in-horizon mutual segments to be
accepted anyway, so they trade a bounded amount of perceptiveness for
throughput.  ``NullPrefilter`` keeps everything (the default).
"""

from __future__ import annotations

import numpy as np

from repro.config import FTLConfig
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


class NullPrefilter:
    """Keep every candidate (the exhaustive behaviour of the paper)."""

    def keep(self, query: Trajectory, candidate: Trajectory) -> bool:
        return True

    def __repr__(self) -> str:
        return "NullPrefilter()"


class TimeOverlapPrefilter:
    """Require the two observation windows to overlap by a minimum time.

    Parameters
    ----------
    min_overlap_s:
        Least overlap of ``[start, end]`` windows, in seconds.  Pairs
        below it generate mutual segments only at the single junction
        point — essentially no evidence.
    """

    def __init__(self, min_overlap_s: float) -> None:
        if min_overlap_s < 0:
            raise ValidationError(
                f"min_overlap_s must be >= 0, got {min_overlap_s}"
            )
        self._min_overlap_s = float(min_overlap_s)

    @property
    def min_overlap_s(self) -> float:
        return self._min_overlap_s

    def keep(self, query: Trajectory, candidate: Trajectory) -> bool:
        if len(query) == 0 or len(candidate) == 0:
            return False
        overlap = min(query.end_time, candidate.end_time) - max(
            query.start_time, candidate.start_time
        )
        return overlap >= self._min_overlap_s

    def __repr__(self) -> str:
        return f"TimeOverlapPrefilter(min_overlap_s={self._min_overlap_s})"


class SpatialOverlapPrefilter:
    """Require the trajectories' bounding boxes to come within a margin.

    Two trajectories whose record envelopes never approach each other
    closer than ``margin_m`` cannot produce an *incompatibility-free*
    short-gap mutual segment pattern typical of a same-person pair — a
    cheap spatial screen before the statistical tests.  Note this is a
    heuristic (unlike the time filters it can in principle drop a true
    match whose two services cover disjoint areas); the default margin
    is generous.
    """

    def __init__(self, margin_m: float = 5_000.0) -> None:
        if margin_m < 0:
            raise ValidationError(f"margin_m must be >= 0, got {margin_m}")
        self._margin_m = float(margin_m)

    @property
    def margin_m(self) -> float:
        return self._margin_m

    def keep(self, query: Trajectory, candidate: Trajectory) -> bool:
        if len(query) == 0 or len(candidate) == 0:
            return False
        gap_x = max(
            float(candidate.xs.min()) - float(query.xs.max()),
            float(query.xs.min()) - float(candidate.xs.max()),
            0.0,
        )
        gap_y = max(
            float(candidate.ys.min()) - float(query.ys.max()),
            float(query.ys.min()) - float(candidate.ys.max()),
            0.0,
        )
        return float(np.hypot(gap_x, gap_y)) <= self._margin_m

    def __repr__(self) -> str:
        return f"SpatialOverlapPrefilter(margin_m={self._margin_m})"


class MutualSegmentCountPrefilter:
    """Require a minimum number of in-horizon mutual segments.

    Counts, without computing any distances, how many adjacent pairs in
    the merged timestamp sequence cross sources with a gap below the
    config horizon.  Pairs with fewer than ``min_segments`` such
    segments cannot carry enough evidence for a confident decision.
    """

    def __init__(self, config: FTLConfig, min_segments: int = 1) -> None:
        if min_segments < 1:
            raise ValidationError(f"min_segments must be >= 1, got {min_segments}")
        self._config = config
        self._min_segments = int(min_segments)

    @property
    def min_segments(self) -> int:
        return self._min_segments

    def keep(self, query: Trajectory, candidate: Trajectory) -> bool:
        n_p, n_q = len(query), len(candidate)
        if n_p == 0 or n_q == 0:
            return False
        ts = np.concatenate([query.ts, candidate.ts])
        sources = np.empty(n_p + n_q, dtype=np.int8)
        sources[:n_p] = 0
        sources[n_p:] = 1
        order = np.argsort(ts, kind="stable")
        ts_sorted = ts[order]
        src_sorted = sources[order]
        mutual = src_sorted[1:] != src_sorted[:-1]
        gaps = np.diff(ts_sorted)
        in_horizon = mutual & (gaps < self._config.horizon_s)
        return int(np.count_nonzero(in_horizon)) >= self._min_segments

    def __repr__(self) -> str:
        return (
            f"MutualSegmentCountPrefilter(min_segments={self._min_segments})"
        )
