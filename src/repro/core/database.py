"""Trajectory databases: named collections of trajectories.

The paper's setting has two databases ``P`` (queries) and ``Q``
(candidates).  :class:`TrajectoryDatabase` is an ordered mapping from
trajectory id to :class:`~repro.core.trajectory.Trajectory` with the
summary statistics reported in the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.core.trajectory import Trajectory
from repro.geo.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class DatabaseStats:
    """Summary statistics of a database (the Table I columns).

    ``mean_gap_hours`` / ``std_gap_hours`` describe inter-record time
    differences pooled across all trajectories, in hours, matching the
    paper's "mean/stdv of timediff" rows.
    """

    n_trajectories: int
    mean_length: float
    std_length: float
    mean_gap_hours: float
    std_gap_hours: float

    def as_rows(self) -> list[tuple[str, float]]:
        """Label/value pairs in Table I row order."""
        return [
            ("mean of |T|", self.mean_length),
            ("stdv. of |T|", self.std_length),
            ("mean of timediff (hours)", self.mean_gap_hours),
            ("stdv. of timediff (hours)", self.std_gap_hours),
        ]


class TrajectoryDatabase:
    """An insertion-ordered collection of trajectories keyed by id.

    Parameters
    ----------
    trajectories:
        Trajectories to add; each must carry a unique, non-None
        ``traj_id``.
    name:
        Optional human-readable label (e.g. ``"CDR"`` or ``"commuter"``).
    """

    def __init__(
        self, trajectories: Iterable[Trajectory] = (), name: str = ""
    ) -> None:
        self._name = name
        self._trajs: dict[object, Trajectory] = {}
        for traj in trajectories:
            self.add(traj)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls, store: object, name: str | None = None
    ) -> "TrajectoryDatabase":
        """A database backed by a persistent :mod:`repro.store` directory.

        ``store`` is either an opened
        :class:`~repro.store.TrajectoryStore` or a path to one.  The
        returned trajectories wrap read-only ``numpy.memmap`` views of
        the store's columnar files (zero-copy for compacted stores), so
        opening a large database costs metadata only — record pages
        fault in as the engine touches them.
        """
        from repro.store.store import TrajectoryStore

        if not isinstance(store, TrajectoryStore):
            store = TrajectoryStore.open(store)
        return store.load(name=name)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, trajectory: Trajectory) -> None:
        """Add a trajectory; its id must be set and unused."""
        traj_id = trajectory.traj_id
        if traj_id is None:
            raise ValidationError("trajectories in a database need a non-None id")
        if traj_id in self._trajs:
            raise ValidationError(f"duplicate trajectory id {traj_id!r}")
        self._trajs[traj_id] = trajectory

    def remove(self, traj_id: object) -> Trajectory:
        """Remove and return the trajectory with the given id."""
        try:
            return self._trajs.pop(traj_id)
        except KeyError:
            raise ValidationError(f"no trajectory with id {traj_id!r}") from None

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trajs)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajs.values())

    def __contains__(self, traj_id: object) -> bool:
        return traj_id in self._trajs

    def __getitem__(self, traj_id: object) -> Trajectory:
        try:
            return self._trajs[traj_id]
        except KeyError:
            raise KeyError(f"no trajectory with id {traj_id!r}") from None

    def get(self, traj_id: object, default: Trajectory | None = None) -> Trajectory | None:
        return self._trajs.get(traj_id, default)

    def ids(self) -> list[object]:
        """All trajectory ids in insertion order."""
        return list(self._trajs.keys())

    def items(self) -> Iterator[tuple[object, Trajectory]]:
        return iter(self._trajs.items())

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"TrajectoryDatabase({label} n={len(self)})"

    @property
    def name(self) -> str:
        return self._name

    # ------------------------------------------------------------------
    # Statistics / transforms
    # ------------------------------------------------------------------
    def total_records(self) -> int:
        """Total number of records across all trajectories."""
        return sum(len(t) for t in self)

    def stats(self) -> DatabaseStats:
        """Table I-style summary statistics of this database."""
        lengths = np.array([len(t) for t in self], dtype=np.float64)
        all_gaps = [t.gaps() for t in self if len(t) >= 2]
        gaps = (
            np.concatenate(all_gaps) if all_gaps else np.empty(0, dtype=np.float64)
        )
        gaps_h = gaps / SECONDS_PER_HOUR
        return DatabaseStats(
            n_trajectories=len(self),
            mean_length=float(lengths.mean()) if lengths.size else 0.0,
            std_length=float(lengths.std()) if lengths.size else 0.0,
            mean_gap_hours=float(gaps_h.mean()) if gaps_h.size else 0.0,
            std_gap_hours=float(gaps_h.std()) if gaps_h.size else 0.0,
        )

    def map(self, fn, name: str | None = None) -> "TrajectoryDatabase":
        """A new database with ``fn(trajectory)`` applied to every member.

        Trajectories mapped to length 0 are dropped (a down-sampled
        trajectory can lose all its records).
        """
        out = TrajectoryDatabase(name=self._name if name is None else name)
        for traj in self:
            mapped = fn(traj)
            if len(mapped) > 0:
                out.add(mapped)
        return out

    def downsample(
        self, rate: float, rng: np.random.Generator, name: str | None = None
    ) -> "TrajectoryDatabase":
        """Every trajectory down-sampled at ``rate`` (empty ones dropped)."""
        return self.map(lambda t: t.downsample(rate, rng), name=name)

    def head_duration(
        self, duration_s: float, name: str | None = None
    ) -> "TrajectoryDatabase":
        """Every trajectory trimmed to its first ``duration_s`` seconds."""
        return self.map(lambda t: t.head_duration(duration_s), name=name)

    def subset(self, traj_ids: Iterable[object], name: str | None = None) -> "TrajectoryDatabase":
        """The database restricted to the given ids (order preserved)."""
        out = TrajectoryDatabase(name=self._name if name is None else name)
        for traj_id in traj_ids:
            out.add(self[traj_id])
        return out

    def sample_ids(self, k: int, rng: np.random.Generator) -> list[object]:
        """``k`` distinct trajectory ids drawn uniformly without replacement."""
        ids = self.ids()
        if k > len(ids):
            raise ValidationError(
                f"cannot sample {k} ids from a database of {len(ids)}"
            )
        chosen = rng.choice(len(ids), size=k, replace=False)
        return [ids[i] for i in chosen]


GroundTruth = Mapping[object, object]
"""Mapping from query trajectory id (in P) to true matching id (in Q)."""
