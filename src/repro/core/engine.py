"""Profile-once batch linking engine.

The seed :class:`~repro.core.linker.FTLLinker` paid for every
``(query, candidate)`` pair twice: the decision rule (alpha-filter or
Naive-Bayes) aligned the pair and computed its p-values inside
``decide()``, and the Eq. 2 ranking step re-aligned and re-tested the
matched candidates from scratch.  At 200 candidates per query that
doubles the hot-path cost for exactly the candidates we care about.

:class:`LinkEngine` fixes this by separating *evidence extraction* from
the *matching decision* (the architecture SLIM and Basık et al. use for
large-scale spatio-temporal linkage):

1. every pair's mutual-segment profile is computed **exactly once** per
   call through an LRU :class:`ProfileCache` keyed on
   ``(query_id, candidate_id, config)``;
2. the in-horizon evidence of the whole candidate pool is gathered into
   flat NumPy arrays — one :meth:`~repro.core.models.CompatibilityModel.probs_for`
   gather and one vectorised ``log`` pass per model serve every
   candidate, instead of re-dispatching tiny per-candidate arrays;
3. both decision rules *and* the Eq. 2 ranking read from the same
   evidence arrays, and the Poisson-Binomial tail p-values are memoised
   on the in-horizon bucket content, so identical profiles (common for
   short overlaps) are tested once.

Results are bit-identical to the sequential seed path: the flattening
preserves each candidate's segment order, every per-candidate reduction
(`sum`, Poisson-Binomial convolution) runs over exactly the same float64
values in exactly the same order as the per-pair code did.

:class:`LinkOptions` is the single source of the linking hyperparameter
defaults (previously scattered over ``FTLLinker``, ``parallel`` and the
CLI)::

    opts = LinkOptions(method="alpha-filter", alpha1=0.01, alpha2=0.1)
    engine = LinkEngine(mr, ma, options=opts)
    results = engine.link_batch(queries, q_db)
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.alignment import (
    FlatPool,
    MutualSegmentProfile,
    batch_mutual_segment_profiles,
    mutual_segment_profile,
)
from repro.core.hypothesis import (
    acceptance_pvalue_batch,
    rejection_pvalue_batch,
)
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.kernels import KERNEL_BACKENDS, resolve_kernel_backend
from repro.obs import record_evidence, span

#: The two linking algorithms of the paper (Sections IV-D and IV-E).
METHODS = ("alpha-filter", "naive-bayes")

#: Default capacity of a :class:`ProfileCache` (profiles are small:
#: two arrays of one entry per mutual segment).
DEFAULT_PROFILE_CACHE_SIZE = 65536


# ----------------------------------------------------------------------
# Options
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkOptions:
    """The linking hyperparameters, in one frozen bundle.

    This is the single source of the defaults previously duplicated by
    ``FTLLinker``, ``repro.parallel`` and the CLI.

    Parameters
    ----------
    method:
        ``"alpha-filter"`` or ``"naive-bayes"``.
    alpha1:
        Significance level of the rejection phase (larger is stricter).
    alpha2:
        Significance level of the acceptance phase (smaller is stricter).
    phi_r:
        Naive-Bayes prior ``Pr(M = Mr)`` in (0, 1).
    top_k:
        When set, results are truncated to the ``top_k`` best-ranked
        candidates; ``None`` returns the full matched set.
    prefilter:
        Optional candidate pre-filter (see :mod:`repro.core.prefilter`)
        applied before the statistical tests.
    kernel_backend:
        Hot-path kernel implementation override (``"auto"``,
        ``"numba"``, ``"numpy"`` or ``"python"``; see
        :mod:`repro.kernels`).  ``None`` defers to the models'
        :attr:`~repro.config.FTLConfig.kernel_backend`.
    """

    method: str = "naive-bayes"
    alpha1: float = 0.05
    alpha2: float = 0.05
    phi_r: float = 0.01
    top_k: int | None = None
    prefilter: Any = None
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValidationError(
                f"unknown method {self.method!r}; known: {METHODS}"
            )
        if (
            self.kernel_backend is not None
            and self.kernel_backend not in KERNEL_BACKENDS
        ):
            raise ValidationError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"known: {KERNEL_BACKENDS}"
            )
        if not 0.0 <= self.alpha1 <= 1.0:
            raise ValidationError(f"alpha1 must be in [0, 1], got {self.alpha1}")
        if not 0.0 <= self.alpha2 <= 1.0:
            raise ValidationError(f"alpha2 must be in [0, 1], got {self.alpha2}")
        if not 0.0 < self.phi_r < 1.0:
            raise ValidationError(f"phi_r must be in (0, 1), got {self.phi_r}")
        if self.top_k is not None and self.top_k < 1:
            raise ValidationError(f"top_k must be >= 1 or None, got {self.top_k}")
        if self.prefilter is not None and not hasattr(self.prefilter, "keep"):
            raise ValidationError("prefilter must expose a keep(query, candidate)")

    @property
    def phi_a(self) -> float:
        return 1.0 - self.phi_r

    def with_updates(self, **changes: Any) -> "LinkOptions":
        """A copy of these options with the given fields replaced."""
        return replace(self, **changes)


#: Module-wide defaults; ``LinkOptions()`` is cheap but this names them.
DEFAULT_LINK_OPTIONS = LinkOptions()


@dataclass(frozen=True)
class LinkRequest:
    """One unit of linking work for :meth:`LinkEngine.link_requests`.

    A request bundles a query with (optionally) its own candidate pool
    and its own :class:`LinkOptions`, so heterogeneous requests — as a
    serving frontend receives them — can be coalesced into one engine
    call that shares the profile cache and tail memo across all of
    them.

    Parameters
    ----------
    query:
        The trajectory to link.
    candidates:
        The candidate pool for this request; ``None`` uses the
        ``default_pool`` passed to :meth:`LinkEngine.link_requests`.
    options:
        Per-request options; ``None`` uses the engine defaults (or the
        call-level override).
    """

    query: Trajectory
    candidates: tuple[Trajectory, ...] | None = None
    options: LinkOptions | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.query, Trajectory):
            raise ValidationError(
                f"query must be a Trajectory, got {type(self.query).__name__}"
            )
        if self.candidates is not None and not isinstance(self.candidates, tuple):
            object.__setattr__(self, "candidates", tuple(self.candidates))
        if self.options is not None and not isinstance(self.options, LinkOptions):
            raise ValidationError(
                f"options must be a LinkOptions or None, "
                f"got {type(self.options).__name__}"
            )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Candidate:
    """One returned candidate with its ranking evidence."""

    candidate_id: object
    score: float
    p_rejection: float
    p_acceptance: float
    n_mutual: int
    n_incompatible: int

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot of the candidate."""
        return {
            "candidate_id": self.candidate_id,
            "score": self.score,
            "p_rejection": self.p_rejection,
            "p_acceptance": self.p_acceptance,
            "n_mutual": self.n_mutual,
            "n_incompatible": self.n_incompatible,
        }


@dataclass(frozen=True)
class LinkResult:
    """Outcome of linking one query against a candidate database."""

    query_id: object
    method: str
    candidates: tuple[Candidate, ...]

    def candidate_ids(self) -> list[object]:
        """Candidate ids in rank order (best first)."""
        return [c.candidate_id for c in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)

    def contains(self, candidate_id: object) -> bool:
        return any(c.candidate_id == candidate_id for c in self.candidates)

    def top(self, k: int) -> tuple[Candidate, ...]:
        """The ``k`` best-ranked candidates (fewer when the set is smaller)."""
        if k < 0:
            raise ValidationError(f"k must be >= 0, got {k}")
        return self.candidates[:k]

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot of the whole result."""
        return {
            "query_id": self.query_id,
            "method": self.method,
            "candidates": [c.to_dict() for c in self.candidates],
        }


# ----------------------------------------------------------------------
# Profile cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`ProfileCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def n_computed(self) -> int:
        """Profiles actually aligned (== misses); the rest were served."""
        return self.misses


class ProfileCache:
    """LRU cache of mutual-segment profiles keyed on pair identity.

    Keys are ``(query_id, candidate_id, config)``; the
    :class:`~repro.config.FTLConfig` is a frozen dataclass and therefore
    hashable, so one cache can serve engines running under different
    configurations.  Trajectory ids are assumed stable: callers that
    mutate a trajectory while reusing its id must :meth:`clear` first.
    """

    def __init__(self, maxsize: int = DEFAULT_PROFILE_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValidationError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, MutualSegmentProfile] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self,
        query: Trajectory,
        candidate: Trajectory,
        config: FTLConfig,
        backend: str | None = None,
    ) -> MutualSegmentProfile:
        """The pair's profile, aligning the pair only on a cache miss."""
        key = (query.traj_id, candidate.traj_id, config)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return entry
        self._misses += 1
        profile = mutual_segment_profile(query, candidate, config, backend)
        self._entries[key] = profile
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1
        return profile

    def get_many(
        self,
        query: Trajectory,
        candidates: Sequence[Trajectory],
        config: FTLConfig,
        backend: str | None = None,
        flat: FlatPool | None = None,
    ) -> list[MutualSegmentProfile]:
        """Profiles of one query against many candidates, batching misses.

        Counter semantics match a loop of :meth:`get` calls exactly
        (a repeated pair id within one pool is one miss plus hits), but
        all missing pairs are aligned in a single
        :func:`~repro.core.alignment.batch_mutual_segment_profiles`
        kernel invocation instead of per-pair calls.  A prebuilt
        ``flat`` :class:`~repro.core.alignment.FlatPool` of the full
        candidate list is used when every pair misses (the cold-cache
        batch case); partial misses re-flatten just the missing subset.
        """
        results: list[MutualSegmentProfile | None] = [None] * len(candidates)
        pending: OrderedDict[tuple, list[int]] = OrderedDict()
        pending_cands: list[Trajectory] = []
        for pos, candidate in enumerate(candidates):
            key = (query.traj_id, candidate.traj_id, config)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                results[pos] = entry
            elif key in pending:
                self._hits += 1
                pending[key].append(pos)
            else:
                self._misses += 1
                pending[key] = [pos]
                pending_cands.append(candidate)
        if pending_cands:
            profiles = batch_mutual_segment_profiles(
                query,
                pending_cands,
                config,
                backend=backend,
                flat=flat if len(pending_cands) == len(candidates) else None,
            )
            for (key, positions), profile in zip(pending.items(), profiles):
                self._entries[key] = profile
                if len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1
                for pos in positions:
                    results[pos] = profile
        return results

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def invalidate(self, traj_ids) -> int:
        """Drop every entry involving any of the given trajectory ids.

        The targeted form of the :meth:`clear` contract for streaming:
        when an ingest flush or sliding-window eviction changes records
        under reused ids, only pairs touching those ids are stale.
        Matches on either side of the pair key; returns entries dropped.
        """
        stale = set(traj_ids)
        if not stale:
            return 0
        doomed = [
            key for key in self._entries
            if key[0] in stale or key[1] in stale
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            maxsize=self._maxsize,
        )


# ----------------------------------------------------------------------
# Flattened pool evidence
# ----------------------------------------------------------------------
class _PoolEvidence:
    """In-horizon evidence of one query against a candidate pool.

    All candidates' in-horizon mutual segments are concatenated into
    flat arrays (``buckets``, ``incompatible``) with slice ``offsets``;
    candidate ``i`` owns ``flat[offsets[i]:offsets[i + 1]]`` in its
    original segment order, so any per-candidate reduction over a slice
    reproduces the per-pair computation bit for bit.
    """

    __slots__ = (
        "n", "buckets", "incompatible", "offsets", "n_mutual", "n_incompatible"
    )

    def __init__(self, profiles: Sequence[MutualSegmentProfile], n_buckets: int):
        self.n = len(profiles)
        if self.n:
            bkt = np.concatenate([p.buckets for p in profiles])
            inc = np.concatenate([p.incompatible for p in profiles])
            sizes = np.fromiter(
                (p.n_total for p in profiles), dtype=np.int64, count=self.n
            )
        else:
            bkt = np.empty(0, dtype=np.int64)
            inc = np.empty(0, dtype=bool)
            sizes = np.empty(0, dtype=np.int64)
        mask = bkt < n_buckets
        self.buckets = bkt[mask]
        self.incompatible = inc[mask]
        # Per-candidate in-horizon counts -> slice offsets into the
        # compressed arrays (cumsum of the mask per original slice).
        ends = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(sizes, out=ends[1:])
        kept = np.concatenate([[0], np.cumsum(mask, dtype=np.int64)])
        self.offsets = kept[ends]
        self.n_mutual = np.diff(self.offsets)
        # Per-slice incompatible counts as one integer cumsum (exact),
        # replacing the per-candidate count_nonzero loop.
        inc_csum = np.zeros(self.incompatible.shape[0] + 1, dtype=np.int64)
        np.cumsum(self.incompatible, dtype=np.int64, out=inc_csum[1:])
        self.n_incompatible = inc_csum[self.offsets[1:]] - inc_csum[self.offsets[:-1]]

    def slice(self, arr: np.ndarray, i: int) -> np.ndarray:
        return arr[self.offsets[i]: self.offsets[i + 1]]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class LinkEngine:
    """Batch linking over a fitted ``(Mr, Ma)`` model pair.

    Parameters
    ----------
    rejection_model, acceptance_model:
        The fitted model pair (must share one config).
    options:
        Default :class:`LinkOptions`; per-call options override them.
    profile_cache:
        Optional shared :class:`ProfileCache`; a private one is created
        when omitted.
    """

    def __init__(
        self,
        rejection_model: CompatibilityModel,
        acceptance_model: CompatibilityModel,
        options: LinkOptions = DEFAULT_LINK_OPTIONS,
        profile_cache: ProfileCache | None = None,
    ) -> None:
        self._mr, self._ma = require_fitted_pair(rejection_model, acceptance_model)
        if not isinstance(options, LinkOptions):
            raise ValidationError(
                f"options must be a LinkOptions, got {type(options).__name__}"
            )
        self._options = options
        self._cache = profile_cache if profile_cache is not None else ProfileCache()
        # Kernel backend, resolved once: explicit options override, else
        # the config the models were fitted under (env override and
        # numba availability are handled by resolve_kernel_backend).
        requested = (
            options.kernel_backend
            if options.kernel_backend is not None
            else self._mr.config.kernel_backend
        )
        self._kernel = resolve_kernel_backend(requested)
        # Per-bucket probability and log-likelihood tables, quantised at
        # construction.  _PoolEvidence keeps only in-horizon buckets, so
        # a flat ``table[buckets]`` gather reproduces ``probs_for``
        # exactly, and the clipped log tables are elementwise identical
        # to clipping/logging the gathered values per pool.
        floor = self._mr.config.prob_floor
        self._table_r = np.asarray(self._mr.prob_table)
        self._table_a = np.asarray(self._ma.prob_table)
        cl_r = np.clip(self._table_r, floor, 1.0 - floor)
        cl_a = np.clip(self._table_a, floor, 1.0 - floor)
        self._log_r, self._log1m_r = np.log(cl_r), np.log1p(-cl_r)
        self._log_a, self._log1m_a = np.log(cl_a), np.log1p(-cl_a)
        # Poisson-Binomial tails memoised on in-horizon bucket content;
        # valid per engine because the model pair (hence the per-bucket
        # probability tables and backend) is fixed.
        self._tail_memo: OrderedDict[tuple, float] = OrderedDict()
        self._tail_memo_max = 65536

    # ------------------------------------------------------------------
    @property
    def options(self) -> LinkOptions:
        return self._options

    @property
    def cache(self) -> ProfileCache:
        return self._cache

    @property
    def rejection_model(self) -> CompatibilityModel:
        return self._mr

    @property
    def acceptance_model(self) -> CompatibilityModel:
        return self._ma

    @property
    def config(self) -> FTLConfig:
        return self._mr.config

    @property
    def kernel_backend(self) -> str:
        """The resolved hot-path kernel backend (never ``"auto"``)."""
        return self._kernel

    def stage_backends(self) -> dict[str, str]:
        """Which implementation serves each pipeline stage.

        Surfaced by ``ftl profile``, the serve startup banner and
        ``/healthz`` so a deployment can verify its kernel selection.
        """
        pb = self.config.pb_backend
        return {
            "profile": self._kernel,
            "pb_test": f"dp[{self._kernel}]" if pb == "dp" else pb,
            "rank": "python",
            "blocking": "python",
            "prefilter": "python",
        }

    def invalidate_profiles(self, traj_ids) -> int:
        """Drop cached profiles for pairs touching any of ``traj_ids``.

        Required after streaming mutates trajectories under reused ids
        (ingest flush merges record deltas; eviction drops old records):
        profile identity is keyed on ids, so stale entries would
        otherwise serve pre-mutation evidence.  The Poisson-Binomial
        tail memo is content-addressed and stays valid.
        """
        return self._cache.invalidate(traj_ids)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def link(
        self,
        query: Trajectory,
        candidates: Iterable[Trajectory],
        options: LinkOptions | None = None,
    ) -> LinkResult:
        """Rank one query against a candidate pool."""
        return self.link_batch([query], candidates, options)[0]

    def link_batch(
        self,
        queries: Sequence[Trajectory],
        candidates: Iterable[Trajectory],
        options: LinkOptions | None = None,
    ) -> list[LinkResult]:
        """Rank every query against the shared candidate pool.

        Equivalent to (and bit-identical with) a loop of sequential
        ``link()`` calls, but each pair's profile is computed at most
        once and the pool's evidence is evaluated in flat arrays.
        """
        opts = self._options if options is None else options
        if not isinstance(opts, LinkOptions):
            raise ValidationError(
                f"options must be a LinkOptions, got {type(opts).__name__}"
            )
        with span("blocking"):
            pool = candidates if isinstance(candidates, list) else list(candidates)
        flat = self._flatten(pool)
        results = []
        for query in queries:
            if opts.prefilter is None:
                kept = pool
                kept_flat = flat
            else:
                with span("prefilter"):
                    kept = [c for c in pool if opts.prefilter.keep(query, c)]
                kept_flat = None
            results.append(self._link_one(query, kept, opts, kept_flat))
        return results

    def link_requests(
        self,
        requests: Sequence[LinkRequest],
        default_pool: Iterable[Trajectory] | None = None,
        options: LinkOptions | None = None,
    ) -> list[LinkResult]:
        """Serve a batch of heterogeneous :class:`LinkRequest` units.

        This is the serving entry point: a frontend that coalesces
        concurrent requests (each with its own candidate pool and
        options) hands them over in one call, so all of them share the
        profile cache and the Poisson-Binomial tail memo.  Each
        request's result is bit-identical to a standalone
        ``link(query, candidates, options)`` call with the same
        arguments.

        Parameters
        ----------
        requests:
            The work units; see :class:`LinkRequest`.
        default_pool:
            Pool used by requests whose ``candidates`` is ``None``
            (e.g. the daemon's resident candidate database).
        options:
            Call-level default options for requests whose ``options``
            is ``None``; falls back to the engine defaults.
        """
        call_opts = self._options if options is None else options
        if not isinstance(call_opts, LinkOptions):
            raise ValidationError(
                f"options must be a LinkOptions, got {type(call_opts).__name__}"
            )
        pool = None
        pool_flat: FlatPool | None = None
        results = []
        for request in requests:
            if not isinstance(request, LinkRequest):
                raise ValidationError(
                    f"requests must be LinkRequest, got {type(request).__name__}"
                )
            if request.candidates is not None:
                cands: Sequence[Trajectory] = request.candidates
                cands_flat = None
            else:
                if pool is None:
                    if default_pool is None:
                        raise ValidationError(
                            "request has no candidates and no default_pool "
                            "was provided"
                        )
                    with span("blocking"):
                        pool = (
                            default_pool
                            if isinstance(default_pool, list)
                            else list(default_pool)
                        )
                    pool_flat = self._flatten(pool)
                cands = pool
                cands_flat = pool_flat
            opts = request.options if request.options is not None else call_opts
            if opts.prefilter is None:
                kept = cands
                kept_flat = cands_flat
            else:
                with span("prefilter"):
                    kept = [
                        c for c in cands if opts.prefilter.keep(request.query, c)
                    ]
                kept_flat = None
            results.append(self._link_one(request.query, kept, opts, kept_flat))
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flatten(self, pool: Sequence[Trajectory]) -> FlatPool | None:
        """Flatten a pool once per batch (skipped on the per-pair backend)."""
        if self._kernel == "python" or not pool:
            return None
        return FlatPool(pool)

    def _link_one(
        self,
        query: Trajectory,
        pool: Sequence[Trajectory],
        opts: LinkOptions,
        flat: FlatPool | None = None,
    ) -> LinkResult:
        config = self.config
        with span("profile"):
            profiles = self._cache.get_many(
                query, pool, config, self._kernel, flat
            )
            ev = _PoolEvidence(profiles, self._mr.n_buckets)
            # Feed the context-bound drift sink (no-op when none): the
            # pool's in-horizon (bucket, incompatible) observations are
            # exactly the live counterpart of the fitted count tables.
            record_evidence(ev.buckets, ev.incompatible)

        with span("pb_test"):
            if opts.method == "alpha-filter":
                matched_idx, p1_m, p2_m = self._alpha_filter(ev, opts)
            else:
                matched_idx, p1_m, p2_m = self._naive_bayes(ev, opts)

        with span("rank"):
            scores = p1_m * (1.0 - p2_m)
            scored = [
                Candidate(
                    candidate_id=pool[i].traj_id,
                    score=float(scores[j]),
                    p_rejection=float(p1_m[j]),
                    p_acceptance=float(p2_m[j]),
                    n_mutual=int(ev.n_mutual[i]),
                    n_incompatible=int(ev.n_incompatible[i]),
                )
                for j, i in enumerate(matched_idx)
            ]
            scored.sort(key=lambda c: -c.score)
            if opts.top_k is not None:
                scored = scored[: opts.top_k]
            return LinkResult(
                query_id=query.traj_id, method=opts.method, candidates=tuple(scored)
            )

    def _alpha_filter(
        self, ev: _PoolEvidence, opts: LinkOptions
    ) -> tuple[list[int], np.ndarray, np.ndarray]:
        """Both test phases over the pool; returns the matched evidence.

        Phase ordering matches the seed: ``p2`` is only computed for
        phase-1 survivors (``p1 >= alpha1``).
        """
        ps_r = self._table_r[ev.buckets]
        ps_a = self._table_a[ev.buckets]
        p1 = np.asarray(self._tails("r", ev, ps_r, range(ev.n)))
        survivors = np.nonzero(p1 >= opts.alpha1)[0]
        p2_s = self._tails("a", ev, ps_a, survivors)
        matched: list[int] = []
        p1_m: list[float] = []
        p2_m: list[float] = []
        for i, p2 in zip(survivors, p2_s):
            if p2 < opts.alpha2:
                matched.append(int(i))
                p1_m.append(p1[i])
                p2_m.append(p2)
        return matched, np.asarray(p1_m), np.asarray(p2_m)

    def _naive_bayes(
        self, ev: _PoolEvidence, opts: LinkOptions
    ) -> tuple[list[int], np.ndarray, np.ndarray]:
        """NB posterior comparison over the pool from the flat evidence.

        The per-segment log terms are gathered from the engine's
        pre-quantised per-bucket log tables (clipped and logged once at
        construction — elementwise identical to clipping/logging the
        gathered probabilities per pool); each candidate's
        log-likelihood then sums its own compressed slice in segment
        order, reproducing the per-pair ``_log_likelihood`` bit for bit.
        """
        ps_r = self._table_r[ev.buckets]
        ps_a = self._table_a[ev.buckets]
        log_r, log1m_r = self._log_r[ev.buckets], self._log1m_r[ev.buckets]
        log_a, log1m_a = self._log_a[ev.buckets], self._log1m_a[ev.buckets]
        log_phi_r = math.log(opts.phi_r)
        log_phi_a = math.log(opts.phi_a)

        matched: list[int] = []
        for i in range(ev.n):
            inc = ev.slice(ev.incompatible, i)
            com = ~inc
            ll_r = float(
                ev.slice(log_r, i)[inc].sum() + ev.slice(log1m_r, i)[com].sum()
            )
            ll_a = float(
                ev.slice(log_a, i)[inc].sum() + ev.slice(log1m_a, i)[com].sum()
            )
            ratio = (log_phi_r + ll_r) - (log_phi_a + ll_a)
            if ratio >= 0.0:
                matched.append(i)
        p1_m = self._tails("r", ev, ps_r, matched)
        p2_m = self._tails("a", ev, ps_a, matched)
        return matched, np.asarray(p1_m), np.asarray(p2_m)

    def _tails(
        self,
        kind: str,
        ev: _PoolEvidence,
        ps: np.ndarray,
        indices: Iterable[int],
    ) -> list[float]:
        """Memoised Poisson-Binomial tails for the given pool indices.

        Memo misses are computed in one vectorised batch
        (``*_pvalue_batch``); the values are identical either way, so a
        memo hit can never change a result.
        """
        indices = list(indices)
        values: list[float | None] = [None] * len(indices)
        keys: list[tuple] = []
        missing_pos: list[int] = []
        missing_ps: list[np.ndarray] = []
        missing_k: list[int] = []
        for pos, i in enumerate(indices):
            k = int(ev.n_incompatible[i])
            key = (kind, ev.slice(ev.buckets, i).tobytes(), k)
            keys.append(key)
            hit = self._tail_memo.get(key)
            if hit is not None:
                values[pos] = hit
            else:
                missing_pos.append(pos)
                missing_ps.append(ev.slice(ps, i))
                missing_k.append(k)
        if missing_pos:
            batch_fn = (
                rejection_pvalue_batch if kind == "r" else acceptance_pvalue_batch
            )
            computed = batch_fn(
                missing_ps, missing_k, self.config.pb_backend, kernel=self._kernel
            )
            for pos, value in zip(missing_pos, computed):
                self._memoise(keys[pos], value)
                values[pos] = value
        return values

    def _memoise(self, key: tuple, value: float) -> None:
        self._tail_memo[key] = value
        if len(self._tail_memo) > self._tail_memo_max:
            self._tail_memo.popitem(last=False)
