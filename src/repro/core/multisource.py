"""Multi-source linking: chaining identities across three or more databases.

The paper's introduction contemplates "the databases of two *or more*
service providers": once pairwise links exist, identities can be chained
(commuting card -> CDR -> credit card) into cross-source identity
clusters, with each additional hop enriching the merged trajectory
further.

:func:`chain_assignments` composes one-to-one assignments along a chain
of database hops and reports the surviving end-to-end identity chains;
:func:`link_chain` is the end-to-end helper that fits models and runs
the global assignment for each consecutive database pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.assignment import assign_queries
from repro.core.database import TrajectoryDatabase
from repro.core.models import CompatibilityModel
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


@dataclass(frozen=True)
class IdentityChain:
    """One linked identity across the database chain.

    ``ids[k]`` is the trajectory id in the k-th database of the chain.
    """

    ids: tuple[object, ...]

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def head(self) -> object:
        return self.ids[0]

    @property
    def tail(self) -> object:
        return self.ids[-1]


def chain_assignments(
    hops: Sequence[Mapping[object, object]]
) -> list[IdentityChain]:
    """Compose per-hop id mappings into end-to-end identity chains.

    ``hops[k]`` maps ids of database ``k`` to ids of database ``k+1``.
    Only chains that survive *every* hop are returned (a missing link at
    any hop drops the identity, which keeps precision high at the cost
    of recall — the right default for investigation workloads).
    """
    if not hops:
        raise ValidationError("need at least one hop")
    chains: list[IdentityChain] = []
    for start_id, next_id in hops[0].items():
        ids = [start_id, next_id]
        alive = True
        for hop in hops[1:]:
            following = hop.get(ids[-1])
            if following is None:
                alive = False
                break
            ids.append(following)
        if alive:
            chains.append(IdentityChain(ids=tuple(ids)))
    return chains


def link_chain(
    databases: Sequence[TrajectoryDatabase],
    config: FTLConfig,
    rng: np.random.Generator,
    method: str = "optimal",
    min_score: float = 1e-6,
) -> list[IdentityChain]:
    """Fit, assign and chain across three or more databases.

    For each consecutive pair a fresh (Mr, Ma) model pair is fitted on
    that pair's data and a global one-to-one assignment computed; the
    per-hop assignments are then composed.
    """
    if len(databases) < 2:
        raise ValidationError("need at least two databases to chain")
    hops: list[Mapping[object, object]] = []
    for left, right in zip(databases, databases[1:]):
        mr = CompatibilityModel.fit_rejection([left, right], config)
        ma = CompatibilityModel.fit_acceptance([left, right], config, rng)
        assignment = assign_queries(
            left, right, mr, ma, method=method, min_score=min_score
        )
        hops.append(assignment.pairs)
    return chain_assignments(hops)


def enrich_chain(
    chain: IdentityChain, databases: Sequence[TrajectoryDatabase]
) -> Trajectory:
    """Merge a chained identity's records from every source (Fig. 2).

    The multi-source generalisation of trajectory enrichment: all
    sources' records of the linked person interleaved into one
    trajectory, whose id is the full chain tuple.
    """
    if len(chain) != len(databases):
        raise ValidationError(
            f"chain length {len(chain)} != number of databases {len(databases)}"
        )
    merged: Trajectory | None = None
    for traj_id, db in zip(chain.ids, databases):
        trajectory = db[traj_id]
        merged = (
            trajectory
            if merged is None
            else merged.concat(trajectory, traj_id=None)
        )
    assert merged is not None
    return merged.with_id(chain.ids)


def chain_accuracy(
    chains: Sequence[IdentityChain],
    truths: Sequence[Mapping[object, object]],
) -> float:
    """Fraction of returned chains correct at *every* hop."""
    if not chains:
        return 0.0
    if not truths:
        raise ValidationError("need per-hop ground truths")
    correct = 0
    for chain in chains:
        if len(chain.ids) != len(truths) + 1:
            raise ValidationError(
                "each chain must have one id per database in the chain"
            )
        if all(
            truths[k].get(chain.ids[k]) == chain.ids[k + 1]
            for k in range(len(truths))
        ):
            correct += 1
    return correct / len(chains)
