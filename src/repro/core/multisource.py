"""Multi-source linking: chaining identities across three or more databases.

The paper's introduction contemplates "the databases of two *or more*
service providers": once pairwise links exist, identities can be chained
(commuting card -> CDR -> wifi) into cross-source identity clusters,
with each additional hop enriching the merged trajectory further.

:func:`chain_assignments` composes one-to-one assignments along a chain
of database hops into end-to-end identity chains, propagating a
per-chain **confidence** (the product of the hop edges' Eq. 2 scores)
and pruning chains that fall under a confidence floor;
:func:`link_chain` is the end-to-end helper that fits models per
consecutive pair and solves each hop as a sparse global assignment
through :mod:`repro.assign` (blocked cost graph, one batch engine pass
per hop, exact component-wise solve).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.core.models import CompatibilityModel
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError

#: ``link_chain`` hop-solver choices; ``optimal``/``greedy`` are the
#: historical names, the rest name :mod:`repro.assign.solver` backends.
CHAIN_METHODS = ("optimal", "greedy", "auto", "sparse", "reference")


@dataclass(frozen=True)
class IdentityChain:
    """One linked identity across the database chain.

    ``ids[k]`` is the trajectory id in the k-th database of the chain;
    ``confidence`` is the product of the chain's per-hop link scores
    (1.0 when the hops carried no scores, e.g. plain id mappings).
    """

    ids: tuple[object, ...]
    confidence: float = field(default=1.0, compare=False)

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def head(self) -> object:
        return self.ids[0]

    @property
    def tail(self) -> object:
        return self.ids[-1]


def chain_assignments(
    hops: Sequence[Mapping[object, object]],
    hop_scores: Sequence[Mapping[object, float]] | None = None,
    min_confidence: float = 0.0,
) -> list[IdentityChain]:
    """Compose per-hop id mappings into end-to-end identity chains.

    ``hops[k]`` maps ids of database ``k`` to ids of database ``k+1``.
    Only chains that survive *every* hop are returned (a missing link at
    any hop drops the identity, which keeps precision high at the cost
    of recall — the right default for investigation workloads).

    ``hop_scores[k]``, when given, maps database-``k`` ids to the Eq. 2
    score of that hop's assigned edge; a chain's confidence is the
    product over its hops (so it is non-increasing in chain length —
    each extra fallible hop can only lower it).  Chains with confidence
    strictly below ``min_confidence`` are pruned.
    """
    if not hops:
        raise ValidationError("need at least one hop")
    if hop_scores is not None and len(hop_scores) != len(hops):
        raise ValidationError(
            f"{len(hop_scores)} hop_scores for {len(hops)} hops"
        )
    if not 0.0 <= min_confidence <= 1.0:
        raise ValidationError(
            f"min_confidence must be in [0, 1], got {min_confidence}"
        )
    chains: list[IdentityChain] = []
    for start_id, next_id in hops[0].items():
        ids = [start_id, next_id]
        alive = True
        for hop in hops[1:]:
            following = hop.get(ids[-1])
            if following is None:
                alive = False
                break
            ids.append(following)
        if not alive:
            continue
        confidence = 1.0
        if hop_scores is not None:
            for k in range(len(hops)):
                confidence *= hop_scores[k].get(ids[k], 1.0)
        if confidence < min_confidence:
            continue
        chains.append(IdentityChain(ids=tuple(ids), confidence=confidence))
    return chains


def _hop_backend(method: str) -> str:
    """Map the historical method names onto solver backends."""
    from repro.assign.solver import scipy_available

    if method not in CHAIN_METHODS:
        raise ValidationError(
            f"unknown method {method!r}; known: {CHAIN_METHODS}"
        )
    if method == "optimal":
        # Exact either way: sparse LSA when scipy is present, the dense
        # networkx reference otherwise (never the greedy approximation).
        return "sparse" if scipy_available() else "reference"
    return method


def link_chain(
    databases: Sequence[TrajectoryDatabase],
    config: FTLConfig,
    rng: np.random.Generator,
    method: str = "optimal",
    min_score: float = 1e-6,
    min_confidence: float = 0.0,
) -> list[IdentityChain]:
    """Fit, assign and chain across three or more databases.

    For each consecutive pair a fresh (Mr, Ma) model pair is fitted on
    that pair's data, a blocked sparse cost graph scored in one engine
    pass, and the hop solved as an exact global assignment; the per-hop
    assignments are then composed with confidence propagation.
    """
    from repro.assign.graph import PERMISSIVE_LINK_OPTIONS, build_cost_graph
    from repro.assign.solver import solve
    from repro.core.engine import LinkEngine
    from repro.store.stindex import SpatioTemporalIndex

    if len(databases) < 2:
        raise ValidationError("need at least two databases to chain")
    backend = _hop_backend(method)
    hops: list[Mapping[object, object]] = []
    hop_scores: list[Mapping[object, float]] = []
    for left, right in zip(databases, databases[1:]):
        mr = CompatibilityModel.fit_rejection([left, right], config)
        ma = CompatibilityModel.fit_acceptance([left, right], config, rng)
        engine = LinkEngine(mr, ma)
        blocking = SpatioTemporalIndex.build(
            right, vmax_kph=config.vmax_kph, reach_gap_s=config.horizon_s
        )
        graph = build_cost_graph(
            engine,
            list(left),
            blocking=blocking,
            options=PERMISSIVE_LINK_OPTIONS,
            min_score=min_score,
        )
        assignment = solve(graph, backend=backend)
        hops.append(assignment.pairs)
        hop_scores.append(assignment.scores)
    return chain_assignments(
        hops, hop_scores=hop_scores, min_confidence=min_confidence
    )


def enrich_chain(
    chain: IdentityChain, databases: Sequence[TrajectoryDatabase]
) -> Trajectory:
    """Merge a chained identity's records from every source (Fig. 2).

    The multi-source generalisation of trajectory enrichment: all
    sources' records of the linked person interleaved into one
    trajectory, whose id is the full chain tuple.
    """
    if len(chain) != len(databases):
        raise ValidationError(
            f"chain length {len(chain)} != number of databases {len(databases)}"
        )
    merged: Trajectory | None = None
    for traj_id, db in zip(chain.ids, databases):
        trajectory = db[traj_id]
        merged = (
            trajectory
            if merged is None
            else merged.concat(trajectory, traj_id=None)
        )
    assert merged is not None
    return merged.with_id(chain.ids)


def chain_accuracy(
    chains: Sequence[IdentityChain],
    truths: Sequence[Mapping[object, object]],
) -> float:
    """Fraction of returned chains correct at *every* hop."""
    if not chains:
        return 0.0
    if not truths:
        raise ValidationError("need per-hop ground truths")
    correct = 0
    for chain in chains:
        if len(chain.ids) != len(truths) + 1:
            raise ValidationError(
                "each chain must have one id per database in the chain"
            )
        if all(
            truths[k].get(chain.ids[k]) == chain.ids[k + 1]
            for k in range(len(truths))
        ):
            correct += 1
    return correct / len(chains)
