"""Incremental FTL: update pair evidence as records arrive.

The paper's setting is naturally streaming — "as time goes by, the
trajectories maintained by service providers grow as services are
accessed".  Recomputing a pair's alignment from scratch on every new
record costs O(n); :class:`StreamingPairEvidence` instead maintains the
merged sequence and the per-bucket incompatibility tallies, updating
them in O(log n) per record: inserting a record into the alignment
splits exactly one segment into two, so only those three segments'
contributions change.

From the maintained tallies both matchers are evaluated exactly:

* Naive-Bayes needs only the per-(bucket, outcome) counts;
* the Poisson-Binomial tests need the *multiset* of per-segment model
  probabilities, which is exactly the per-bucket count vector.

:class:`StreamingLinker` manages one :class:`StreamingPairEvidence` per
(query, candidate) pair and exposes the same decision semantics as the
batch matchers; equivalence with the batch path is covered by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import FTLConfig
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.records import Record
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.distance import get_metric
from repro.stats.poisson_binomial import PoissonBinomial

#: Source labels, matching repro.core.alignment.
SOURCE_P = 0
SOURCE_Q = 1


class StreamingPairEvidence:
    """Evidence state of one (P, Q) pair under record insertions.

    Maintains the merged record sequence plus a ``(2, n_buckets)``
    tally: ``counts[outcome, bucket]`` where outcome 1 = incompatible.
    Only *mutual* in-horizon segments are tallied, mirroring the batch
    profile semantics.
    """

    def __init__(self, config: FTLConfig) -> None:
        self._config = config
        self._metric = get_metric(config.metric)
        self._ts: list[float] = []
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._src: list[int] = []
        self._counts = np.zeros((2, config.n_buckets), dtype=np.int64)

    # ------------------------------------------------------------------
    # Segment accounting
    # ------------------------------------------------------------------
    def _segment_key(self, i: int, j: int) -> tuple[int, int] | None:
        """(outcome, bucket) of the segment between positions i and j.

        Returns ``None`` for self-segments and beyond-horizon segments
        (neither is tallied).
        """
        if self._src[i] == self._src[j]:
            return None
        dt = self._ts[j] - self._ts[i]
        # Route through the config's canonical bucketing so streaming
        # and batch (``FTLConfig.buckets_of``) agree on every dt,
        # including the half-bucket boundaries where a local
        # ``int(round(...))`` silently diverged from np.rint.
        bucket = self._config.bucket_of(dt)
        if bucket >= self._config.n_buckets:
            return None
        dist = float(
            self._metric(self._xs[i], self._ys[i], self._xs[j], self._ys[j])
        )
        incompatible = dist > self._config.vmax_mps * dt
        return (int(incompatible), bucket)

    def _tally(self, i: int, j: int, delta: int) -> None:
        key = self._segment_key(i, j)
        if key is not None:
            self._counts[key] += delta

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, record: Record, source: int) -> None:
        """Insert one record from ``source`` into the alignment.

        Ties keep existing records first, so a P record arriving before
        a Q record with the same timestamp reproduces the batch stable
        merge for streams delivered in P-then-Q order.
        """
        if source not in (SOURCE_P, SOURCE_Q):
            raise ValidationError(f"source must be 0 or 1, got {source}")
        pos = int(np.searchsorted(np.asarray(self._ts), record.t, side="right"))
        # The old segment (pos-1, pos) disappears...
        if 0 < pos < len(self._ts):
            self._tally(pos - 1, pos, -1)
        self._ts.insert(pos, record.t)
        self._xs.insert(pos, record.x)
        self._ys.insert(pos, record.y)
        self._src.insert(pos, source)
        # ... replaced by (pos-1, pos) and (pos, pos+1).
        if pos > 0:
            self._tally(pos - 1, pos, +1)
        if pos < len(self._ts) - 1:
            self._tally(pos, pos + 1, +1)

    def extend(self, trajectory: Trajectory, source: int) -> None:
        """Insert every record of a trajectory."""
        for record in trajectory:
            self.insert(record, source)

    def expire_before(self, cutoff_t: float) -> int:
        """Drop all records older than ``cutoff_t``; returns how many.

        Supports sliding-window deployments where evidence beyond a
        retention horizon must be forgotten (e.g. data-protection
        retention limits).  Removing the oldest record deletes exactly
        one segment — the one joining it to its successor — so the
        tallies stay exact.
        """
        removed = 0
        while self._ts and self._ts[0] < cutoff_t:
            if len(self._ts) > 1:
                self._tally(0, 1, -1)
            del self._ts[0], self._xs[0], self._ys[0], self._src[0]
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return len(self._ts)

    @property
    def n_mutual(self) -> int:
        """In-horizon mutual segments currently tallied."""
        return int(self._counts.sum())

    @property
    def n_incompatible(self) -> int:
        return int(self._counts[1].sum())

    def bucket_counts(self) -> np.ndarray:
        """A copy of the ``(2, n_buckets)`` tally."""
        return self._counts.copy()

    # ------------------------------------------------------------------
    # Decisions (exact, from the tallies)
    # ------------------------------------------------------------------
    def log_likelihood_ratio(
        self, mr: CompatibilityModel, ma: CompatibilityModel
    ) -> float:
        """``log L(Mr) - log L(Ma)`` of the current evidence."""
        floor = self._config.prob_floor
        buckets = np.arange(self._config.n_buckets)
        p_r = np.clip(mr.probs_for(buckets), floor, 1 - floor)
        p_a = np.clip(ma.probs_for(buckets), floor, 1 - floor)
        compat, incompat = self._counts[0], self._counts[1]
        ll_r = float(
            (incompat * np.log(p_r)).sum() + (compat * np.log1p(-p_r)).sum()
        )
        ll_a = float(
            (incompat * np.log(p_a)).sum() + (compat * np.log1p(-p_a)).sum()
        )
        return ll_r - ll_a

    def _per_segment_probs(self, model: CompatibilityModel) -> np.ndarray:
        totals = self._counts.sum(axis=0)
        buckets = np.repeat(np.arange(self._config.n_buckets), totals)
        return model.probs_for(buckets)

    def rejection_pvalue(self, mr: CompatibilityModel) -> float:
        """``Pr(K >= k_obs | Mr)`` of the current evidence."""
        ps = self._per_segment_probs(mr)
        if ps.size == 0:
            return 1.0
        return PoissonBinomial(ps, backend=self._config.pb_backend).sf(
            self.n_incompatible
        )

    def acceptance_pvalue(self, ma: CompatibilityModel) -> float:
        """``Pr(K <= k_obs | Ma)`` of the current evidence."""
        ps = self._per_segment_probs(ma)
        if ps.size == 0:
            return 1.0
        return PoissonBinomial(ps, backend=self._config.pb_backend).cdf(
            self.n_incompatible
        )


@dataclass(frozen=True)
class StreamDecision:
    """Current decision state of one candidate in a streaming linker."""

    candidate_id: object
    same_person: bool
    log_posterior_ratio: float
    n_mutual: int
    n_incompatible: int


class StreamingLinker:
    """Naive-Bayes linking of one growing query against growing candidates.

    Records are pushed via :meth:`observe_query` /
    :meth:`observe_candidate`; :meth:`decisions` returns the current
    per-candidate NB decision, and :meth:`matches` the positives.  The
    decision at any instant equals what the batch
    :class:`~repro.core.naive_bayes.NaiveBayesMatcher` would produce on
    the records seen so far (tested).
    """

    def __init__(
        self,
        rejection_model: CompatibilityModel,
        acceptance_model: CompatibilityModel,
        phi_r: float = 0.01,
    ) -> None:
        self._mr, self._ma = require_fitted_pair(rejection_model, acceptance_model)
        if not 0.0 < phi_r < 1.0:
            raise ValidationError(f"phi_r must be in (0, 1), got {phi_r}")
        self._phi_r = phi_r
        self._config = self._mr.config
        self._pairs: dict[object, StreamingPairEvidence] = {}
        self._query_history: list[Record] = []

    @property
    def n_candidates(self) -> int:
        """Number of candidates currently tracked."""
        return len(self._pairs)

    @property
    def n_query_records(self) -> int:
        """Number of query records currently retained."""
        return len(self._query_history)

    def candidate_ids(self) -> list[object]:
        """Tracked candidate ids, in registration order."""
        return list(self._pairs)

    def has_candidate(self, candidate_id: object) -> bool:
        return candidate_id in self._pairs

    def add_candidate(self, candidate_id: object) -> None:
        """Register a candidate; replays the query records seen so far."""
        if candidate_id in self._pairs:
            raise ValidationError(f"candidate {candidate_id!r} already tracked")
        evidence = StreamingPairEvidence(self._config)
        for record in self._query_history:
            evidence.insert(record, SOURCE_P)
        self._pairs[candidate_id] = evidence

    def discard_candidate(self, candidate_id: object) -> None:
        """Stop tracking a candidate and drop its pair evidence."""
        if self._pairs.pop(candidate_id, None) is None:
            raise ValidationError(f"unknown candidate {candidate_id!r}")

    def expire_before(self, cutoff_t: float) -> int:
        """Forget all evidence older than ``cutoff_t``; returns records dropped.

        The session-reuse hook for long-lived service deployments: the
        same linker keeps serving a session while records beyond a
        retention horizon are discarded, both from every pair's
        :meth:`StreamingPairEvidence.expire_before` and from the query
        history replayed into newly registered candidates.  After the
        call, decisions equal what a fresh linker fed only the
        surviving records would produce.
        """
        removed = 0
        for evidence in self._pairs.values():
            removed += evidence.expire_before(cutoff_t)
        kept = [r for r in self._query_history if r.t >= cutoff_t]
        removed += len(self._query_history) - len(kept)
        self._query_history = kept
        return removed

    def observe_query(self, record: Record) -> None:
        """A new record of the query trajectory arrived."""
        self._query_history.append(record)
        for evidence in self._pairs.values():
            evidence.insert(record, SOURCE_P)

    def observe_candidate(self, candidate_id: object, record: Record) -> None:
        """A new record of one candidate trajectory arrived."""
        try:
            self._pairs[candidate_id].insert(record, SOURCE_Q)
        except KeyError:
            raise ValidationError(
                f"unknown candidate {candidate_id!r}; call add_candidate first"
            ) from None

    def decision(self, candidate_id: object) -> StreamDecision:
        """The current NB decision for one candidate."""
        try:
            evidence = self._pairs[candidate_id]
        except KeyError:
            raise ValidationError(f"unknown candidate {candidate_id!r}") from None
        llr = evidence.log_likelihood_ratio(self._mr, self._ma)
        ratio = llr + math.log(self._phi_r) - math.log(1.0 - self._phi_r)
        return StreamDecision(
            candidate_id=candidate_id,
            same_person=ratio >= 0.0,
            log_posterior_ratio=ratio,
            n_mutual=evidence.n_mutual,
            n_incompatible=evidence.n_incompatible,
        )

    def decisions(self) -> list[StreamDecision]:
        """Current decisions for all candidates (registration order)."""
        return [self.decision(cid) for cid in self._pairs]

    def matches(self) -> list[StreamDecision]:
        """Candidates currently classified as the same person."""
        return [d for d in self.decisions() if d.same_person]
