"""Trajectory alignment and mutual segments (paper Section IV-A).

The *alignment* ``W_PQ`` of trajectories ``P`` and ``Q`` is the merged,
time-sorted sequence of both record sets.  Adjacent pairs in ``W_PQ``
are *segments*; a **self-segment** joins two records from the same
source, a **mutual segment** joins records from different sources.
Mutual segments carry the discriminating signal for FTL.

Two APIs are provided:

* :func:`align` builds a full :class:`AlignedTrajectory` with labelled
  segments — the readable object API used in examples and tests.
* :func:`mutual_segment_profile` is the NumPy hot path: it directly
  produces the ``(bucket, incompatible)`` arrays consumed by both
  linking algorithms, computing distances only for mutual segments.

When a record of ``P`` and a record of ``Q`` share a timestamp, the
``P`` record is placed first (a stable merge), matching the paper's
notion of an arbitrary but fixed tie order.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.records import Record
from repro.core.trajectory import Trajectory
from repro.kernels import (
    pair_profile_arrays,
    pool_profile_arrays,
    resolve_kernel_backend,
)

#: Source labels used in aligned trajectories.
SOURCE_P = 0
SOURCE_Q = 1


@dataclass(frozen=True)
class Segment:
    """An adjacent record pair in an aligned trajectory."""

    first: Record
    second: Record
    first_source: int
    second_source: int

    @property
    def is_mutual(self) -> bool:
        """True when the endpoints come from different trajectories."""
        return self.first_source != self.second_source

    @property
    def timediff(self) -> float:
        """Non-negative time difference of the endpoints in seconds."""
        return self.second.t - self.first.t


class AlignedTrajectory:
    """The merged, time-sorted record sequence of a trajectory pair.

    Instances are produced by :func:`align`; they expose the merged
    columns plus per-record source labels, and iterate segments.
    """

    __slots__ = ("_ts", "_xs", "_ys", "_sources")

    def __init__(
        self, ts: np.ndarray, xs: np.ndarray, ys: np.ndarray, sources: np.ndarray
    ) -> None:
        self._ts = ts
        self._xs = xs
        self._ys = ys
        self._sources = sources

    def __len__(self) -> int:
        return int(self._ts.shape[0])

    def __getitem__(self, index: int) -> tuple[Record, int]:
        return (
            Record(
                float(self._ts[index]), float(self._xs[index]), float(self._ys[index])
            ),
            int(self._sources[index]),
        )

    @property
    def ts(self) -> np.ndarray:
        return self._ts

    @property
    def xs(self) -> np.ndarray:
        return self._xs

    @property
    def ys(self) -> np.ndarray:
        return self._ys

    @property
    def sources(self) -> np.ndarray:
        """Per-record source labels (:data:`SOURCE_P` / :data:`SOURCE_Q`)."""
        return self._sources

    def n_mutual_segments(self) -> int:
        """Number of mutual segments (adjacent source changes)."""
        if len(self) < 2:
            return 0
        return int(np.count_nonzero(self._sources[1:] != self._sources[:-1]))

    def n_self_segments(self) -> int:
        """Number of self-segments."""
        if len(self) < 2:
            return 0
        return len(self) - 1 - self.n_mutual_segments()

    def segments(self) -> Iterator[Segment]:
        """Yield every adjacent segment in time order."""
        for i in range(len(self) - 1):
            first, first_src = self[i]
            second, second_src = self[i + 1]
            yield Segment(first, second, first_src, second_src)

    def mutual_segments(self) -> Iterator[Segment]:
        """Yield only the mutual segments."""
        return (seg for seg in self.segments() if seg.is_mutual)


def align(p: Trajectory, q: Trajectory) -> AlignedTrajectory:
    """Merge two trajectories into their alignment ``W_PQ``.

    The merge is stable with ``P`` records preceding equal-time ``Q``
    records.
    """
    ts = np.concatenate([p.ts, q.ts])
    xs = np.concatenate([p.xs, q.xs])
    ys = np.concatenate([p.ys, q.ys])
    sources = np.concatenate(
        [
            np.full(len(p), SOURCE_P, dtype=np.int8),
            np.full(len(q), SOURCE_Q, dtype=np.int8),
        ]
    )
    order = np.argsort(ts, kind="stable")
    return AlignedTrajectory(ts[order], xs[order], ys[order], sources[order])


@dataclass(frozen=True, eq=False)
class MutualSegmentProfile:
    """The discriminating observation extracted from one aligned pair.

    Attributes
    ----------
    buckets:
        Time-bucket index of each mutual segment (int64 array), computed
        with :meth:`repro.config.FTLConfig.buckets_of`.
    incompatible:
        Boolean array; True where the mutual segment is incompatible
        under the configured ``Vmax``.
    n_total:
        Total number of mutual segments (== ``len(buckets)``).

    Profiles hash and compare by *content* (see :attr:`token`), so they
    can key memoisation tables: two pairs with identical bucketed
    evidence produce identical p-values and log-likelihoods.
    """

    buckets: np.ndarray
    incompatible: np.ndarray

    @property
    def n_total(self) -> int:
        return int(self.buckets.shape[0])

    @property
    def n_incompatible(self) -> int:
        return int(np.count_nonzero(self.incompatible))

    @cached_property
    def token(self) -> tuple[bytes, bytes]:
        """A hashable content token: the raw bytes of both arrays.

        The generated-field ``__eq__`` of a dataclass is ill-defined on
        array fields (elementwise ``==`` has no truth value), so
        equality and hashing are defined through this token instead.
        """
        return (
            np.ascontiguousarray(self.buckets).tobytes(),
            np.ascontiguousarray(self.incompatible).tobytes(),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MutualSegmentProfile):
            return NotImplemented
        return self.token == other.token

    def __hash__(self) -> int:
        return hash(self.token)

    def within_horizon(self, n_buckets: int) -> "MutualSegmentProfile":
        """The profile restricted to buckets below the model horizon."""
        mask = self.buckets < n_buckets
        return MutualSegmentProfile(self.buckets[mask], self.incompatible[mask])


_EMPTY_PROFILE = MutualSegmentProfile(
    np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
)


def mutual_segment_profile(
    p: Trajectory,
    q: Trajectory,
    config: FTLConfig,
    backend: str | None = None,
) -> MutualSegmentProfile:
    """Extract the mutual-segment observation of a pair (NumPy hot path).

    Equivalent to aligning the trajectories, walking its mutual segments
    and recording each segment's time bucket and compatibility, but
    without materialising any Python objects.  The kernel ``backend``
    defaults to the config's (resolved through
    :func:`repro.kernels.resolve_kernel_backend`); every backend yields
    the same profile (see ``docs/performance.md`` for the numba
    haversine ulp caveat).
    """
    resolved = resolve_kernel_backend(
        backend if backend is not None else config.kernel_backend
    )
    if resolved == "python":
        buckets, incompatible = pair_profile_arrays(
            p.ts, p.xs, p.ys, q.ts, q.xs, q.ys,
            config.metric, config.vmax_mps, config.time_unit_s,
        )
    else:
        offsets = np.array([0, len(q)], dtype=np.int64)
        buckets, incompatible, _ = pool_profile_arrays(
            p.ts, p.xs, p.ys, q.ts, q.xs, q.ys, offsets,
            config.metric, config.vmax_mps, config.time_unit_s,
            backend=resolved,
        )
    if buckets.size == 0:
        return _EMPTY_PROFILE
    return MutualSegmentProfile(buckets, incompatible)


class FlatPool:
    """A candidate pool flattened into the kernels' column layout.

    Building the flat ``(ts, xs, ys, offsets)`` arrays costs one pass
    over every candidate; a batch of queries against the same pool
    (:meth:`repro.core.engine.LinkEngine.link_batch`) builds this once
    and reuses it for every query instead of re-concatenating per call.
    """

    __slots__ = ("ts", "xs", "ys", "offsets", "_sort")

    def __init__(self, candidates: Sequence[Trajectory]) -> None:
        n = len(candidates)
        self.offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(c) for c in candidates), np.int64, n),
            out=self.offsets[1:],
        )
        if n and self.offsets[-1]:
            self.ts = np.concatenate([c.ts for c in candidates])
            self.xs = np.concatenate([c.xs for c in candidates])
            self.ys = np.concatenate([c.ys for c in candidates])
        else:
            self.ts = self.xs = self.ys = np.empty(0, dtype=np.float64)
        self._sort = None

    def merge_cache(self) -> tuple[np.ndarray, ...]:
        """Query-independent precomputation for the ``numpy`` pool kernel.

        ``(ts[order], inv, valid_starts, valid_lasts)`` where ``order``
        is the pool's global time order, ``inv`` its inverse
        permutation, and the ``valid_*`` arrays the per-candidate
        boundary record indices (first/last record of each non-empty
        candidate).  Computed on first use and cached: it lets the pool
        kernel rank a query's timestamps against the whole pool with
        ``len(query)`` binary searches instead of ``len(pool records)``
        (see ``_pool_profiles_numpy``), and the cost is amortised over
        every query in the batch.
        """
        if self._sort is None:
            order = np.argsort(self.ts, kind="stable")
            inv = np.empty_like(order)
            inv[order] = np.arange(order.size)
            starts = self.offsets[:-1]
            last_of = self.offsets[1:] - 1
            n_flat = self.ts.size
            self._sort = (
                self.ts[order],
                inv,
                starts[starts < n_flat],
                last_of[last_of >= starts],
            )
        return self._sort

    def __len__(self) -> int:
        return int(self.offsets.shape[0] - 1)


def batch_mutual_segment_profiles(
    p: Trajectory,
    candidates: Sequence[Trajectory],
    config: FTLConfig,
    backend: str | None = None,
    flat: FlatPool | None = None,
) -> list[MutualSegmentProfile]:
    """Profiles of one query against a whole candidate pool.

    Equal to ``[mutual_segment_profile(p, c, config) for c in
    candidates]`` but the ``numpy``/``numba`` backends extract every
    pair's evidence in a single kernel invocation over the pool's flat
    coordinate arrays — the hot path behind
    :meth:`repro.core.engine.ProfileCache.get_many`.  Pass a prebuilt
    ``flat`` :class:`FlatPool` of exactly these candidates to skip the
    per-call flattening.
    """
    if not candidates:
        return []
    resolved = resolve_kernel_backend(
        backend if backend is not None else config.kernel_backend
    )
    if resolved == "python":
        return [
            mutual_segment_profile(p, c, config, backend="python")
            for c in candidates
        ]
    if flat is None or len(flat) != len(candidates):
        flat = FlatPool(candidates)
    buckets, incompatible, seg_offsets = pool_profile_arrays(
        p.ts, p.xs, p.ys, flat.ts, flat.xs, flat.ys, flat.offsets,
        config.metric, config.vmax_mps, config.time_unit_s,
        backend=resolved,
        c_sort=flat.merge_cache() if resolved == "numpy" else None,
    )
    return _materialise(buckets, incompatible, seg_offsets.tolist())


def _materialise(
    buckets: np.ndarray, incompatible: np.ndarray, bounds: list
) -> list[MutualSegmentProfile]:
    """Wrap a kernel's flat output into per-candidate profile objects.

    Slices view the kernel's freshly-allocated output, which the
    profiles jointly cover in full — no per-slice copies needed.  The
    fields go straight into each instance ``__dict__``, skipping the
    frozen dataclass's ``object.__setattr__`` round-trips; both the
    copies and the constructor are measurable at hundreds of profiles
    per query.
    """
    new = MutualSegmentProfile.__new__
    cls = MutualSegmentProfile
    out: list[MutualSegmentProfile] = []
    append = out.append
    prev = bounds[0]
    for end in bounds[1:]:
        if end == prev:
            append(_EMPTY_PROFILE)
        else:
            profile = new(cls)
            d = profile.__dict__
            d["buckets"] = buckets[prev:end]
            d["incompatible"] = incompatible[prev:end]
            append(profile)
        prev = end
    return out


def self_segment_profile(t: Trajectory, config: FTLConfig) -> MutualSegmentProfile:
    """Segment profile of a *single* trajectory (all segments are self).

    Used by Algorithm 1: each individual trajectory is treated as an
    already-aligned same-person pair, and each of its segments as a
    mutual segment, when estimating the rejection model.
    """
    if len(t) < 2:
        return _EMPTY_PROFILE
    dts = np.diff(t.ts)
    dists = config.metric_fn(t.xs[:-1], t.ys[:-1], t.xs[1:], t.ys[1:])
    buckets = config.buckets_of(dts)
    incompatible = dists > config.vmax_mps * dts
    return MutualSegmentProfile(buckets, incompatible)
