"""Learning ``Vmax`` from data (paper Section IV-B).

"The Vmax can either be manually set, e.g. the maximum allowed speed in
a city, or learnt from the data."  This module implements the learning
route: pool the implied speeds of all *self-segments* (consecutive
records of individual trajectories — same-person movement by
construction), take a high quantile, and inflate it by a safety margin
so that measurement noise never pushes a true positive over the cap.

The quantile/margin defaults are deliberately loose, matching the
paper's design principle that FTL "will not reject true positives":
a cap that is too high only weakens evidence, while a cap that is too
low silently breaks the rejection model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.config import FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.errors import ValidationError
from repro.geo.distance import get_metric
from repro.geo.units import mps_to_kph


@dataclass(frozen=True)
class VmaxEstimate:
    """Outcome of learning the speed cap from data."""

    vmax_kph: float
    quantile_kph: float
    n_segments: int
    quantile: float
    margin: float

    def as_config(self, base: FTLConfig | None = None) -> FTLConfig:
        """A config with the learnt cap (other fields from ``base``)."""
        base = base if base is not None else FTLConfig()
        return base.with_updates(vmax_kph=self.vmax_kph)


def _self_segment_speeds(
    db: TrajectoryDatabase, metric_name: str, min_gap_s: float
) -> np.ndarray:
    """Implied m/s speeds of all self-segments with gap >= min_gap_s.

    Very short gaps are excluded: location noise over a near-zero time
    difference produces unbounded spurious speeds (the same observation
    that motivates the rejection model's bucket-0 statistics).
    """
    metric = get_metric(metric_name)
    speeds: list[np.ndarray] = []
    for traj in db:
        if len(traj) < 2:
            continue
        dts = np.diff(traj.ts)
        dists = metric(traj.xs[:-1], traj.ys[:-1], traj.xs[1:], traj.ys[1:])
        usable = dts >= min_gap_s
        if np.any(usable):
            speeds.append(dists[usable] / dts[usable])
    if not speeds:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(speeds)


def learn_vmax(
    databases: Iterable[TrajectoryDatabase],
    quantile: float = 0.999,
    margin: float = 1.5,
    metric: str = "euclidean",
    min_gap_s: float = 120.0,
) -> VmaxEstimate:
    """Estimate ``Vmax`` from the self-segments of the given databases.

    Parameters
    ----------
    quantile:
        Speed quantile of the pooled self-segments taken as the
        plausible-travel ceiling (default 99.9%).
    margin:
        Multiplicative safety factor applied on top (default 1.5x),
        keeping the cap loose as the paper prescribes.
    min_gap_s:
        Segments shorter than this are excluded (noise-dominated).
    """
    if not 0.5 < quantile < 1.0:
        raise ValidationError(f"quantile must be in (0.5, 1), got {quantile}")
    if margin < 1.0:
        raise ValidationError(f"margin must be >= 1, got {margin}")
    if min_gap_s < 0:
        raise ValidationError(f"min_gap_s must be >= 0, got {min_gap_s}")
    pooled: list[np.ndarray] = []
    for db in databases:
        speeds = _self_segment_speeds(db, metric, min_gap_s)
        if speeds.size:
            pooled.append(speeds)
    if not pooled:
        raise ValidationError(
            "no usable self-segments; lower min_gap_s or supply more data"
        )
    all_speeds = np.concatenate(pooled)
    q_mps = float(np.quantile(all_speeds, quantile))
    if q_mps <= 0:
        raise ValidationError(
            "learnt speed ceiling is zero; the data appears stationary"
        )
    return VmaxEstimate(
        vmax_kph=mps_to_kph(q_mps * margin),
        quantile_kph=mps_to_kph(q_mps),
        n_segments=int(all_speeds.size),
        quantile=quantile,
        margin=margin,
    )
