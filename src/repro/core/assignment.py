"""Global one-to-one assignment linking.

Per-query FTL treats every query independently, so two queries may both
claim the same candidate.  When both databases cover (roughly) the same
population — the paper's taxi setting — a *global* one-to-one
assignment resolves such conflicts and improves precision: each
candidate is awarded to at most one query, maximising total evidence.

Two solvers over the Eq. 2 score matrix (or any per-pair score):

* :func:`greedy_assignment` — sort all (query, candidate) pairs by
  score and take them greedily; O(E log E), a 1/2-approximation;
* :func:`optimal_assignment` — maximum-weight bipartite matching via
  :func:`networkx.max_weight_matching`; exact but slower.

Both only consider pairs above a score threshold, so queries with no
plausible candidate remain unmatched (as they should).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.core.database import TrajectoryDatabase
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.ranking import rank_candidates
from repro.errors import ValidationError


@dataclass(frozen=True)
class Assignment:
    """A one-to-one linking of queries to candidates."""

    pairs: Mapping[object, object]  # query id -> candidate id
    total_score: float

    def __len__(self) -> int:
        return len(self.pairs)

    def accuracy(self, truth: Mapping[object, object]) -> float:
        """Fraction of assigned queries whose candidate is correct."""
        if not self.pairs:
            return 0.0
        hits = sum(1 for q, c in self.pairs.items() if truth.get(q) == c)
        return hits / len(self.pairs)


ScoreTriples = Sequence[tuple[object, object, float]]
"""(query_id, candidate_id, score) triples; larger scores are better."""


def _validated(scores: ScoreTriples, min_score: float) -> list[tuple[object, object, float]]:
    if min_score < 0:
        raise ValidationError(f"min_score must be >= 0, got {min_score}")
    return [(q, c, s) for q, c, s in scores if s > min_score]


def greedy_assignment(scores: ScoreTriples, min_score: float = 0.0) -> Assignment:
    """Greedy maximum-score one-to-one assignment.

    Pairs are taken in non-increasing score order; a pair is accepted
    when neither endpoint is taken yet.
    """
    usable = _validated(scores, min_score)
    # Deterministic tie-break: (-score, input order).  With triples
    # produced in (query_index, candidate_index) order this is exactly
    # the subsystem-wide (-score, query_index, candidate_index) key of
    # repro.assign.solver.TIE_BREAK; the stable sort made it implicit
    # before, this makes it explicit.
    order = sorted(range(len(usable)), key=lambda i: (-usable[i][2], i))
    usable = [usable[i] for i in order]
    taken_q: set[object] = set()
    taken_c: set[object] = set()
    pairs: dict[object, object] = {}
    total = 0.0
    for qid, cid, score in usable:
        if qid in taken_q or cid in taken_c:
            continue
        pairs[qid] = cid
        taken_q.add(qid)
        taken_c.add(cid)
        total += score
    return Assignment(pairs=pairs, total_score=total)


def optimal_assignment(scores: ScoreTriples, min_score: float = 0.0) -> Assignment:
    """Exact maximum-weight bipartite matching over the score graph.

    Edges enter the graph in explicit (-score, input order) order — the
    same (-score, query_index, candidate_index) key as
    :func:`greedy_assignment` when triples arrive index-sorted — so a
    given input always builds the same graph and yields the same
    matching (networkx iterates in insertion order).
    """
    usable = _validated(scores, min_score)
    order = sorted(range(len(usable)), key=lambda i: (-usable[i][2], i))
    usable = [usable[i] for i in order]
    graph = nx.Graph()
    for qid, cid, score in usable:
        key_q = ("Q", qid)
        key_c = ("C", cid)
        if graph.has_edge(key_q, key_c):
            if graph[key_q][key_c]["weight"] >= score:
                continue
        graph.add_edge(key_q, key_c, weight=score)
    matching = nx.max_weight_matching(graph, maxcardinality=False)
    pairs: dict[object, object] = {}
    total = 0.0
    for a, b in matching:
        query_key, cand_key = (a, b) if a[0] == "Q" else (b, a)
        pairs[query_key[1]] = cand_key[1]
        total += graph[a][b]["weight"]
    return Assignment(pairs=pairs, total_score=total)


def score_all_pairs(
    p_db: TrajectoryDatabase,
    q_db: TrajectoryDatabase,
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    query_ids: Sequence[object] | None = None,
) -> list[tuple[object, object, float]]:
    """Eq. 2 scores for every (query, candidate) combination.

    The raw material for either assignment solver.  ``query_ids``
    restricts the query side (defaults to all of ``p_db``).
    """
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    ids = list(p_db.ids()) if query_ids is None else list(query_ids)
    triples: list[tuple[object, object, float]] = []
    for qid in ids:
        for scored in rank_candidates(p_db[qid], q_db, mr, ma):
            triples.append((qid, scored.candidate_id, scored.score))
    return triples


def assign_queries(
    p_db: TrajectoryDatabase,
    q_db: TrajectoryDatabase,
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    query_ids: Sequence[object] | None = None,
    method: str = "greedy",
    min_score: float = 1e-6,
) -> Assignment:
    """End-to-end global linking: score all pairs, then assign.

    Parameters
    ----------
    method:
        ``"greedy"`` or ``"optimal"``.
    min_score:
        Pairs at or below this Eq. 2 score are never assigned; queries
        whose best candidate falls under it stay unmatched.
    """
    if method not in ("greedy", "optimal"):
        raise ValidationError(f"unknown method {method!r}")
    scores = score_all_pairs(
        p_db, q_db, rejection_model, acceptance_model, query_ids
    )
    solver = greedy_assignment if method == "greedy" else optimal_assignment
    return solver(scores, min_score=min_score)
