"""Statistical calibration of the hypothesis tests.

A *calibrated* test produces p-values that are (super-)uniform under
its null hypothesis: ``Pr(p <= t) <= t`` for every threshold ``t``, so
the configured significance level really bounds the false-rejection
rate.  For FTL that means:

* under the **rejection** test's null (same-person pairs), ``p1``
  should be super-uniform — then ``alpha1`` bounds the chance of
  pruning a true match;
* under the **acceptance** test's null (different-person pairs),
  ``p2`` should be super-uniform — then ``alpha2`` bounds the chance
  of falsely accepting a stranger.

(The tests are discrete, so exact uniformity is impossible; the valid
direction is conservatism.)  :func:`calibration_curve` computes the
empirical ``Pr(p <= t)`` curve and :func:`max_anticonservatism` its
worst violation, used by tests and the calibration bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError

#: Default threshold grid: the significance levels anyone would use.
DEFAULT_THRESHOLDS = (0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5)


@dataclass(frozen=True)
class CalibrationCurve:
    """Empirical ``Pr(p <= t)`` at each threshold ``t``."""

    thresholds: tuple[float, ...]
    empirical: tuple[float, ...]
    n_pvalues: int

    def rows(self) -> list[tuple[float, float]]:
        return list(zip(self.thresholds, self.empirical))


def calibration_curve(
    pvalues: Sequence[float] | np.ndarray,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> CalibrationCurve:
    """The empirical rejection-rate curve of a p-value sample."""
    ps = np.asarray(pvalues, dtype=np.float64)
    if ps.size == 0:
        raise ValidationError("need at least one p-value")
    if np.any((ps < 0) | (ps > 1)):
        raise ValidationError("p-values must lie in [0, 1]")
    ts = tuple(float(t) for t in thresholds)
    if any(not 0 < t <= 1 for t in ts):
        raise ValidationError("thresholds must lie in (0, 1]")
    empirical = tuple(float((ps <= t).mean()) for t in ts)
    return CalibrationCurve(
        thresholds=ts, empirical=empirical, n_pvalues=int(ps.size)
    )


def max_anticonservatism(curve: CalibrationCurve) -> float:
    """Largest ``empirical - threshold`` (positive = anti-conservative).

    A calibrated (conservative) test keeps this at or below the
    sampling noise of the estimate.
    """
    return max(
        emp - t for t, emp in zip(curve.thresholds, curve.empirical)
    )


def format_calibration(
    curves: dict[str, CalibrationCurve]
) -> str:
    """Monospace rendering of one or more labelled calibration curves."""
    labels = list(curves)
    header = f"{'threshold':>10} " + " ".join(f"{lab:>14}" for lab in labels)
    lines = [header]
    thresholds = curves[labels[0]].thresholds
    for i, t in enumerate(thresholds):
        row = f"{t:>10g} " + " ".join(
            f"{curves[lab].empirical[i]:>14.4f}" for lab in labels
        )
        lines.append(row)
    lines.append(
        "n: " + ", ".join(f"{lab}={curves[lab].n_pvalues}" for lab in labels)
    )
    return "\n".join(lines)
