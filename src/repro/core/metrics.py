"""Evaluation metrics (paper Definitions 1-2 and Section VII).

* **Perceptiveness** — the probability that a query's returned candidate
  set contains a trajectory of the same owner (Definition 1), estimated
  as the fraction of queries with at least one true match returned.
* **Selectiveness** — the expected fractional size ``|Q_P| / |Q|`` of
  the returned set (Definition 2); smaller is better.
* **precision_at_k** — the Fig. 8 protocol: a query is "found" when the
  true match is inside the per-query top-k; precision is the found
  fraction.
* **hits_within_topk** — the Fig. 6 protocol: candidates of *all*
  queries are pooled, globally ranked by score, and for each k we count
  the queries whose true match appears within the global top-k prefix.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ValidationError

CandidateSets = Mapping[object, Sequence[object]]
"""query id -> ordered candidate ids returned for that query."""

GroundTruth = Mapping[object, object]
"""query id -> the true matching candidate id."""


def _check_queries(results: CandidateSets, truth: GroundTruth) -> None:
    missing = [qid for qid in results if qid not in truth]
    if missing:
        raise ValidationError(
            f"{len(missing)} queries lack ground truth (first: {missing[0]!r})"
        )


def perceptiveness(results: CandidateSets, truth: GroundTruth) -> float:
    """Fraction of queries whose candidate set contains the true match."""
    if not results:
        raise ValidationError("perceptiveness needs at least one query")
    _check_queries(results, truth)
    hits = sum(1 for qid, cands in results.items() if truth[qid] in set(cands))
    return hits / len(results)


def selectiveness(results: CandidateSets, database_size: int) -> float:
    """Mean returned-set fraction ``|Q_P| / |Q|`` over all queries."""
    if not results:
        raise ValidationError("selectiveness needs at least one query")
    if database_size < 1:
        raise ValidationError(f"database_size must be >= 1, got {database_size}")
    return sum(len(cands) for cands in results.values()) / (
        len(results) * database_size
    )


def precision_at_k(results: CandidateSets, truth: GroundTruth, k: int) -> float:
    """Fraction of queries whose true match is within their top-``k`` list.

    ``results`` values must be ordered best-first (rank order).
    """
    if not results:
        raise ValidationError("precision_at_k needs at least one query")
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    _check_queries(results, truth)
    hits = sum(1 for qid, cands in results.items() if truth[qid] in set(cands[:k]))
    return hits / len(results)


def hits_within_topk(
    scored: Sequence[tuple[object, object, float]],
    truth: GroundTruth,
    ks: Sequence[int],
) -> list[int]:
    """Fig. 6 curve: queries matched within the global top-k, per k.

    Parameters
    ----------
    scored:
        Pooled ``(query_id, candidate_id, score)`` triples across all
        queries.
    truth:
        Query id -> true matching candidate id.
    ks:
        Increasing cut-offs (the x-axis of Fig. 6).

    Returns
    -------
    For each ``k`` in ``ks``, the number of distinct queries whose true
    match appears among the ``k`` highest-scored triples overall.
    """
    if any(k < 0 for k in ks):
        raise ValidationError("ks must be non-negative")
    if any(b < a for a, b in zip(ks, ks[1:])):
        raise ValidationError("ks must be non-decreasing")
    ordered = sorted(scored, key=lambda item: -item[2])
    matched: set[object] = set()
    counts: list[int] = []
    position = 0
    for k in ks:
        while position < min(k, len(ordered)):
            qid, cid, _score = ordered[position]
            if truth.get(qid) == cid:
                matched.add(qid)
            position += 1
        counts.append(len(matched))
    return counts


def recall_curve(
    results: CandidateSets, truth: GroundTruth, ks: Sequence[int]
) -> list[float]:
    """Per-query-rank recall: ``precision_at_k`` evaluated at each k."""
    return [precision_at_k(results, truth, k) for k in ks]
