"""Rejection and acceptance models (paper Sections IV-B, IV-C).

Both models are the same statistical object — a table mapping a
time-difference bucket ``i`` to the probability ``s^(i)`` that a mutual
segment whose gap rounds to ``i`` time units is *incompatible* — fitted
on different populations:

* the **rejection model** is fitted on *same-person* data.  Following
  Algorithm 1, each individual trajectory is treated as an aligned
  same-person pair and each of its (self-)segments as a mutual segment;
  incompatibility then only arises from measurement noise.
* the **acceptance model** is fitted on *different-person* data.
  Following Algorithm 2, random pairs of distinct trajectories from the
  same database are aligned and their mutual segments pooled.  (We cap
  the number of sampled pairs; the paper's double loop is quadratic.)

Buckets at or beyond the configured horizon are always compatible
(``s = 0``) and are not stored, matching the paper's finite-model
argument ("given enough time, one can always travel ... hence mutual
segments beyond certain time difference are always compatible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.config import FTLConfig
from repro.core.alignment import mutual_segment_profile, self_segment_profile
from repro.core.database import TrajectoryDatabase
from repro.errors import NotFittedError, ValidationError

REJECTION = "rejection"
ACCEPTANCE = "acceptance"


@dataclass
class BucketCounts:
    """Raw per-bucket tallies accumulated during fitting (mutable)."""

    total: np.ndarray
    incompatible: np.ndarray

    def __post_init__(self) -> None:
        if self.total.shape != self.incompatible.shape:
            raise ValidationError("count arrays must have equal shapes")
        if np.any(self.incompatible > self.total):
            raise ValidationError("incompatible counts cannot exceed totals")

    @classmethod
    def zeros(cls, n_buckets: int) -> "BucketCounts":
        return cls(
            np.zeros(n_buckets, dtype=np.int64), np.zeros(n_buckets, dtype=np.int64)
        )

    def accumulate(self, buckets: np.ndarray, incompatible: np.ndarray) -> None:
        """Add one profile's segments to the tallies (in place).

        Segments beyond the stored horizon are ignored — they are
        0-probability by construction.
        """
        n = self.total.shape[0]
        mask = buckets < n
        if not np.any(mask):
            return
        kept = buckets[mask]
        self.total += np.bincount(kept, minlength=n)
        self.incompatible += np.bincount(
            kept, weights=incompatible[mask].astype(np.int64), minlength=n
        ).astype(np.int64)

    @property
    def n_segments(self) -> int:
        return int(self.total.sum())


def _smoothed_probabilities(counts: BucketCounts, config: FTLConfig) -> np.ndarray:
    """Per-bucket incompatibility probability with smoothing and gap filling.

    Buckets with at least ``min_bucket_count`` observations get the
    pseudo-count estimate ``(inc + s) / (tot + 2s)``.  Under-observed
    buckets are filled by linear interpolation between populated
    neighbours (constant extrapolation at the edges); if no bucket is
    populated the pooled rate is used everywhere.
    """
    s = config.smoothing
    total = counts.total.astype(np.float64)
    inc = counts.incompatible.astype(np.float64)
    n = total.shape[0]
    probs = np.empty(n, dtype=np.float64)

    populated = total >= max(config.min_bucket_count, 1)
    probs[populated] = (inc[populated] + s) / (total[populated] + 2.0 * s)

    if not np.any(populated):
        pooled_total = total.sum()
        pooled = (inc.sum() + s) / (pooled_total + 2.0 * s) if pooled_total else 0.0
        probs[:] = pooled
        return probs
    if not np.all(populated):
        idx = np.arange(n)
        probs[~populated] = np.interp(
            idx[~populated], idx[populated], probs[populated]
        )
    return probs


class CompatibilityModel:
    """A fitted per-bucket incompatibility-probability table.

    Use the classmethods :meth:`fit_rejection` / :meth:`fit_acceptance`
    rather than the constructor; the constructor exists for
    deserialisation and testing.

    Parameters
    ----------
    kind:
        ``"rejection"`` or ``"acceptance"``.
    counts:
        Per-bucket tallies (defines the horizon via its length).
    config:
        The configuration the model was fitted under; bucketing must
        match at query time.
    """

    def __init__(self, kind: str, counts: BucketCounts, config: FTLConfig) -> None:
        if kind not in (REJECTION, ACCEPTANCE):
            raise ValidationError(f"kind must be rejection|acceptance, got {kind!r}")
        if counts.total.shape[0] != config.n_buckets:
            raise ValidationError(
                f"counts cover {counts.total.shape[0]} buckets but the config "
                f"defines {config.n_buckets}"
            )
        self._kind = kind
        self._counts = counts
        self._config = config
        self._probs = _smoothed_probabilities(counts, config)

    # ------------------------------------------------------------------
    # Fitting (Algorithms 1 and 2)
    # ------------------------------------------------------------------
    @classmethod
    def fit_rejection(
        cls,
        databases: Iterable[TrajectoryDatabase],
        config: FTLConfig,
    ) -> "CompatibilityModel":
        """Algorithm 1: pool the self-segments of every trajectory."""
        counts = BucketCounts.zeros(config.n_buckets)
        n_trajectories = 0
        for db in databases:
            for traj in db:
                profile = self_segment_profile(traj, config)
                counts.accumulate(profile.buckets, profile.incompatible)
                n_trajectories += 1
        if n_trajectories == 0:
            raise ValidationError("fit_rejection needs at least one trajectory")
        return cls(REJECTION, counts, config)

    @classmethod
    def fit_acceptance(
        cls,
        databases: Iterable[TrajectoryDatabase],
        config: FTLConfig,
        rng: np.random.Generator,
        max_pairs: int | None = None,
    ) -> "CompatibilityModel":
        """Algorithm 2: pool mutual segments of random distinct-id pairs.

        For each database, up to ``max_pairs`` unordered pairs of
        distinct trajectories are sampled without replacement from the
        full pair space (all pairs are used when there are fewer).
        """
        if max_pairs is None:
            max_pairs = config.max_acceptance_pairs
        if max_pairs < 1:
            raise ValidationError(f"max_pairs must be >= 1, got {max_pairs}")
        counts = BucketCounts.zeros(config.n_buckets)
        saw_pair = False
        for db in databases:
            trajs = list(db)
            n = len(trajs)
            if n < 2:
                continue
            for i, j in _sample_distinct_pairs(n, max_pairs, rng):
                profile = mutual_segment_profile(trajs[i], trajs[j], config)
                counts.accumulate(profile.buckets, profile.incompatible)
                saw_pair = True
        if not saw_pair:
            raise ValidationError(
                "fit_acceptance needs a database with at least two trajectories"
            )
        return cls(ACCEPTANCE, counts, config)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._kind

    @property
    def config(self) -> FTLConfig:
        return self._config

    @property
    def counts(self) -> BucketCounts:
        return self._counts

    @property
    def n_buckets(self) -> int:
        return self._probs.shape[0]

    @property
    def n_segments(self) -> int:
        """Number of segments the model was fitted on."""
        return self._counts.n_segments

    def prob(self, bucket: int) -> float:
        """``s^(bucket)`` — incompatibility probability for one bucket.

        Buckets at or beyond the horizon return 0.0 (always compatible).
        """
        if bucket < 0:
            raise ValidationError(f"bucket must be >= 0, got {bucket}")
        if bucket >= self.n_buckets:
            return 0.0
        return float(self._probs[bucket])

    @property
    def prob_table(self) -> np.ndarray:
        """The full per-bucket probability table ``s^(0..n_buckets-1)``.

        A read-only view; the engine pre-quantises this into flat
        lookup (and log) tables at construction instead of calling
        :meth:`probs_for` per pair.
        """
        view = self._probs.view()
        view.flags.writeable = False
        return view

    def probs_for(self, buckets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`prob` over a bucket-index array."""
        buckets = np.asarray(buckets, dtype=np.int64)
        out = np.zeros(buckets.shape, dtype=np.float64)
        mask = buckets < self.n_buckets
        out[mask] = self._probs[buckets[mask]]
        return out

    def empirical_rate(self, bucket: int) -> float:
        """Unsmoothed observed rate for one bucket (NaN when unobserved)."""
        if not 0 <= bucket < self.n_buckets:
            raise ValidationError(f"bucket {bucket} outside model support")
        total = self._counts.total[bucket]
        if total == 0:
            return float("nan")
        return float(self._counts.incompatible[bucket] / total)

    # ------------------------------------------------------------------
    # Serialisation (round-trips through repro.io)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot of the fitted model.

        The config is serialised through :meth:`FTLConfig.to_dict` —
        the field-iteration snapshot that cannot drift from the
        dataclass (a hand-maintained dict here once dropped
        ``shard_cell_size_m``, silently round-tripping models to a
        different config).
        """
        return {
            "kind": self._kind,
            "total": self._counts.total.tolist(),
            "incompatible": self._counts.incompatible.tolist(),
            "config": self._config.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompatibilityModel":
        """Rebuild a model saved by :meth:`to_dict`.

        A config carrying fields this version does not know raises a
        :class:`ValidationError` naming them (the model was saved by a
        newer version) rather than a kwargs ``TypeError`` fragment.
        """
        try:
            raw_config = payload["config"]
            kind = payload["kind"]
            total = np.asarray(payload["total"], dtype=np.int64)
            incompatible = np.asarray(payload["incompatible"], dtype=np.int64)
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed model payload: {exc}") from exc
        config = FTLConfig.from_dict(raw_config)
        return cls(kind, BucketCounts(total, incompatible), config)

    def __repr__(self) -> str:
        return (
            f"CompatibilityModel(kind={self._kind!r}, buckets={self.n_buckets}, "
            f"segments={self.n_segments})"
        )


def _sample_distinct_pairs(
    n: int, max_pairs: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Up to ``max_pairs`` unordered distinct index pairs from ``range(n)``.

    When the full pair space fits, it is enumerated.  When more than
    half of the pair space is requested, the space is enumerated and
    ``max_pairs`` pairs are chosen without replacement in one draw —
    rejection sampling degrades badly as the sample density approaches
    1 (each new pair is increasingly likely to collide with one already
    seen, with no iteration bound).  Below that 50% density threshold
    rejection sampling is kept: collisions are then rare, and each
    round draws a whole batch of candidates at once.
    """
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    if 2 * max_pairs >= total_pairs:
        universe = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = rng.choice(total_pairs, size=max_pairs, replace=False)
        return sorted(universe[int(k)] for k in chosen)
    seen: set[tuple[int, int]] = set()
    while len(seen) < max_pairs:
        draws = rng.integers(0, n, size=2 * (max_pairs - len(seen)) + 8)
        for i, j in zip(draws[0::2], draws[1::2]):
            if i == j:
                continue
            seen.add((int(min(i, j)), int(max(i, j))))
            if len(seen) == max_pairs:
                break
    return sorted(seen)


def require_fitted_pair(
    rejection: CompatibilityModel | None, acceptance: CompatibilityModel | None
) -> tuple[CompatibilityModel, CompatibilityModel]:
    """Validate the (Mr, Ma) pair shared by both matchers."""
    if rejection is None or acceptance is None:
        raise NotFittedError("both rejection and acceptance models are required")
    if rejection.kind != REJECTION:
        raise ValidationError("first model must be a rejection model")
    if acceptance.kind != ACCEPTANCE:
        raise ValidationError("second model must be an acceptance model")
    if rejection.config != acceptance.config:
        raise ValidationError("models were fitted under different configs")
    return rejection, acceptance
