"""The (alpha1, alpha2)-filtering algorithm (paper Section IV-D).

For a query trajectory ``P`` the algorithm starts from the full
candidate set ``Q`` and applies two phases to each candidate ``Q``:

1. **alpha1-rejection** — reject (prune) the candidate when
   ``p1 = Pr(K >= k_obs | Mr) < alpha1``: the pair shows too many
   incompatible mutual segments to be of one person.
2. **alpha2-acceptance** — accept the survivor when
   ``p2 = Pr(K <= k_obs | Ma) < alpha2``: the pair shows too few
   incompatibilities to be of two different persons.

Only candidates that survive phase 1 *and* pass phase 2 enter ``Q_P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.alignment import MutualSegmentProfile, mutual_segment_profile
from repro.core.database import TrajectoryDatabase
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of testing one (query, candidate) pair.

    Attributes
    ----------
    candidate_id:
        Id of the tested candidate trajectory.
    p_rejection:
        ``p1`` — the alpha1-phase p-value under the rejection model.
    p_acceptance:
        ``p2`` — the alpha2-phase p-value under the acceptance model
        (``None`` when the pair was already pruned in phase 1, which
        skips the second, more informative test).
    accepted:
        Whether the candidate enters ``Q_P``.
    n_mutual:
        Number of in-horizon mutual segments the tests were based on.
    n_incompatible:
        How many of them were incompatible.
    """

    candidate_id: object
    p_rejection: float
    p_acceptance: float | None
    accepted: bool
    n_mutual: int
    n_incompatible: int

    @property
    def rejected_in_phase1(self) -> bool:
        return self.p_acceptance is None


class AlphaFilter:
    """(alpha1, alpha2)-filtering matcher bound to a fitted model pair.

    Parameters
    ----------
    rejection_model, acceptance_model:
        The fitted ``Mr`` / ``Ma`` pair (must share one config).
    alpha1:
        Significance level of the rejection phase; larger is stricter.
    alpha2:
        Significance level of the acceptance phase; smaller is stricter.
    """

    def __init__(
        self,
        rejection_model: CompatibilityModel,
        acceptance_model: CompatibilityModel,
        alpha1: float = 0.05,
        alpha2: float = 0.05,
    ) -> None:
        self._mr, self._ma = require_fitted_pair(rejection_model, acceptance_model)
        if not 0.0 <= alpha1 <= 1.0:
            raise ValidationError(f"alpha1 must be in [0, 1], got {alpha1}")
        if not 0.0 <= alpha2 <= 1.0:
            raise ValidationError(f"alpha2 must be in [0, 1], got {alpha2}")
        self._alpha1 = float(alpha1)
        self._alpha2 = float(alpha2)

    @property
    def alpha1(self) -> float:
        return self._alpha1

    @property
    def alpha2(self) -> float:
        return self._alpha2

    @property
    def config(self):
        return self._mr.config

    def decide_profile(
        self, profile: MutualSegmentProfile, candidate_id: object = None
    ) -> FilterDecision:
        """Run both phases on a pre-computed mutual-segment profile."""
        within = profile.within_horizon(self._mr.n_buckets)
        p1 = rejection_pvalue(profile, self._mr)
        if p1 < self._alpha1:
            return FilterDecision(
                candidate_id=candidate_id,
                p_rejection=p1,
                p_acceptance=None,
                accepted=False,
                n_mutual=within.n_total,
                n_incompatible=within.n_incompatible,
            )
        p2 = acceptance_pvalue(profile, self._ma)
        return FilterDecision(
            candidate_id=candidate_id,
            p_rejection=p1,
            p_acceptance=p2,
            accepted=p2 < self._alpha2,
            n_mutual=within.n_total,
            n_incompatible=within.n_incompatible,
        )

    def decide(
        self,
        query: Trajectory,
        candidate: Trajectory,
        profile: MutualSegmentProfile | None = None,
    ) -> FilterDecision:
        """Run both phases on one (query, candidate) trajectory pair.

        Pass ``profile`` when the pair's mutual-segment profile is
        already known (e.g. from a :class:`~repro.core.engine.ProfileCache`)
        so the pair is not aligned a second time.
        """
        if profile is None:
            profile = mutual_segment_profile(query, candidate, self.config)
        return self.decide_profile(profile, candidate_id=candidate.traj_id)

    def query(
        self,
        query: Trajectory,
        candidates: TrajectoryDatabase | Iterable[Trajectory],
    ) -> list[FilterDecision]:
        """Decisions for every accepted candidate in ``candidates``.

        Returns only accepted candidates (the paper's ``Q_P``), in
        database order; use :meth:`decide` for per-pair diagnostics on
        rejected candidates.
        """
        accepted: list[FilterDecision] = []
        for candidate in candidates:
            decision = self.decide(query, candidate)
            if decision.accepted:
                accepted.append(decision)
        return accepted
