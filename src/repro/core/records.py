"""A single location-timestamp record.

The paper (Section III) models a trajectory as a time-sorted sequence of
location-timestamp records.  :class:`Record` is the user-facing scalar
view; internally :class:`~repro.core.trajectory.Trajectory` stores
columnar NumPy arrays and materialises :class:`Record` objects only on
demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True, order=True)
class Record:
    """One observation: a point ``(x, y)`` seen at time ``t``.

    Ordering is by ``(t, x, y)`` so sorting a list of records sorts them
    in time order, matching the paper's trajectory definition.

    Attributes
    ----------
    t:
        Timestamp in seconds (any consistent epoch).
    x, y:
        Planar coordinates in metres, or (lon, lat) degrees when the
        haversine metric is configured.
    """

    t: float
    x: float
    y: float

    def __post_init__(self) -> None:
        for name in ("t", "x", "y"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)):
                raise ValidationError(f"Record.{name} must be a number, got {value!r}")
            if not math.isfinite(value):
                raise ValidationError(f"Record.{name} must be finite, got {value!r}")

    @property
    def location(self) -> tuple[float, float]:
        """The ``(x, y)`` coordinate pair."""
        return (self.x, self.y)

    def time_shifted(self, offset_s: float) -> "Record":
        """A copy of this record with ``offset_s`` added to the timestamp."""
        return Record(self.t + offset_s, self.x, self.y)


def timediff(a: Record, b: Record) -> float:
    """Absolute timestamp difference in seconds (paper's ``timediff``)."""
    return abs(a.t - b.t)
