"""Model diagnostics: how separable are the fitted Mr / Ma?

The paper's discrimination criterion for choosing model statistics
("the models [must be] highly distinguishable by their sets of
statistics") suggests quantifying that distinguishability for a fitted
pair.  This module provides:

* :func:`model_table` — per-bucket view of both models' probabilities
  and sample counts, for eyeballing a fit;
* :func:`bucket_divergence` — per-bucket KL divergence (in nats)
  between the two Bernoulli laws, i.e. the expected per-segment
  log-likelihood-ratio contribution of a segment falling in that
  bucket when the *same-person* hypothesis is true;
* :func:`discriminability` — the overall expected evidence per mutual
  segment, weighting buckets by an (empirical or theoretical) gap
  distribution.  Larger means fewer mutual segments are needed for a
  confident decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.errors import ValidationError


def _bernoulli_kl(p: float, q: float, floor: float = 1e-9) -> float:
    """KL(Bern(p) || Bern(q)) in nats, with probability clamping."""
    p = min(max(p, floor), 1.0 - floor)
    q = min(max(q, floor), 1.0 - floor)
    return p * math.log(p / q) + (1.0 - p) * math.log((1.0 - p) / (1.0 - q))


def bucket_divergence(
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
) -> np.ndarray:
    """Per-bucket ``KL(Mr_bucket || Ma_bucket)`` in nats.

    Entry ``i`` is the expected log-likelihood-ratio evidence that one
    mutual segment of bucket ``i`` contributes toward the (true)
    same-person hypothesis.
    """
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    buckets = np.arange(mr.n_buckets)
    p_r = mr.probs_for(buckets)
    p_a = ma.probs_for(buckets)
    return np.array(
        [_bernoulli_kl(float(r), float(a)) for r, a in zip(p_r, p_a)]
    )


def discriminability(
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    gap_weights: np.ndarray | None = None,
) -> float:
    """Expected same-person evidence per mutual segment, in nats.

    Parameters
    ----------
    gap_weights:
        Probability weights over buckets (length ``n_buckets``); by
        default the pooled empirical bucket distribution of the
        acceptance model's training segments is used.  Combine with
        :func:`repro.stats.theory.mutual_segment_length_pdf` for a
        theoretical weighting.
    """
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    divergence = bucket_divergence(mr, ma)
    if gap_weights is None:
        counts = ma.counts.total.astype(np.float64)
        total = counts.sum()
        if total == 0:
            raise ValidationError("acceptance model has no training segments")
        gap_weights = counts / total
    else:
        gap_weights = np.asarray(gap_weights, dtype=np.float64)
        if gap_weights.shape != divergence.shape:
            raise ValidationError(
                f"gap_weights must have length {divergence.shape[0]}"
            )
        if np.any(gap_weights < 0) or gap_weights.sum() <= 0:
            raise ValidationError("gap_weights must be a non-negative measure")
        gap_weights = gap_weights / gap_weights.sum()
    return float((divergence * gap_weights).sum())


@dataclass(frozen=True)
class BucketRow:
    """One row of the per-bucket diagnostic table."""

    bucket: int
    gap_seconds: float
    rejection_prob: float
    acceptance_prob: float
    rejection_count: int
    acceptance_count: int
    divergence_nats: float


def model_table(
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    max_buckets: int | None = None,
) -> list[BucketRow]:
    """The per-bucket diagnostic view of a fitted model pair."""
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    divergence = bucket_divergence(mr, ma)
    n = mr.n_buckets if max_buckets is None else min(max_buckets, mr.n_buckets)
    unit = mr.config.time_unit_s
    rows = []
    for bucket in range(n):
        rows.append(
            BucketRow(
                bucket=bucket,
                gap_seconds=bucket * unit,
                rejection_prob=mr.prob(bucket),
                acceptance_prob=ma.prob(bucket),
                rejection_count=int(mr.counts.total[bucket]),
                acceptance_count=int(ma.counts.total[bucket]),
                divergence_nats=float(divergence[bucket]),
            )
        )
    return rows


def format_model_table(rows: list[BucketRow]) -> str:
    """Monospace rendering of :func:`model_table` output."""
    lines = [
        f"{'bucket':>7} {'gap s':>7} {'s_r':>8} {'s_a':>8} "
        f"{'n_r':>8} {'n_a':>8} {'KL nats':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.bucket:>7} {row.gap_seconds:>7.0f} "
            f"{row.rejection_prob:>8.4f} {row.acceptance_prob:>8.4f} "
            f"{row.rejection_count:>8} {row.acceptance_count:>8} "
            f"{row.divergence_nats:>9.3f}"
        )
    return "\n".join(lines)
