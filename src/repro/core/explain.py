"""Explain a linking decision: where did the evidence come from?

The paper's applications put humans in the loop — a health agency or
police investigator acts on the returned candidates.  Accountable use
of such a tool needs per-decision explanations: which mutual segments
drove the match, and how much each contributed.

:func:`explain_pair` decomposes a pair's Naive-Bayes log-likelihood
ratio into per-segment contributions
``log(P(obs | Mr) / P(obs | Ma))`` and returns the segments sorted by
absolute contribution, each with its human-readable facts (times,
locations, gap, implied speed, compatibility).  The contributions sum
exactly to the matcher's prior-free LLR (tested), so the explanation is
faithful, not approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.core.alignment import align
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.records import Record
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.distance import get_metric


@dataclass(frozen=True)
class SegmentEvidence:
    """One mutual segment's contribution to a linking decision."""

    first: Record
    second: Record
    gap_s: float
    distance_m: float
    implied_speed_kph: float
    compatible: bool
    bucket: int
    prob_rejection: float
    prob_acceptance: float
    llr_contribution: float

    def describe(self) -> str:
        """One human-readable line."""
        verdict = "compatible" if self.compatible else "INCOMPATIBLE"
        return (
            f"gap {self.gap_s / 60:.1f} min, {self.distance_m / 1000:.2f} km "
            f"({self.implied_speed_kph:.0f} kph, {verdict}): "
            f"{self.llr_contribution:+.3f} nats"
        )


@dataclass(frozen=True)
class PairExplanation:
    """The full evidence breakdown for one (query, candidate) pair."""

    segments: tuple[SegmentEvidence, ...]
    total_llr: float
    n_mutual: int
    n_incompatible: int

    def top(self, k: int = 5) -> list[SegmentEvidence]:
        """The ``k`` segments with the largest absolute contribution."""
        if k < 0:
            raise ValidationError(f"k must be >= 0, got {k}")
        return list(self.segments[:k])

    def supporting(self) -> list[SegmentEvidence]:
        """Segments arguing *for* the same-person hypothesis."""
        return [s for s in self.segments if s.llr_contribution > 0]

    def opposing(self) -> list[SegmentEvidence]:
        """Segments arguing *against* it."""
        return [s for s in self.segments if s.llr_contribution < 0]

    def summary(self, k: int = 5) -> str:
        """A short multi-line report for an investigator."""
        verdict = "same person" if self.total_llr >= 0 else "different persons"
        lines = [
            f"evidence: {self.n_mutual} mutual segments "
            f"({self.n_incompatible} incompatible), "
            f"total {self.total_llr:+.2f} nats -> leans '{verdict}'",
        ]
        for segment in self.top(k):
            lines.append("  " + segment.describe())
        return "\n".join(lines)


def explain_pair(
    query: Trajectory,
    candidate: Trajectory,
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
) -> PairExplanation:
    """Decompose the pair's prior-free LLR into per-segment evidence.

    The contributions sum exactly to
    ``log L(Mr) - log L(Ma)`` as computed by
    :class:`~repro.core.naive_bayes.NaiveBayesMatcher` (with the same
    probability clamping); segments beyond the model horizon carry zero
    contribution and are omitted.
    """
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    config = mr.config
    metric = get_metric(config.metric)
    floor = config.prob_floor
    merged = align(query, candidate)

    segments: list[SegmentEvidence] = []
    total = 0.0
    n_mutual = 0
    n_incompatible = 0
    for segment in merged.mutual_segments():
        first, second = segment.first, segment.second
        gap = segment.timediff
        bucket = config.bucket_of(gap)
        if bucket >= config.n_buckets:
            continue
        n_mutual += 1
        dist = float(metric(first.x, first.y, second.x, second.y))
        compatible = dist <= config.vmax_mps * gap
        if not compatible:
            n_incompatible += 1
        p_r = min(max(mr.prob(bucket), floor), 1.0 - floor)
        p_a = min(max(ma.prob(bucket), floor), 1.0 - floor)
        if compatible:
            contribution = math.log1p(-p_r) - math.log1p(-p_a)
        else:
            contribution = math.log(p_r) - math.log(p_a)
        total += contribution
        speed_kph = (
            float("inf") if gap == 0 and dist > 0
            else (dist / gap * 3.6 if gap > 0 else 0.0)
        )
        segments.append(
            SegmentEvidence(
                first=first,
                second=second,
                gap_s=gap,
                distance_m=dist,
                implied_speed_kph=speed_kph,
                compatible=compatible,
                bucket=bucket,
                prob_rejection=p_r,
                prob_acceptance=p_a,
                llr_contribution=contribution,
            )
        )
    segments.sort(key=lambda s: -abs(s.llr_contribution))
    return PairExplanation(
        segments=tuple(segments),
        total_llr=total,
        n_mutual=n_mutual,
        n_incompatible=n_incompatible,
    )
