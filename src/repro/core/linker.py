"""High-level FTL facade.

:class:`FTLLinker` bundles the full workflow — fit the rejection and
acceptance models on a database pair, run either linking algorithm for a
query, and return ranked candidates — behind one object:

    linker = FTLLinker(config).fit(p_db, q_db, rng)
    result = linker.link(p_db["taxi-17"], method="naive-bayes")
    for cand in result.candidates:
        print(cand.candidate_id, cand.score)

Both algorithms share the fitted model pair, and every returned
candidate carries the Eq. 2 ranking score, so downstream code (the
experiment pipeline, the examples) does not need to know which
algorithm produced the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.config import DEFAULT_CONFIG, FTLConfig
from repro.core.alignment import mutual_segment_profile
from repro.core.database import TrajectoryDatabase
from repro.core.filtering import AlphaFilter
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.core.trajectory import Trajectory
from repro.errors import NotFittedError, ValidationError

METHODS = ("alpha-filter", "naive-bayes")


@dataclass(frozen=True)
class Candidate:
    """One returned candidate with its ranking evidence."""

    candidate_id: object
    score: float
    p_rejection: float
    p_acceptance: float
    n_mutual: int
    n_incompatible: int


@dataclass(frozen=True)
class LinkResult:
    """Outcome of linking one query against a candidate database."""

    query_id: object
    method: str
    candidates: tuple[Candidate, ...]

    def candidate_ids(self) -> list[object]:
        """Candidate ids in rank order (best first)."""
        return [c.candidate_id for c in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)

    def contains(self, candidate_id: object) -> bool:
        return any(c.candidate_id == candidate_id for c in self.candidates)


class FTLLinker:
    """Fit-once / query-many fuzzy trajectory linker.

    Parameters
    ----------
    config:
        The shared :class:`~repro.config.FTLConfig`.
    alpha1, alpha2:
        Parameters of the (alpha1, alpha2)-filtering method.
    phi_r:
        Prior of the Naive-Bayes method.
    prefilter:
        Optional candidate pre-filter (see :mod:`repro.core.prefilter`)
        applied before the statistical tests; ``None`` keeps the
        paper's exhaustive candidate scan.
    """

    def __init__(
        self,
        config: FTLConfig = DEFAULT_CONFIG,
        *,
        alpha1: float = 0.05,
        alpha2: float = 0.05,
        phi_r: float = 0.01,
        prefilter=None,
    ) -> None:
        self._config = config
        self._alpha1 = alpha1
        self._alpha2 = alpha2
        self._phi_r = phi_r
        self._prefilter = prefilter
        self._mr: CompatibilityModel | None = None
        self._ma: CompatibilityModel | None = None
        self._candidate_db: TrajectoryDatabase | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        p_db: TrajectoryDatabase,
        q_db: TrajectoryDatabase,
        rng: np.random.Generator,
    ) -> "FTLLinker":
        """Fit the model pair on both databases and bind ``q_db`` as targets."""
        self._mr = CompatibilityModel.fit_rejection([p_db, q_db], self._config)
        self._ma = CompatibilityModel.fit_acceptance([p_db, q_db], self._config, rng)
        self._candidate_db = q_db
        return self

    def with_models(
        self,
        rejection_model: CompatibilityModel,
        acceptance_model: CompatibilityModel,
        q_db: TrajectoryDatabase,
    ) -> "FTLLinker":
        """Bind pre-fitted models (e.g. loaded from disk) instead of fitting."""
        self._mr = rejection_model
        self._ma = acceptance_model
        self._candidate_db = q_db
        return self

    @property
    def config(self) -> FTLConfig:
        return self._config

    @property
    def rejection_model(self) -> CompatibilityModel:
        self._require_fitted()
        return self._mr  # type: ignore[return-value]

    @property
    def acceptance_model(self) -> CompatibilityModel:
        self._require_fitted()
        return self._ma  # type: ignore[return-value]

    def _require_fitted(self) -> None:
        if self._mr is None or self._ma is None or self._candidate_db is None:
            raise NotFittedError("call fit() or with_models() before linking")

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------
    def link(
        self,
        query: Trajectory,
        method: str = "naive-bayes",
        candidates: Iterable[Trajectory] | None = None,
    ) -> LinkResult:
        """Return the ranked candidate set ``Q_P`` for one query.

        Parameters
        ----------
        query:
            The query trajectory ``P``.
        method:
            ``"alpha-filter"`` or ``"naive-bayes"``.
        candidates:
            Optional override of the candidate pool (defaults to the
            bound database) — used e.g. to restrict to a pre-filtered
            subset in the application examples.
        """
        self._require_fitted()
        if method not in METHODS:
            raise ValidationError(f"unknown method {method!r}; known: {METHODS}")
        pool: Iterable[Trajectory] = (
            self._candidate_db if candidates is None else candidates  # type: ignore[assignment]
        )
        if self._prefilter is not None:
            pool = [c for c in pool if self._prefilter.keep(query, c)]
        if method == "alpha-filter":
            matched_ids = self._alpha_filter_ids(query, pool)
        else:
            matched_ids = self._naive_bayes_ids(query, pool)
        ranked = self._score_and_rank(query, matched_ids)
        return LinkResult(query_id=query.traj_id, method=method, candidates=ranked)

    def _alpha_filter_ids(
        self, query: Trajectory, pool: Iterable[Trajectory]
    ) -> list[Trajectory]:
        matcher = AlphaFilter(self._mr, self._ma, self._alpha1, self._alpha2)
        matched: list[Trajectory] = []
        for candidate in pool:
            if matcher.decide(query, candidate).accepted:
                matched.append(candidate)
        return matched

    def _naive_bayes_ids(
        self, query: Trajectory, pool: Iterable[Trajectory]
    ) -> list[Trajectory]:
        matcher = NaiveBayesMatcher(self._mr, self._ma, self._phi_r)
        matched: list[Trajectory] = []
        for candidate in pool:
            if matcher.decide(query, candidate).same_person:
                matched.append(candidate)
        return matched

    def _score_and_rank(
        self, query: Trajectory, matched: Sequence[Trajectory]
    ) -> tuple[Candidate, ...]:
        scored: list[Candidate] = []
        for candidate in matched:
            profile = mutual_segment_profile(query, candidate, self._config)
            within = profile.within_horizon(self._mr.n_buckets)  # type: ignore[union-attr]
            p1 = rejection_pvalue(profile, self._mr)  # type: ignore[arg-type]
            p2 = acceptance_pvalue(profile, self._ma)  # type: ignore[arg-type]
            scored.append(
                Candidate(
                    candidate_id=candidate.traj_id,
                    score=p1 * (1.0 - p2),
                    p_rejection=p1,
                    p_acceptance=p2,
                    n_mutual=within.n_total,
                    n_incompatible=within.n_incompatible,
                )
            )
        scored.sort(key=lambda c: -c.score)
        return tuple(scored)

    # ------------------------------------------------------------------
    # Enrichment (Fig. 2's second knowledge gain)
    # ------------------------------------------------------------------
    def enrich(self, query: Trajectory, candidate_id: object) -> Trajectory:
        """Merge the query with a linked candidate into one trajectory.

        The paper's *trajectory enrichment*: after linking, the two
        sources' records are interleaved into a single richer
        trajectory for the identified person.
        """
        self._require_fitted()
        candidate = self._candidate_db[candidate_id]  # type: ignore[index]
        merged_id = (query.traj_id, candidate_id)
        return query.concat(candidate, traj_id=merged_id)
