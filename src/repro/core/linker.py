"""High-level FTL facade.

:class:`FTLLinker` bundles the full workflow — fit the rejection and
acceptance models on a database pair, run either linking algorithm for a
query, and return ranked candidates — behind one object:

    linker = FTLLinker(config, LinkOptions(method="naive-bayes")).fit(
        p_db, q_db, rng
    )
    result = linker.link(p_db["taxi-17"])
    for cand in result.candidates:
        print(cand.candidate_id, cand.score)

Since the batch-engine redesign the linker is a thin wrapper over
:class:`~repro.core.engine.LinkEngine`: the engine computes each
``(query, candidate)`` mutual-segment profile exactly once per call,
evaluates the candidate pool's evidence in flat NumPy arrays, and serves
both decision rules plus the Eq. 2 ranking from the same arrays.
:meth:`FTLLinker.link_batch` exposes the many-queries path; per-query
results are bit-identical to sequential :meth:`FTLLinker.link` calls.

The linking hyperparameters live in one frozen
:class:`~repro.core.engine.LinkOptions` bundle; the keyword arguments
``alpha1`` / ``alpha2`` / ``phi_r`` / ``prefilter`` remain as
constructor shorthand for building one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.config import DEFAULT_CONFIG, FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.core.engine import (
    METHODS,
    Candidate,
    LinkEngine,
    LinkOptions,
    LinkResult,
    ProfileCache,
)
from repro.core.models import CompatibilityModel
from repro.core.trajectory import Trajectory
from repro.errors import NotFittedError, ValidationError

__all__ = [
    "METHODS",
    "Candidate",
    "FTLLinker",
    "LinkOptions",
    "LinkResult",
]


class FTLLinker:
    """Fit-once / query-many fuzzy trajectory linker.

    Parameters
    ----------
    config:
        The shared :class:`~repro.config.FTLConfig`.
    options:
        The linking hyperparameters as one
        :class:`~repro.core.engine.LinkOptions` bundle; defaults to
        ``LinkOptions()``.
    alpha1, alpha2, phi_r, prefilter:
        Shorthand overrides applied on top of ``options`` (equivalent
        to ``options.with_updates(...)``).
    """

    def __init__(
        self,
        config: FTLConfig = DEFAULT_CONFIG,
        options: LinkOptions | None = None,
        *,
        alpha1: float | None = None,
        alpha2: float | None = None,
        phi_r: float | None = None,
        prefilter=None,
    ) -> None:
        self._config = config
        base = options if options is not None else LinkOptions()
        overrides = {
            key: value
            for key, value in (
                ("alpha1", alpha1),
                ("alpha2", alpha2),
                ("phi_r", phi_r),
                ("prefilter", prefilter),
            )
            if value is not None
        }
        if overrides:
            base = base.with_updates(**overrides)
        self._options = base
        self._engine: LinkEngine | None = None
        self._candidate_db: TrajectoryDatabase | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        p_db: TrajectoryDatabase,
        q_db: TrajectoryDatabase,
        rng: np.random.Generator,
    ) -> "FTLLinker":
        """Fit the model pair on both databases and bind ``q_db`` as targets."""
        mr = CompatibilityModel.fit_rejection([p_db, q_db], self._config)
        ma = CompatibilityModel.fit_acceptance([p_db, q_db], self._config, rng)
        self._engine = LinkEngine(mr, ma, options=self._options)
        self._candidate_db = q_db
        return self

    def with_models(
        self,
        rejection_model: CompatibilityModel,
        acceptance_model: CompatibilityModel,
        q_db: TrajectoryDatabase,
    ) -> "FTLLinker":
        """Bind pre-fitted models (e.g. loaded from disk) instead of fitting."""
        self._engine = LinkEngine(
            rejection_model, acceptance_model, options=self._options
        )
        self._candidate_db = q_db
        return self

    @property
    def config(self) -> FTLConfig:
        return self._config

    @property
    def options(self) -> LinkOptions:
        """The default hyperparameter bundle used by :meth:`link`."""
        return self._options

    @property
    def engine(self) -> LinkEngine:
        """The bound batch engine (after :meth:`fit` / :meth:`with_models`)."""
        self._require_fitted()
        return self._engine  # type: ignore[return-value]

    @property
    def profile_cache(self) -> ProfileCache:
        """The engine's profile cache (for stats and invalidation)."""
        return self.engine.cache

    @property
    def rejection_model(self) -> CompatibilityModel:
        return self.engine.rejection_model

    @property
    def acceptance_model(self) -> CompatibilityModel:
        return self.engine.acceptance_model

    def _require_fitted(self) -> None:
        if self._engine is None or self._candidate_db is None:
            raise NotFittedError("call fit() or with_models() before linking")

    def _resolve_options(
        self, method: str | None, options: LinkOptions | None
    ) -> LinkOptions:
        opts = self._options if options is None else options
        if not isinstance(opts, LinkOptions):
            raise ValidationError(
                f"options must be a LinkOptions, got {type(opts).__name__}"
            )
        if method is not None:
            opts = opts.with_updates(method=method)
        return opts

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------
    def link(
        self,
        query: Trajectory,
        method: str | None = None,
        candidates: Iterable[Trajectory] | None = None,
        *,
        options: LinkOptions | None = None,
    ) -> LinkResult:
        """Return the ranked candidate set ``Q_P`` for one query.

        Parameters
        ----------
        query:
            The query trajectory ``P``.
        method:
            Shorthand override of ``options.method`` (``"alpha-filter"``
            or ``"naive-bayes"``).
        candidates:
            Optional override of the candidate pool (defaults to the
            bound database) — used e.g. to restrict to a pre-filtered
            subset in the application examples.
        options:
            Per-call :class:`~repro.core.engine.LinkOptions` override of
            the linker's defaults.
        """
        return self.link_batch(
            [query], method=method, candidates=candidates, options=options
        )[0]

    def link_batch(
        self,
        queries: Sequence[Trajectory],
        method: str | None = None,
        candidates: Iterable[Trajectory] | None = None,
        *,
        options: LinkOptions | None = None,
    ) -> list[LinkResult]:
        """Link many queries against the shared candidate pool.

        Results follow the input query order and are bit-identical to a
        loop of :meth:`link` calls, but every ``(query, candidate)``
        profile is computed at most once (served from the engine's
        profile cache thereafter).
        """
        self._require_fitted()
        opts = self._resolve_options(method, options)
        pool: Iterable[Trajectory] = (
            self._candidate_db if candidates is None else candidates  # type: ignore[assignment]
        )
        return self.engine.link_batch(queries, pool, opts)

    # ------------------------------------------------------------------
    # Enrichment (Fig. 2's second knowledge gain)
    # ------------------------------------------------------------------
    def enrich(self, query: Trajectory, candidate_id: object) -> Trajectory:
        """Merge the query with a linked candidate into one trajectory.

        The paper's *trajectory enrichment*: after linking, the two
        sources' records are interleaved into a single richer
        trajectory for the identified person.
        """
        self._require_fitted()
        candidate = self._candidate_db[candidate_id]  # type: ignore[index]
        merged_id = (query.traj_id, candidate_id)
        return query.concat(candidate, traj_id=merged_id)
