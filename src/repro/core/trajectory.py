"""Trajectories: immutable, time-sorted sequences of records.

A :class:`Trajectory` stores its records columnarly (three float64 arrays
``ts``, ``xs``, ``ys``) because alignment and model building are NumPy
merges over those columns.  The scalar :class:`~repro.core.records.Record`
view is materialised lazily for user code that prefers objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import EmptyTrajectoryError, UnsortedRecordsError, ValidationError
from repro.core.records import Record


class Trajectory:
    """A time-sorted sequence of location-timestamp records for one owner.

    Parameters
    ----------
    ts, xs, ys:
        Equal-length 1-D arrays of timestamps (seconds) and coordinates.
        Timestamps must be non-decreasing; pass ``sort=True`` to let the
        constructor sort them.
    traj_id:
        Identifier of the trajectory within its database (the paper's
        card ID / taxi ID / user name).  Any hashable value.
    sort:
        If true, records are sorted by time (stable) instead of
        requiring pre-sorted input.
    """

    __slots__ = ("_ts", "_xs", "_ys", "_traj_id")

    def __init__(
        self,
        ts: Sequence[float] | np.ndarray,
        xs: Sequence[float] | np.ndarray,
        ys: Sequence[float] | np.ndarray,
        traj_id: object = None,
        *,
        sort: bool = False,
    ) -> None:
        ts_arr = np.asarray(ts, dtype=np.float64)
        xs_arr = np.asarray(xs, dtype=np.float64)
        ys_arr = np.asarray(ys, dtype=np.float64)
        if not (ts_arr.ndim == xs_arr.ndim == ys_arr.ndim == 1):
            raise ValidationError("ts, xs, ys must be one-dimensional")
        if not (ts_arr.shape == xs_arr.shape == ys_arr.shape):
            raise ValidationError(
                f"ts, xs, ys must have equal lengths, got "
                f"{ts_arr.shape[0]}, {xs_arr.shape[0]}, {ys_arr.shape[0]}"
            )
        if ts_arr.size and not np.all(np.isfinite(ts_arr)):
            raise ValidationError("timestamps must be finite")
        if ts_arr.size and not (
            np.all(np.isfinite(xs_arr)) and np.all(np.isfinite(ys_arr))
        ):
            raise ValidationError("coordinates must be finite")
        if sort:
            order = np.argsort(ts_arr, kind="stable")
            ts_arr = ts_arr[order]
            xs_arr = xs_arr[order]
            ys_arr = ys_arr[order]
        elif ts_arr.size > 1 and np.any(np.diff(ts_arr) < 0):
            raise UnsortedRecordsError(
                "timestamps must be non-decreasing (pass sort=True to sort)"
            )
        self._ts = ts_arr
        self._xs = xs_arr
        self._ys = ys_arr
        self._traj_id = traj_id

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Record], traj_id: object = None, *, sort: bool = False
    ) -> "Trajectory":
        """Build a trajectory from :class:`Record` objects."""
        recs = list(records)
        return cls(
            [r.t for r in recs],
            [r.x for r in recs],
            [r.y for r in recs],
            traj_id,
            sort=sort,
        )

    @classmethod
    def empty(cls, traj_id: object = None) -> "Trajectory":
        """A trajectory with no records."""
        return cls([], [], [], traj_id)

    @classmethod
    def from_arrays_unchecked(
        cls,
        ts: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        traj_id: object = None,
    ) -> "Trajectory":
        """Wrap pre-validated columnar arrays without copying or checking.

        The fast path for storage backends (:mod:`repro.store`) whose
        data was validated when written: the arrays are adopted as-is —
        including ``numpy.memmap`` views, keeping loads zero-copy — so
        the caller guarantees equal-length 1-D float64 columns with
        finite values and non-decreasing timestamps.  Violating that
        contract breaks downstream invariants silently; when in doubt,
        use the validating constructor.
        """
        obj = object.__new__(cls)
        obj._ts = ts
        obj._xs = xs
        obj._ys = ys
        obj._traj_id = traj_id
        return obj

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._ts.shape[0])

    def __iter__(self) -> Iterator[Record]:
        for t, x, y in zip(self._ts, self._xs, self._ys):
            yield Record(float(t), float(x), float(y))

    def __getitem__(self, index: int) -> Record:
        t = self._ts[index]
        return Record(float(t), float(self._xs[index]), float(self._ys[index]))

    def __repr__(self) -> str:
        span = f", span={self.duration:.0f}s" if len(self) > 1 else ""
        return f"Trajectory(id={self._traj_id!r}, n={len(self)}{span})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            self._traj_id == other._traj_id
            and np.array_equal(self._ts, other._ts)
            and np.array_equal(self._xs, other._xs)
            and np.array_equal(self._ys, other._ys)
        )

    def __hash__(self) -> int:  # identity hash; content equality above
        return id(self)

    # ------------------------------------------------------------------
    # Columnar accessors (read-only views — the hot-path API)
    # ------------------------------------------------------------------
    @property
    def traj_id(self) -> object:
        return self._traj_id

    @property
    def ts(self) -> np.ndarray:
        view = self._ts.view()
        view.flags.writeable = False
        return view

    @property
    def xs(self) -> np.ndarray:
        view = self._xs.view()
        view.flags.writeable = False
        return view

    @property
    def ys(self) -> np.ndarray:
        view = self._ys.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Statistics (the columns reported in the paper's Table I)
    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        self._require_nonempty("start_time")
        return float(self._ts[0])

    @property
    def end_time(self) -> float:
        self._require_nonempty("end_time")
        return float(self._ts[-1])

    @property
    def duration(self) -> float:
        """Elapsed seconds between the first and last record (0 if < 2)."""
        if len(self) < 2:
            return 0.0
        return float(self._ts[-1] - self._ts[0])

    def gaps(self) -> np.ndarray:
        """Time differences between consecutive records, in seconds."""
        if len(self) < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(self._ts)

    def mean_gap(self) -> float:
        """Mean inter-record gap in seconds (paper's "mean of timediff")."""
        gaps = self.gaps()
        return float(gaps.mean()) if gaps.size else 0.0

    def _require_nonempty(self, op: str) -> None:
        if len(self) == 0:
            raise EmptyTrajectoryError(f"{op} on an empty trajectory")

    # ------------------------------------------------------------------
    # Transformations (all return new trajectories)
    # ------------------------------------------------------------------
    def with_id(self, traj_id: object) -> "Trajectory":
        """The same records under a different identifier."""
        return Trajectory(self._ts, self._xs, self._ys, traj_id)

    def slice_time(self, start_s: float, end_s: float) -> "Trajectory":
        """Records with ``start_s <= t < end_s``."""
        if end_s < start_s:
            raise ValidationError(f"empty interval [{start_s}, {end_s})")
        mask = (self._ts >= start_s) & (self._ts < end_s)
        return Trajectory(
            self._ts[mask], self._xs[mask], self._ys[mask], self._traj_id
        )

    def head_duration(self, duration_s: float) -> "Trajectory":
        """Records within ``duration_s`` seconds of the first record."""
        if len(self) == 0:
            return self
        return self.slice_time(self.start_time, self.start_time + duration_s)

    def downsample(self, rate: float, rng: np.random.Generator) -> "Trajectory":
        """Keep each record independently with probability ``rate``.

        This is the paper's "sampling rate" knob (Section VII-A):
        ``rate=0.02`` keeps ~2% of records.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"rate must be in [0, 1], got {rate}")
        if rate == 1.0 or len(self) == 0:
            return self
        mask = rng.random(len(self)) < rate
        return Trajectory(
            self._ts[mask], self._xs[mask], self._ys[mask], self._traj_id
        )

    def thin(self, keep_every: int) -> "Trajectory":
        """Deterministically keep every ``keep_every``-th record."""
        if keep_every < 1:
            raise ValidationError(f"keep_every must be >= 1, got {keep_every}")
        return Trajectory(
            self._ts[::keep_every],
            self._xs[::keep_every],
            self._ys[::keep_every],
            self._traj_id,
        )

    def time_shifted(self, offset_s: float) -> "Trajectory":
        """All timestamps shifted by ``offset_s`` seconds."""
        return Trajectory(self._ts + offset_s, self._xs, self._ys, self._traj_id)

    def concat(self, other: "Trajectory", traj_id: object = None) -> "Trajectory":
        """Merge two trajectories into one time-sorted trajectory.

        This is the paper's *trajectory enrichment* operation (Fig. 2):
        the linked records of one person from two sources merged into a
        single richer trajectory.
        """
        ts = np.concatenate([self._ts, other._ts])
        xs = np.concatenate([self._xs, other._xs])
        ys = np.concatenate([self._ys, other._ys])
        return Trajectory(ts, xs, ys, traj_id, sort=True)

    def records(self) -> list[Record]:
        """All records as a list of :class:`Record` objects."""
        return list(self)
