"""Temporal blocking index over a candidate database.

Record-linkage systems *block* before they compare (see the paper's
related-work survey [13]); FTL's analogue is skipping candidates whose
observation window cannot interact with the query's.
:class:`CandidateIndex` pre-sorts the candidate database by observation
window and answers "which candidates overlap this query window by at
least T seconds" in O(log n + k), so repeated queries avoid the full
linear scan that :class:`~repro.core.prefilter.TimeOverlapPrefilter`
performs per pair.

Correctness contract: :meth:`candidates_for` returns a *superset* of
the candidates any overlap-based prefilter would keep, so plugging the
index in never loses a match relative to the prefilter.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


class CandidateIndex:
    """Interval index over candidate observation windows.

    Parameters
    ----------
    db:
        The candidate database; empty trajectories are excluded (they
        can never match).
    """

    def __init__(self, db: TrajectoryDatabase) -> None:
        entries = [
            (traj.start_time, traj.end_time, traj.traj_id)
            for traj in db
            if len(traj) > 0
        ]
        entries.sort(key=lambda e: e[0])
        self._starts = np.array([e[0] for e in entries], dtype=np.float64)
        self._ends = np.array([e[1] for e in entries], dtype=np.float64)
        self._ids = [e[2] for e in entries]
        # max end over the sorted prefix lets us bound the scan.
        self._prefix_max_end = (
            np.maximum.accumulate(self._ends)
            if self._ends.size
            else self._ends
        )
        self._db = db

    def __len__(self) -> int:
        return len(self._ids)

    def candidates_for(
        self,
        query: Trajectory,
        min_overlap_s: float = 0.0,
    ) -> list[Trajectory]:
        """Candidates whose window overlaps the query's by >= the minimum.

        Overlap of ``[a0, a1]`` and ``[b0, b1]`` is
        ``min(a1, b1) - max(a0, b0)``; candidates below ``min_overlap_s``
        are excluded.
        """
        if min_overlap_s < 0:
            raise ValidationError(
                f"min_overlap_s must be >= 0, got {min_overlap_s}"
            )
        if len(query) == 0 or len(self._ids) == 0:
            return []
        q_start, q_end = query.start_time, query.end_time
        # Candidates starting after q_end - min_overlap cannot reach the
        # required overlap; binary-search that boundary.
        hi = int(np.searchsorted(self._starts, q_end - min_overlap_s, "right"))
        # The per-candidate overlap below is computed with a rounding
        # subtraction, so a start just past the exact cutoff can still
        # round to an overlap >= min_overlap_s.  Extend the boundary
        # while the rounded upper bound (q_end - start) still reaches
        # the threshold; starts are sorted, so this stops immediately in
        # the common case and keeps the superset contract exact.
        n = int(self._starts.size)
        while hi < n and q_end - float(self._starts[hi]) >= min_overlap_s:
            hi += 1
        out: list[Trajectory] = []
        for i in range(hi):
            overlap = min(self._ends[i], q_end) - max(self._starts[i], q_start)
            if overlap >= min_overlap_s:
                out.append(self._db[self._ids[i]])
        return out

    def ids_for(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> list[object]:
        """Like :meth:`candidates_for` but returning ids only."""
        return [
            t.traj_id for t in self.candidates_for(query, min_overlap_s)
        ]

    def coverage_window(self) -> tuple[float, float]:
        """The (earliest start, latest end) over all indexed candidates."""
        if len(self._ids) == 0:
            raise ValidationError("index is empty")
        return float(self._starts.min()), float(self._ends.max())
