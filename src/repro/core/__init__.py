"""Core FTL machinery: data model, alignment, models, matchers, metrics."""

from repro.core.alignment import (
    AlignedTrajectory,
    MutualSegmentProfile,
    Segment,
    align,
    mutual_segment_profile,
)
from repro.core.assignment import (
    Assignment,
    assign_queries,
    greedy_assignment,
    optimal_assignment,
)
from repro.core.compatibility import (
    is_compatible,
    compatibility_many,
    implied_speed,
)
from repro.core.database import TrajectoryDatabase
from repro.core.engine import (
    CacheStats,
    LinkEngine,
    LinkOptions,
    ProfileCache,
)
from repro.core.diagnostics import (
    bucket_divergence,
    discriminability,
    format_model_table,
    model_table,
)
from repro.core.filtering import AlphaFilter, FilterDecision
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.linker import Candidate, FTLLinker, LinkResult
from repro.core.metrics import (
    hits_within_topk,
    perceptiveness,
    precision_at_k,
    selectiveness,
)
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher, NBDecision
from repro.core.prefilter import (
    MutualSegmentCountPrefilter,
    NullPrefilter,
    TimeOverlapPrefilter,
)
from repro.core.ranking import rank_candidates, score_candidate
from repro.core.records import Record
from repro.core.trajectory import Trajectory

__all__ = [
    "AlignedTrajectory",
    "AlphaFilter",
    "Assignment",
    "CacheStats",
    "Candidate",
    "CompatibilityModel",
    "FTLLinker",
    "FilterDecision",
    "LinkEngine",
    "LinkOptions",
    "LinkResult",
    "ProfileCache",
    "MutualSegmentCountPrefilter",
    "MutualSegmentProfile",
    "NBDecision",
    "NaiveBayesMatcher",
    "NullPrefilter",
    "Record",
    "Segment",
    "TimeOverlapPrefilter",
    "Trajectory",
    "TrajectoryDatabase",
    "acceptance_pvalue",
    "align",
    "assign_queries",
    "bucket_divergence",
    "compatibility_many",
    "discriminability",
    "format_model_table",
    "greedy_assignment",
    "hits_within_topk",
    "implied_speed",
    "is_compatible",
    "model_table",
    "mutual_segment_profile",
    "optimal_assignment",
    "perceptiveness",
    "precision_at_k",
    "rank_candidates",
    "rejection_pvalue",
    "score_candidate",
    "selectiveness",
]
