"""Candidate ranking (paper Section V, Equation 2).

Any candidate ``Q`` of a query ``P`` is scored by

    v_PQ = p1 * (1 - p2)

where ``p1`` is the alpha1-rejection p-value (large when the pair is
consistent with the same-person model) and ``p2`` the alpha2-acceptance
p-value (small when the pair is inconsistent with the different-person
model).  Larger scores mean more likely true matches.  The same score is
applied to Naive-Bayes candidate sets, as the paper prescribes, since the
NB posterior itself needs an unavailable prior ``Pr(b_1..b_n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.alignment import MutualSegmentProfile, mutual_segment_profile
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.trajectory import Trajectory


@dataclass(frozen=True)
class ScoredCandidate:
    """A candidate id with its ranking score and the underlying p-values."""

    candidate_id: object
    score: float
    p_rejection: float
    p_acceptance: float


def score_candidate(
    profile: MutualSegmentProfile,
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
) -> ScoredCandidate:
    """Score one pre-computed profile with Eq. 2 (id left as ``None``)."""
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    p1 = rejection_pvalue(profile, mr)
    p2 = acceptance_pvalue(profile, ma)
    return ScoredCandidate(
        candidate_id=None,
        score=p1 * (1.0 - p2),
        p_rejection=p1,
        p_acceptance=p2,
    )


def rank_candidates(
    query: Trajectory,
    candidates: Iterable[Trajectory],
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
) -> list[ScoredCandidate]:
    """Score every candidate and return them sorted by non-increasing score.

    Ties are broken by candidate order (stable sort), matching the
    paper's non-increasing-likelihood examination order.
    """
    mr, ma = require_fitted_pair(rejection_model, acceptance_model)
    scored: list[ScoredCandidate] = []
    for candidate in candidates:
        profile = mutual_segment_profile(query, candidate, mr.config)
        base = score_candidate(profile, mr, ma)
        scored.append(
            ScoredCandidate(
                candidate_id=candidate.traj_id,
                score=base.score,
                p_rejection=base.p_rejection,
                p_acceptance=base.p_acceptance,
            )
        )
    scored.sort(key=lambda c: -c.score)
    return scored


def top_k(ranked: Sequence[ScoredCandidate], k: int) -> list[ScoredCandidate]:
    """The first ``k`` entries of an already-ranked candidate list."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return list(ranked[:k])
