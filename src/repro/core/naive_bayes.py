"""The Naive-Bayes-matching algorithm (paper Section IV-E).

Let ``(b_1, ..., b_n)`` be the incompatibility indicators of the mutual
segments of an aligned pair.  The matcher compares the two posteriors

    Pr(Mr | b) ~ phi_r * prod_i s_r^(l_i)^{b_i} (1 - s_r^(l_i))^{1-b_i}
    Pr(Ma | b) ~ phi_a * prod_i s_a^(l_i)^{b_i} (1 - s_a^(l_i))^{1-b_i}

and declares *same person* when the rejection-model posterior wins.
``phi_r`` is the prior probability that a random (P, Q) pair is of one
person; when unknown it acts as a strictness knob — larger ``phi_r``
loosens candidate selection (paper Section IV-E's discussion).

All likelihoods are computed in log space with probability clamping to
``[prob_floor, 1 - prob_floor]`` so that zero-probability buckets (e.g.
beyond-horizon segments) never produce ``-inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.alignment import MutualSegmentProfile, mutual_segment_profile
from repro.core.database import TrajectoryDatabase
from repro.core.models import CompatibilityModel, require_fitted_pair
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


@dataclass(frozen=True)
class NBDecision:
    """Outcome of Naive-Bayes-matching one (query, candidate) pair.

    Attributes
    ----------
    candidate_id:
        Id of the tested candidate.
    log_likelihood_rejection / log_likelihood_acceptance:
        Log observation likelihood under ``Mr`` / ``Ma``.
    log_posterior_ratio:
        ``log(phi_r L(Mr)) - log(phi_a L(Ma))``; positive means the
        same-person model wins.
    same_person:
        The decision (``log_posterior_ratio >= 0``).
    n_mutual, n_incompatible:
        Size of the in-horizon observation.
    """

    candidate_id: object
    log_likelihood_rejection: float
    log_likelihood_acceptance: float
    log_posterior_ratio: float
    same_person: bool
    n_mutual: int
    n_incompatible: int


def _log_likelihood(
    ps: np.ndarray, incompatible: np.ndarray, floor: float
) -> float:
    """``sum_i log(p_i)`` over incompatible plus ``log(1-p_i)`` over compatible."""
    clamped = np.clip(ps, floor, 1.0 - floor)
    return float(
        np.log(clamped[incompatible]).sum()
        + np.log1p(-clamped[~incompatible]).sum()
    )


class NaiveBayesMatcher:
    """Naive-Bayes matcher bound to a fitted (Mr, Ma) model pair.

    Parameters
    ----------
    rejection_model, acceptance_model:
        The fitted models (must share one config).
    phi_r:
        Prior probability ``Pr(M = Mr)`` that a pair is of the same
        person, in (0, 1).  ``phi_a = 1 - phi_r``.
    """

    def __init__(
        self,
        rejection_model: CompatibilityModel,
        acceptance_model: CompatibilityModel,
        phi_r: float = 0.01,
    ) -> None:
        self._mr, self._ma = require_fitted_pair(rejection_model, acceptance_model)
        if not 0.0 < phi_r < 1.0:
            raise ValidationError(f"phi_r must be in (0, 1), got {phi_r}")
        self._phi_r = float(phi_r)

    @property
    def phi_r(self) -> float:
        return self._phi_r

    @property
    def phi_a(self) -> float:
        return 1.0 - self._phi_r

    @property
    def config(self):
        return self._mr.config

    def decide_profile(
        self, profile: MutualSegmentProfile, candidate_id: object = None
    ) -> NBDecision:
        """Classify a pre-computed mutual-segment profile."""
        floor = self.config.prob_floor
        within = profile.within_horizon(self._mr.n_buckets)
        ps_r = self._mr.probs_for(within.buckets)
        ps_a = self._ma.probs_for(within.buckets)
        ll_r = _log_likelihood(ps_r, within.incompatible, floor)
        ll_a = _log_likelihood(ps_a, within.incompatible, floor)
        ratio = (math.log(self._phi_r) + ll_r) - (math.log(self.phi_a) + ll_a)
        return NBDecision(
            candidate_id=candidate_id,
            log_likelihood_rejection=ll_r,
            log_likelihood_acceptance=ll_a,
            log_posterior_ratio=ratio,
            same_person=ratio >= 0.0,
            n_mutual=within.n_total,
            n_incompatible=within.n_incompatible,
        )

    def decide(
        self,
        query: Trajectory,
        candidate: Trajectory,
        profile: MutualSegmentProfile | None = None,
    ) -> NBDecision:
        """Classify one (query, candidate) trajectory pair.

        Pass ``profile`` when the pair's mutual-segment profile is
        already known (e.g. from a :class:`~repro.core.engine.ProfileCache`)
        so the pair is not aligned a second time.
        """
        if profile is None:
            profile = mutual_segment_profile(query, candidate, self.config)
        return self.decide_profile(profile, candidate_id=candidate.traj_id)

    def query(
        self,
        query: Trajectory,
        candidates: TrajectoryDatabase | Iterable[Trajectory],
    ) -> list[NBDecision]:
        """Decisions for every candidate classified *same person*.

        Returned in database order; the paper ranks them separately via
        the (alpha1, alpha2)-filtering score when needed (Section V).
        """
        matched: list[NBDecision] = []
        for candidate in candidates:
            decision = self.decide(query, candidate)
            if decision.same_person:
                matched.append(decision)
        return matched
