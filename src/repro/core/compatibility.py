"""Mutual-segment compatibility (paper Definition 3).

A segment formed by two records is *compatible* when a person could have
travelled between its endpoints without exceeding the speed cap:

    dist(w_i, w_{i+1}) / timediff(w_i, w_{i+1}) <= Vmax

Zero time difference is handled by the equivalent multiplicative form
``dist <= Vmax * dt``: two simultaneous observations are compatible only
if they coincide spatially.

The scalar helpers resolve the distance metric through
:attr:`repro.config.FTLConfig.metric_fn` (cached on the config) rather
than re-dispatching :func:`repro.geo.distance.get_metric` per record
pair; batch paths should use the ``*_many`` functions, which take flat
coordinate arrays and pay the metric resolution exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.config import FTLConfig
from repro.core.records import Record


def implied_speed(a: Record, b: Record, config: FTLConfig) -> float:
    """Speed in m/s implied by travelling between two records.

    Returns ``inf`` for distinct locations at identical timestamps and
    ``0.0`` for coincident records.
    """
    dist = float(config.metric_fn(a.x, a.y, b.x, b.y))
    dt = abs(b.t - a.t)
    if dt == 0.0:
        return float("inf") if dist > 0.0 else 0.0
    return dist / dt


def is_compatible(a: Record, b: Record, config: FTLConfig) -> bool:
    """Whether the segment ``(a, b)`` is compatible under ``config.vmax_kph``."""
    dist = float(config.metric_fn(a.x, a.y, b.x, b.y))
    dt = abs(b.t - a.t)
    return dist <= config.vmax_mps * dt


def implied_speeds_many(
    x1: np.ndarray,
    y1: np.ndarray,
    x2: np.ndarray,
    y2: np.ndarray,
    dts_s: np.ndarray,
    config: FTLConfig,
) -> np.ndarray:
    """Vectorised :func:`implied_speed` over flat endpoint arrays.

    The metric is resolved once for the whole batch.  Zero-``dt``
    segments get ``inf`` for distinct endpoints and ``0.0`` for
    coincident ones, matching the scalar convention.
    """
    dists = np.asarray(config.metric_fn(x1, y1, x2, y2), dtype=np.float64)
    dts = np.abs(np.asarray(dts_s, dtype=np.float64))
    out = np.zeros(dists.shape, dtype=np.float64)
    moving = dts > 0.0
    np.divide(dists, dts, out=out, where=moving)
    out[~moving & (dists > 0.0)] = np.inf
    return out


def compatibility_many(
    dists_m: np.ndarray, dts_s: np.ndarray, config: FTLConfig
) -> np.ndarray:
    """Vectorised compatibility of segments given distances and time gaps.

    Parameters
    ----------
    dists_m:
        Segment endpoint distances in metres.
    dts_s:
        Non-negative segment time differences in seconds.

    Returns
    -------
    Boolean array: ``True`` where the segment is compatible.
    """
    return np.asarray(dists_m) <= config.vmax_mps * np.asarray(dts_s)


def incompatibility_many(
    dists_m: np.ndarray, dts_s: np.ndarray, config: FTLConfig
) -> np.ndarray:
    """Vectorised *incompatibility* indicator (the models' success event)."""
    return ~compatibility_many(dists_m, dts_s, config)
