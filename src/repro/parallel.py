"""Parallel linking across queries (the paper's future-work direction).

The paper's conclusion: *"we plan to explore parallel and distributed
implementation of our algorithms for efficient large-scale fuzzy
linking"*.  Queries are embarrassingly parallel — each query scans the
candidate database independently against the shared fitted models — so
this module shards the query set over a process pool.

Each worker builds one :class:`~repro.core.engine.LinkEngine` from the
broadcast models (shipped once via the pool initializer, not per task)
and processes its query shards through the engine's batch API, so the
per-pair profile-once evidence path and profile cache are shared within
a worker.  Results are returned in the input query order and are
bit-identical to the sequential path (covered by tests).

Hyperparameters travel as one :class:`~repro.core.engine.LinkOptions`
bundle.  (The pre-1.0 ``alpha1`` / ``alpha2`` / ``phi_r`` keyword
aliases have been removed; see ``docs/api-v1.md`` for the migration
table.)
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Sequence

from repro.core.database import TrajectoryDatabase
from repro.core.engine import LinkEngine, LinkOptions
from repro.core.linker import LinkResult
from repro.core.models import CompatibilityModel
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError

# Worker-process globals, installed once by _init_worker.
_WORKER_ENGINE: LinkEngine | None = None
_WORKER_DB: TrajectoryDatabase | None = None


def _init_worker(
    mr_payload: dict,
    ma_payload: dict,
    q_db: TrajectoryDatabase,
    options: LinkOptions,
) -> None:
    global _WORKER_ENGINE, _WORKER_DB
    mr = CompatibilityModel.from_dict(mr_payload)
    ma = CompatibilityModel.from_dict(ma_payload)
    _WORKER_ENGINE = LinkEngine(mr, ma, options=options)
    _WORKER_DB = q_db


def _link_shard(queries: Sequence[Trajectory]) -> list[LinkResult]:
    assert _WORKER_ENGINE is not None and _WORKER_DB is not None, (
        "worker not initialised"
    )
    return _WORKER_ENGINE.link_batch(queries, _WORKER_DB)


def _resolve_options(
    options: LinkOptions | None, method: str | None
) -> LinkOptions:
    """The options bundle with the optional ``method`` shorthand applied."""
    opts = LinkOptions() if options is None else options
    if not isinstance(opts, LinkOptions):
        raise ValidationError(
            f"options must be a LinkOptions, got {type(opts).__name__}"
        )
    if method is not None:
        opts = opts.with_updates(method=method)
    return opts


def link_queries_parallel(
    queries: Sequence[Trajectory],
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    q_db: TrajectoryDatabase,
    method: str | None = None,
    n_workers: int | None = None,
    *,
    options: LinkOptions | None = None,
    chunksize: int = 4,
) -> list[LinkResult]:
    """Link many queries in parallel; results follow the input order.

    Parameters
    ----------
    queries:
        Query trajectories (each linked against all of ``q_db``).
    rejection_model, acceptance_model:
        The fitted (Mr, Ma) pair, broadcast to every worker.
    method:
        Shorthand override of ``options.method``.
    n_workers:
        Process count; defaults to ``os.cpu_count()``.  ``n_workers=1``
        short-circuits to the in-process batch engine (useful for
        debugging and on platforms without cheap forking).
    options:
        The hyperparameter bundle shipped to every worker.  Tuning
        knobs (``alpha1``, ``alpha2``, ``phi_r``, ...) are fields of
        this bundle — the pre-1.0 keyword aliases were removed.
    chunksize:
        Queries per shard; larger amortises IPC for cheap queries.
    """
    if not queries:
        raise ValidationError("need at least one query")
    if n_workers is not None and n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
    opts = _resolve_options(options, method)

    if n_workers == 1:
        engine = LinkEngine(rejection_model, acceptance_model, options=opts)
        return engine.link_batch(queries, q_db)

    shards = [
        queries[start: start + chunksize]
        for start in range(0, len(queries), chunksize)
    ]
    ctx = mp.get_context()
    init_args = (
        rejection_model.to_dict(),
        acceptance_model.to_dict(),
        q_db,
        opts,
    )
    with ctx.Pool(
        processes=n_workers, initializer=_init_worker, initargs=init_args
    ) as pool:
        per_shard = pool.map(_link_shard, shards)
    return [result for shard in per_shard for result in shard]
