"""Parallel linking across queries (the paper's future-work direction).

The paper's conclusion: *"we plan to explore parallel and distributed
implementation of our algorithms for efficient large-scale fuzzy
linking"*.  Queries are embarrassingly parallel — each query scans the
candidate database independently against the shared fitted models — so
this module fans the query set out over a process pool.

The fitted models and the candidate database are shipped to each worker
once (via the pool initializer), not per task, so the per-query
overhead stays tiny.  Results are returned in the input query order and
are bit-identical to the sequential path (covered by tests).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Sequence

from repro.core.database import TrajectoryDatabase
from repro.core.linker import FTLLinker, LinkResult
from repro.core.models import CompatibilityModel
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError

# Worker-process globals, installed once by _init_worker.
_WORKER_LINKER: FTLLinker | None = None
_WORKER_METHOD: str = "naive-bayes"


def _init_worker(
    mr_payload: dict,
    ma_payload: dict,
    q_db: TrajectoryDatabase,
    method: str,
    alpha1: float,
    alpha2: float,
    phi_r: float,
) -> None:
    global _WORKER_LINKER, _WORKER_METHOD
    mr = CompatibilityModel.from_dict(mr_payload)
    ma = CompatibilityModel.from_dict(ma_payload)
    _WORKER_LINKER = FTLLinker(
        mr.config, alpha1=alpha1, alpha2=alpha2, phi_r=phi_r
    ).with_models(mr, ma, q_db)
    _WORKER_METHOD = method


def _link_one(query: Trajectory) -> LinkResult:
    assert _WORKER_LINKER is not None, "worker not initialised"
    return _WORKER_LINKER.link(query, method=_WORKER_METHOD)


def link_queries_parallel(
    queries: Sequence[Trajectory],
    rejection_model: CompatibilityModel,
    acceptance_model: CompatibilityModel,
    q_db: TrajectoryDatabase,
    method: str = "naive-bayes",
    n_workers: int | None = None,
    *,
    alpha1: float = 0.05,
    alpha2: float = 0.05,
    phi_r: float = 0.01,
    chunksize: int = 4,
) -> list[LinkResult]:
    """Link many queries in parallel; results follow the input order.

    Parameters
    ----------
    queries:
        Query trajectories (each linked against all of ``q_db``).
    rejection_model, acceptance_model:
        The fitted (Mr, Ma) pair, broadcast to every worker.
    n_workers:
        Process count; defaults to ``os.cpu_count()``.  ``n_workers=1``
        short-circuits to a sequential loop in this process (useful for
        debugging and on platforms without cheap forking).
    chunksize:
        Queries dispatched per task; larger amortises IPC for cheap
        queries.
    """
    if not queries:
        raise ValidationError("need at least one query")
    if n_workers is not None and n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")

    if n_workers == 1:
        linker = FTLLinker(
            rejection_model.config, alpha1=alpha1, alpha2=alpha2, phi_r=phi_r
        ).with_models(rejection_model, acceptance_model, q_db)
        return [linker.link(query, method=method) for query in queries]

    ctx = mp.get_context()
    init_args = (
        rejection_model.to_dict(),
        acceptance_model.to_dict(),
        q_db,
        method,
        alpha1,
        alpha2,
        phi_r,
    )
    with ctx.Pool(
        processes=n_workers, initializer=_init_worker, initargs=init_args
    ) as pool:
        return pool.map(_link_one, queries, chunksize=chunksize)
