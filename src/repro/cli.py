"""Command-line interface.

Installed as ``ftl`` (see ``pyproject.toml``).  Subcommands:

* ``ftl datasets`` — list catalog entries;
* ``ftl generate NAME --out DIR`` — build a catalog scenario and write
  both databases (CSV) plus the ground truth (JSON);
* ``ftl stats NAME`` — print the Table I statistics of a scenario;
* ``ftl link NAME --method M`` — run batch linking over sampled queries
  and report perceptiveness/selectiveness; ``--json PATH`` additionally
  dumps every ranked ``LinkResult`` (``-`` for stdout), ``--top-k K``
  truncates each candidate list;
* ``ftl theory --lam-p A --lam-q B`` — print the Section VI pmf table;
* ``ftl serve NAME`` / ``ftl serve --store DIR`` — run the
  JSON-over-HTTP linking daemon over a scenario's Q database or a
  persistent mmap-backed store (see ``docs/service.md``):
  micro-batched ``/link``, streaming ``/ingest`` sessions,
  ``/healthz``, ``/metrics``; store-backed daemons additionally serve
  standing queries (``/queries`` + ``/watch``; ``docs/streaming.md``);
* ``ftl store build/append/compact/stats/index/expire`` — manage
  persistent columnar trajectory stores (see ``docs/store.md``);
  ``index --incremental`` folds streaming delta blocks into the main
  blocking index and ``expire`` slides the retention window (see
  ``docs/streaming.md``);
* ``ftl model fit/inspect/diff/activate`` — manage versioned fitted
  Mr/Ma model artifacts inside a store (see ``docs/models.md``); a
  store-backed ``ftl serve`` loads the active artifact, and a running
  daemon hot-swaps refits via ``POST /v1/admin/model``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.config import FTLConfig
from repro.core.linker import FTLLinker, LinkOptions
from repro.kernels import KERNEL_BACKENDS
from repro.datasets.catalog import build_scenario, catalog, catalog_entry
from repro.io.csv_io import write_trajectories_csv
from repro.pipeline.tables import render_table1
from repro.stats.theory import (
    expected_mutual_segments,
    expected_mutual_segments_approx,
    mutual_segment_count_pmf,
    mutual_segment_count_pmf_poisson,
)
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftl",
        description="Fuzzy Trajectory Linking (ICDE 2016 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset catalog")

    gen = sub.add_parser("generate", help="build a scenario and write it out")
    gen.add_argument("name", help="catalog entry name (see `ftl datasets`)")
    gen.add_argument("--out", required=True, help="output directory")

    stats = sub.add_parser("stats", help="print Table I statistics")
    stats.add_argument("names", nargs="+", help="catalog entry names")

    link = sub.add_parser("link", help="run FTL over sampled queries")
    link.add_argument("name", help="catalog entry name")
    link.add_argument(
        "--method", default="naive-bayes", choices=("naive-bayes", "alpha-filter")
    )
    link.add_argument("--queries", type=int, default=30)
    link.add_argument("--phi-r", type=float, default=0.05)
    link.add_argument("--alpha1", type=float, default=0.05)
    link.add_argument("--alpha2", type=float, default=0.05)
    link.add_argument("--top-k", type=int, default=None,
                      help="keep only the k best-ranked candidates per query")
    link.add_argument("--json", default=None, metavar="PATH",
                      help="write per-query LinkResult records as JSON "
                           "('-' for stdout)")
    link.add_argument("--kernel", default=None, choices=KERNEL_BACKENDS,
                      help="hot-path kernel backend "
                           "(default: auto / FTL_KERNEL_BACKEND)")
    link.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile", help="per-stage time breakdown of batch linking"
    )
    profile.add_argument("name", help="catalog entry name")
    profile.add_argument(
        "--method", default="naive-bayes", choices=("naive-bayes", "alpha-filter")
    )
    profile.add_argument("--queries", type=int, default=30)
    profile.add_argument("--kernel", default=None, choices=KERNEL_BACKENDS,
                         help="hot-path kernel backend "
                              "(default: auto / FTL_KERNEL_BACKEND)")
    profile.add_argument("--seed", type=int, default=0)

    theory = sub.add_parser("theory", help="Section VI mutual-segment pmf")
    theory.add_argument("--lam-p", type=float, required=True)
    theory.add_argument("--lam-q", type=float, required=True)
    theory.add_argument("--max-x", type=int, default=10)

    diagnose = sub.add_parser(
        "diagnose", help="fit models on a scenario and report separability"
    )
    diagnose.add_argument("name", help="catalog entry name")
    diagnose.add_argument("--buckets", type=int, default=12,
                          help="buckets to show in the model table")
    diagnose.add_argument("--lam-p", type=float, default=None,
                          help="query-service rate per hour (feasibility)")
    diagnose.add_argument("--lam-q", type=float, default=None,
                          help="candidate-service rate per hour (feasibility)")
    diagnose.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="Fig. 5-style perceptiveness/selectiveness tradeoff"
    )
    sweep.add_argument("name", help="catalog entry name")
    sweep.add_argument("--queries", type=int, default=30)
    sweep.add_argument("--seed", type=int, default=0)

    assign = sub.add_parser(
        "assign", help="global one-to-one linking of all queries"
    )
    assign.add_argument("name", help="catalog entry name")
    assign.add_argument(
        "--method", default="optimal",
        choices=("greedy", "optimal", "auto", "sparse", "reference"),
        help="'optimal' picks the exact solver (sparse scipy LSA, or "
             "the dense networkx reference without scipy); the rest "
             "name repro.assign backends directly",
    )
    assign.add_argument("--min-score", type=float, default=1e-6)
    assign.add_argument("--no-blocking", action="store_true",
                        help="score the dense |Q| x |C| pool instead of "
                             "only ST-index-blocked pairs")
    assign.add_argument("--json", action="store_true",
                        help="print the evaluation report as JSON")
    assign.add_argument("--seed", type=int, default=0)

    holdout = sub.add_parser(
        "holdout", help="train/test split: do the models generalise?"
    )
    holdout.add_argument("name", help="catalog entry name")
    holdout.add_argument("--test-fraction", type=float, default=0.3)
    holdout.add_argument("--phi-r", type=float, default=0.1)
    holdout.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the linking daemon over a scenario's Q database "
                      "or a persistent store"
    )
    serve.add_argument("name", nargs="?", default=None,
                       help="catalog entry name (pool + model fit); "
                            "omit when passing --store")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="serve from a persistent trajectory store "
                            "(mmap-backed; see `ftl store`)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 binds an ephemeral port)")
    serve.add_argument("--workers", type=int, default=1,
                       help="shard worker processes: 1 serves in-process; "
                            "N>1 forks N workers, partitions the pool by "
                            "home cell and scatter-gathers /v1/link")
    serve.add_argument(
        "--method", default="naive-bayes", choices=("naive-bayes", "alpha-filter")
    )
    serve.add_argument("--phi-r", type=float, default=0.05)
    serve.add_argument("--alpha1", type=float, default=0.05)
    serve.add_argument("--alpha2", type=float, default=0.05)
    serve.add_argument("--top-k", type=int, default=None)
    serve.add_argument("--max-batch-size", type=int, default=16,
                       help="most /link requests coalesced per engine call")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="how long to wait for more requests per batch")
    serve.add_argument("--queue-limit", type=int, default=128,
                       help="pending-request bound; beyond it /link gets 503")
    serve.add_argument("--timeout-ms", type=float, default=None,
                       help="default per-request deadline (504 past it)")
    serve.add_argument("--session-ttl", type=float, default=900.0,
                       help="idle seconds before an /ingest session is dropped")
    serve.add_argument("--watch-max-wait-ms", type=float, default=30_000.0,
                       help="longest a /v1/watch long-poll is held open")
    serve.add_argument("--watch-concurrency", type=int, default=32,
                       help="threads dedicated to /v1/watch long-polls "
                            "(watchers beyond it queue for a free thread)")
    serve.add_argument("--merge-min-blocks", type=int, default=4,
                       help="index delta blocks accumulated before the "
                            "background merge folds them (store-backed only)")
    serve.add_argument("--max-body-mb", type=float, default=8.0,
                       help="request body cap in MiB (413 beyond it)")
    serve.add_argument("--shutdown-after", type=float, default=None,
                       help="serve for N seconds then drain (smoke/testing)")
    serve.add_argument("--no-spans", action="store_true",
                       help="disable per-stage timers in batch workers "
                            "(/metrics stage histograms stay empty)")
    serve.add_argument("--kernel", default=None, choices=KERNEL_BACKENDS,
                       help="hot-path kernel backend "
                            "(default: auto / FTL_KERNEL_BACKEND)")
    serve.add_argument("--seed", type=int, default=0)

    store = sub.add_parser(
        "store", help="manage persistent mmap-backed trajectory stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    st_build = store_sub.add_parser(
        "build", help="create a store from a file or a catalog scenario"
    )
    st_build.add_argument("dir", help="store directory to create")
    st_build.add_argument("--from", dest="source", default=None, metavar="PATH",
                          help="trajectory file in any registered format "
                               "(csv/jsonl/sqlite/store)")
    st_build.add_argument("--scenario", default=None, metavar="NAME",
                          help="catalog entry; stores its Q database")
    st_build.add_argument("--name", default="",
                          help="database name recorded in the manifest")

    st_append = store_sub.add_parser(
        "append", help="append trajectories (or record deltas) to a store"
    )
    st_append.add_argument("dir", help="existing store directory")
    st_append.add_argument("--from", dest="source", required=True,
                           metavar="PATH", help="trajectory file to append")

    st_compact = store_sub.add_parser(
        "compact", help="merge all segments into one snapshot segment"
    )
    st_compact.add_argument("dir", help="existing store directory")

    st_stats = store_sub.add_parser(
        "stats", help="print store statistics as JSON"
    )
    st_stats.add_argument("dir", help="existing store directory")

    st_index = store_sub.add_parser(
        "index", help="build the persisted spatio-temporal blocking index"
    )
    st_index.add_argument("dir", help="existing store directory")
    st_index.add_argument("--cell-size", type=float, default=None,
                          help="geo-grid cell size in metres "
                               "(default: the reachability radius)")
    st_index.add_argument("--vmax", type=float, default=120.0,
                          help="max plausible speed in km/h")
    st_index.add_argument("--reach-gap", type=float, default=3600.0,
                          help="max time gap in seconds for reachability "
                               "dilation")
    st_index.add_argument("--incremental", action="store_true",
                          help="fold the streaming delta log into the "
                               "existing index instead of rebuilding "
                               "(requires a prior full `ftl store index`)")

    st_expire = store_sub.add_parser(
        "expire", help="slide the retention window: evict records older "
                       "than a cutoff"
    )
    st_expire.add_argument("dir", help="existing store directory")
    st_expire.add_argument("--before", type=float, required=True,
                           metavar="T",
                           help="drop records with timestamp strictly "
                                "below T (t == T survives)")

    model = sub.add_parser(
        "model", help="manage versioned fitted Mr/Ma model artifacts"
    )
    model_sub = model.add_subparsers(dest="model_command", required=True)

    md_fit = model_sub.add_parser(
        "fit", help="fit Mr/Ma and persist the artifact into a store"
    )
    md_fit.add_argument("dir", help="existing store directory")
    md_fit.add_argument("--scenario", default=None, metavar="NAME",
                        help="fit on a catalog scenario's P+Q databases "
                             "instead of the store's own data")
    md_fit.add_argument("--max-pairs", type=int, default=None,
                        help="acceptance-pair cap per database (default: "
                             "the config's max_acceptance_pairs)")
    md_fit.add_argument("--activate", action="store_true",
                        help="point the store's active model at the new "
                             "artifact")
    md_fit.add_argument("--seed", type=int, default=0)

    md_inspect = model_sub.add_parser(
        "inspect", help="print an artifact's config + provenance as JSON"
    )
    md_inspect.add_argument("dir", help="existing store directory")
    md_inspect.add_argument("id", nargs="?", default=None,
                            help="artifact id (default: the active one)")

    md_diff = model_sub.add_parser(
        "diff", help="compare two artifacts (config, provenance, tables)"
    )
    md_diff.add_argument("dir", help="existing store directory")
    md_diff.add_argument("a", help="first artifact id")
    md_diff.add_argument("b", help="second artifact id")

    md_activate = model_sub.add_parser(
        "activate", help="point the store's active model at an artifact"
    )
    md_activate.add_argument("dir", help="existing store directory")
    md_activate.add_argument("id", help="artifact id to activate")

    report = sub.add_parser(
        "report", help="run the mini evaluation and write a markdown report"
    )
    report.add_argument("--out", required=True, help="output markdown path")
    report.add_argument(
        "--datasets", nargs="+",
        default=["SB-mini", "SD-mini", "TB-mini", "TD-mini"],
    )
    report.add_argument("--queries", type=int, default=25)
    report.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_datasets() -> int:
    for name, entry in sorted(catalog().items()):
        print(f"{name:<12} {entry.protocol:<7} {entry.description}")
    return 0


def _cmd_generate(name: str, out: str) -> int:
    pair = build_scenario(name)
    out_dir = Path(out)
    out_dir.mkdir(parents=True, exist_ok=True)
    n_p = write_trajectories_csv(pair.p_db, out_dir / "P.csv")
    n_q = write_trajectories_csv(pair.q_db, out_dir / "Q.csv")
    (out_dir / "truth.json").write_text(
        json.dumps({str(k): str(v) for k, v in pair.truth.items()}, indent=2)
    )
    print(f"wrote {n_p} P records, {n_q} Q records, "
          f"{len(pair.truth)} truth pairs to {out_dir}")
    return 0


def _cmd_stats(names: list[str]) -> int:
    pairs = {name: build_scenario(name) for name in names}
    durations = {
        name: (catalog_entry(name).trim_days or catalog_entry(name).duration_days)
        for name in names
    }
    print(render_table1(pairs, durations))
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    pair = build_scenario(args.name)
    options = LinkOptions(
        method=args.method,
        alpha1=args.alpha1,
        alpha2=args.alpha2,
        phi_r=args.phi_r,
        top_k=args.top_k,
        kernel_backend=args.kernel,
    )
    linker = FTLLinker(FTLConfig(), options).fit(pair.p_db, pair.q_db, rng)
    n = min(args.queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)
    results = linker.link_batch([pair.p_db[qid] for qid in query_ids])
    hits = sum(
        1
        for qid, result in zip(query_ids, results)
        if result.contains(pair.truth[qid])
    )
    returned = sum(len(result) for result in results)
    if args.json is not None:
        payload = json.dumps(
            [result.to_dict() for result in results], indent=2, default=str
        )
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
    print(f"dataset={args.name} method={args.method} queries={n}")
    print(f"perceptiveness = {hits / n:.3f}")
    print(f"selectiveness  = {returned / (n * len(pair.q_db)):.5f}")
    print(f"mean |Q_P|     = {returned / n:.2f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.obs import StageAccumulator, use_sink

    rng = np.random.default_rng(args.seed)
    pair = build_scenario(args.name)
    options = LinkOptions(method=args.method, kernel_backend=args.kernel)
    linker = FTLLinker(FTLConfig(), options).fit(pair.p_db, pair.q_db, rng)
    n = min(args.queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)
    queries = [pair.p_db[qid] for qid in query_ids]
    accumulator = StageAccumulator()
    started = time.perf_counter()
    with use_sink(accumulator):
        linker.link_batch(queries)
    wall_s = time.perf_counter() - started
    backends = linker.engine.stage_backends()
    print(f"dataset={args.name} method={args.method} queries={n} "
          f"pool={len(pair.q_db)} wall_s={wall_s:.3f} "
          f"kernel={linker.engine.kernel_backend}")
    print(accumulator.table(wall_s=wall_s))
    print("stage backends: "
          + " ".join(f"{stage}={impl}" for stage, impl in backends.items()))
    return 0


def _cmd_theory(lam_p: float, lam_q: float, max_x: int) -> int:
    exact = mutual_segment_count_pmf(lam_p, lam_q, max_x)
    approx = mutual_segment_count_pmf_poisson(lam_p, lam_q, max_x)
    print(f"E(X) exact  = {expected_mutual_segments(lam_p, lam_q):.4f}")
    print(f"E^(X) approx = {expected_mutual_segments_approx(lam_p, lam_q):.4f}")
    print(f"{'x':>4} {'fX(x)':>10} {'Pois(E^)':>10}")
    for x in range(max_x + 1):
        print(f"{x:>4} {exact[x]:>10.5f} {approx[x]:>10.5f}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.diagnostics import (
        discriminability,
        format_model_table,
        model_table,
    )
    from repro.core.models import CompatibilityModel
    from repro.stats.feasibility import assess_feasibility

    rng = np.random.default_rng(args.seed)
    pair = build_scenario(args.name)
    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    print(f"dataset={args.name}  |P|={len(pair.p_db)}  |Q|={len(pair.q_db)}")
    print(format_model_table(model_table(mr, ma, max_buckets=args.buckets)))
    print(f"\ndiscriminability = {discriminability(mr, ma):.3f} nats/segment")
    if args.lam_p is not None and args.lam_q is not None:
        report = assess_feasibility(args.lam_p, args.lam_q, mr, ma)
        print(report.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.pipeline.tradeoff import format_tradeoff, run_tradeoff

    rng = np.random.default_rng(args.seed)
    pair = build_scenario(args.name)
    curves = run_tradeoff(pair, FTLConfig(), rng, n_queries=args.queries)
    print(f"dataset={args.name}  |Q|={len(pair.q_db)}")
    print(format_tradeoff(curves))
    return 0


def _cmd_assign(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.assign import evaluate_assignment
    from repro.assign.solver import scipy_available

    rng = np.random.default_rng(args.seed)
    pair = build_scenario(args.name)
    config = FTLConfig()
    if args.method == "optimal":
        # Exact either way: sparse LSA with scipy, dense networkx without.
        backend = "sparse" if scipy_available() else "reference"
    elif args.method == "greedy":
        backend = "greedy"
    else:
        backend = args.method
    evaluation = evaluate_assignment(
        pair, config, rng,
        backend=backend,
        min_score=args.min_score,
        use_blocking=not args.no_blocking,
    )
    if args.json:
        report = evaluation.to_dict()
        report["dataset"] = args.name
        report["method"] = args.method
        print(json_mod.dumps(report, indent=2))
        return 0
    assignment = evaluation.assignment
    graph = evaluation.graph
    print(f"dataset={args.name} method={args.method} "
          f"solver={assignment.backend}")
    print(f"edges {graph.n_edges} of {graph.n_scored_pairs} scored pairs "
          f"(density {graph.density:.4f}), "
          f"{assignment.n_components} components")
    print(f"assigned {len(assignment)}/{len(graph.query_ids)} queries, "
          f"total score {assignment.total_score:.2f}")
    print(f"accuracy over assigned: {assignment.accuracy(pair.truth):.3f}")
    print(f"precision@1: independent={evaluation.precision_independent:.3f} "
          f"assignment={evaluation.precision_assignment:.3f} "
          f"(n={len(evaluation.evaluated_queries)})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.engine import LinkEngine, LinkOptions
    from repro.core.models import CompatibilityModel
    from repro.errors import ValidationError
    from repro.obs import configure_json_logging
    from repro.service.server import LinkServer, ServerConfig

    if (args.name is None) == (args.store is None):
        raise ValidationError(
            "pass exactly one of a scenario NAME or --store DIR"
        )
    # JSON-lines request/batch logs on stderr; each line carries the
    # trace ID echoed to the client, so slow responses grep straight to
    # their server-side records.
    configure_json_logging()

    rng = np.random.default_rng(args.seed)
    config = FTLConfig()
    store = None
    mr = ma = None
    model_artifact_id = None
    if args.store is not None:
        from repro.store import open_store

        store = open_store(args.store)
        db = store.load()
        fit_dbs = [db]
        pool = list(db)
        label = str(store.path)
        provenance = {
            "source": "store",
            "path": str(store.path),
            "format_version": store.manifest.format_version,
            "generation": store.generation,
            "n_segments": len(store.manifest.segments),
        }
        # A store with an active model artifact serves *that* pair —
        # the daemon reports which one, and /v1/admin/model can swap a
        # refit in without a restart.  Stores without one (or written
        # by the pre-artifact format) fall back to an ad-hoc fit.
        if store.active_model_id is not None:
            artifact = store.load_model()
            mr, ma = artifact.rejection, artifact.acceptance
            model_artifact_id = artifact.artifact_id
            provenance["model_artifact"] = model_artifact_id
    else:
        pair = build_scenario(args.name)
        fit_dbs = [pair.p_db, pair.q_db]
        pool = list(pair.q_db)
        label = args.name
        provenance = {
            "source": "parsed",
            "scenario": args.name,
        }
    if mr is None:
        mr = CompatibilityModel.fit_rejection(fit_dbs, config)
        ma = CompatibilityModel.fit_acceptance(fit_dbs, config, rng)
    options = LinkOptions(
        method=args.method,
        alpha1=args.alpha1,
        alpha2=args.alpha2,
        phi_r=args.phi_r,
        top_k=args.top_k,
        kernel_backend=args.kernel,
    )
    engine = LinkEngine(mr, ma, options=options)
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        workers=args.workers,
        session_ttl_s=args.session_ttl,
        max_body_bytes=int(args.max_body_mb * 1024 * 1024),
        default_timeout_ms=args.timeout_ms,
        spans=not args.no_spans,
        watch_max_wait_ms=args.watch_max_wait_ms,
        watch_concurrency=args.watch_concurrency,
        merge_min_blocks=args.merge_min_blocks,
    )

    async def _serve() -> None:
        server = LinkServer(engine, pool, config=server_config,
                            store=store, provenance=provenance,
                            model_artifact_id=model_artifact_id)
        await server.start()
        server.install_signal_handlers()
        host, port = server.address
        source = ", ".join(f"{k}={v}" for k, v in provenance.items())
        print(
            f"serving {label} on http://{host}:{port} "
            f"(pool={len(pool)} candidates, method={args.method}, "
            f"kernel={engine.kernel_backend}, "
            f"max_batch_size={args.max_batch_size}, "
            f"max_wait_ms={args.max_wait_ms:g})",
            flush=True,
        )
        if args.workers > 1:
            print(
                f"sharded serving: {args.workers} worker processes, "
                f"pool partitioned by {engine.config.shard_cell_size_m:g} m "
                f"home cells (API under /v1/)",
                flush=True,
            )
        if store is not None:
            print(
                "streaming enabled: standing queries at /v1/queries, "
                "long-poll result deltas at /v1/watch",
                flush=True,
            )
        print(f"data source: {source}", flush=True)
        await server.serve_until_shutdown(shutdown_after_s=args.shutdown_after)
        print("drained; bye")

    asyncio.run(_serve())
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.io.registry import load_database
    from repro.store import TrajectoryStore, open_store

    if args.store_command == "build":
        if (args.source is None) == (args.scenario is None):
            raise ValidationError(
                "pass exactly one of --from PATH or --scenario NAME"
            )
        if args.scenario is not None:
            db = build_scenario(args.scenario).q_db
        else:
            db = load_database(args.source)
        store = TrajectoryStore.create(
            args.dir, db=db, name=args.name or db.name
        )
        stats = store.stats()
        print(f"built {args.dir}: {stats.n_trajectories} trajectories, "
              f"{stats.n_records} records, generation {stats.generation}")
        return 0
    if args.store_command == "append":
        store = open_store(args.dir)
        written = store.append(load_database(args.source))
        print(f"appended {written} records to {args.dir} "
              f"(generation {store.generation})")
        return 0
    if args.store_command == "compact":
        store = open_store(args.dir)
        before = store.stats().n_segments
        stats = store.compact()
        print(f"compacted {args.dir}: {before} -> {stats.n_segments} "
              f"segments, {stats.n_records} records, "
              f"generation {stats.generation}")
        return 0
    if args.store_command == "stats":
        print(json.dumps(open_store(args.dir).stats().to_dict(), indent=2))
        return 0
    if args.store_command == "index":
        store = open_store(args.dir)
        if args.incremental:
            from repro.stream import merge_index_deltas

            index = merge_index_deltas(store)
            params = ", ".join(
                f"{k}={v:g}" for k, v in index.params().items()
            )
            print(f"merged delta log into {args.dir} index at generation "
                  f"{store.generation} ({params})")
            return 0
        index = store.build_index(
            cell_size_m=args.cell_size,
            vmax_kph=args.vmax,
            reach_gap_s=args.reach_gap,
        )
        params = ", ".join(f"{k}={v:g}" for k, v in index.params().items())
        print(f"indexed {args.dir} at generation {store.generation} "
              f"({params})")
        return 0
    if args.store_command == "expire":
        from repro.stream import DeltaLog

        store = open_store(args.dir)
        evicted = store.expire_before(args.before)
        if evicted:
            # Keep a covering union view openable: the eviction commit
            # needs its marker in the delta log like the daemon writes.
            DeltaLog(store).record_eviction(store.generation, args.before)
        print(f"expired {evicted} records before t={args.before:g} from "
              f"{args.dir} (generation {store.generation}, "
              f"retain_after={store.manifest.retain_after:g})")
        return 0
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def _cmd_model(args: argparse.Namespace) -> int:
    import time as time_mod

    from repro.store import diff_artifacts, fit_model_artifact, open_store

    store = open_store(args.dir)
    if args.model_command == "fit":
        rng = np.random.default_rng(args.seed)
        if args.scenario is not None:
            pair = build_scenario(args.scenario)
            databases = [pair.p_db, pair.q_db]
        else:
            databases = [store.load()]
        artifact = fit_model_artifact(
            databases, FTLConfig(), rng, max_pairs=args.max_pairs
        )
        info = store.save_model(
            artifact, created_at=time_mod.time(), activate=args.activate
        )
        active = " (active)" if store.active_model_id == info.artifact_id else ""
        prov = artifact.provenance
        print(f"saved {info.artifact_id}{active} in {args.dir}: "
              f"{prov.n_trajectories} trajectories, "
              f"{artifact.rejection.n_buckets} buckets, "
              f"dataset {prov.dataset_hash[:12]}")
        return 0
    if args.model_command == "inspect":
        print(json.dumps(store.load_model(args.id).summary(), indent=2))
        return 0
    if args.model_command == "diff":
        print(json.dumps(
            diff_artifacts(store.load_model(args.a), store.load_model(args.b)),
            indent=2,
        ))
        return 0
    if args.model_command == "activate":
        info = store.activate_model(args.id)
        print(f"activated {info.artifact_id} in {args.dir}")
        return 0
    raise AssertionError(f"unhandled model command {args.model_command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "generate":
        return _cmd_generate(args.name, args.out)
    if args.command == "stats":
        return _cmd_stats(args.names)
    if args.command == "link":
        return _cmd_link(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "theory":
        return _cmd_theory(args.lam_p, args.lam_q, args.max_x)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "assign":
        return _cmd_assign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "holdout":
        from repro.pipeline.crossval import format_holdout, run_holdout

        rng = np.random.default_rng(args.seed)
        pair = build_scenario(args.name)
        result = run_holdout(
            pair, FTLConfig(), rng,
            test_fraction=args.test_fraction, phi_r=args.phi_r,
        )
        print(f"dataset={args.name}")
        print(format_holdout(result))
        return 0
    if args.command == "report":
        from repro.pipeline.report import ReportSpec, write_report

        spec = ReportSpec(
            datasets=tuple(args.datasets),
            n_queries=args.queries,
            seed=args.seed,
        )
        written = write_report(args.out, spec)
        print(f"wrote {written}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
