"""Fuzzy Trajectory Linking (FTL).

A reproduction of *"Fuzzy Trajectory Linking"* (Wu, Xue, Cao, Karras,
Ng, Koo — ICDE 2016): linking trajectories of the same person across two
independent spatiotemporal databases via the statistical *compatibility*
of mutual segments, rather than trajectory similarity.

Quickstart::

    import numpy as np
    from repro import FTLConfig, FTLLinker
    from repro.datasets import build_catalog_pair

    rng = np.random.default_rng(7)
    pair = build_catalog_pair("SB-mini", rng)
    linker = FTLLinker(FTLConfig()).fit(pair.p_db, pair.q_db, rng)
    result = linker.link(next(iter(pair.p_db)), method="naive-bayes")

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured comparison of every table and figure.
"""

from repro.config import DEFAULT_CONFIG, FTLConfig
from repro.core.alignment import (
    AlignedTrajectory,
    MutualSegmentProfile,
    Segment,
    align,
    mutual_segment_profile,
)
from repro.core.compatibility import implied_speed, is_compatible
from repro.core.database import TrajectoryDatabase
from repro.core.engine import (
    CacheStats,
    LinkEngine,
    LinkOptions,
    ProfileCache,
)
from repro.core.filtering import AlphaFilter, FilterDecision
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.linker import Candidate, FTLLinker, LinkResult
from repro.core.metrics import (
    hits_within_topk,
    perceptiveness,
    precision_at_k,
    selectiveness,
)
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher, NBDecision
from repro.core.ranking import ScoredCandidate, rank_candidates
from repro.core.records import Record
from repro.core.trajectory import Trajectory
from repro.errors import FTLError, NotFittedError, ValidationError
from repro.io.registry import load_database, save_database
from repro.stats.poisson_binomial import PoissonBinomial
from repro.store import TrajectoryStore, build_store, open_store
from repro.version import __version__

__all__ = [
    "AlignedTrajectory",
    "AlphaFilter",
    "CacheStats",
    "Candidate",
    "CompatibilityModel",
    "DEFAULT_CONFIG",
    "FTLConfig",
    "FTLError",
    "FTLLinker",
    "FilterDecision",
    "LinkEngine",
    "LinkOptions",
    "LinkResult",
    "ProfileCache",
    "MutualSegmentProfile",
    "NBDecision",
    "NaiveBayesMatcher",
    "NotFittedError",
    "PoissonBinomial",
    "Record",
    "ScoredCandidate",
    "Segment",
    "Trajectory",
    "TrajectoryDatabase",
    "TrajectoryStore",
    "ValidationError",
    "__version__",
    "acceptance_pvalue",
    "align",
    "build_store",
    "hits_within_topk",
    "implied_speed",
    "is_compatible",
    "load_database",
    "mutual_segment_profile",
    "open_store",
    "perceptiveness",
    "precision_at_k",
    "rank_candidates",
    "rejection_pvalue",
    "save_database",
    "selectiveness",
]
