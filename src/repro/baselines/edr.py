"""Edit Distance on Real sequence (EDR) for trajectories.

EDR (paper reference [17]) is string edit distance lifted to real
sequences: two records "match" (substitution cost 0) when within the
spatial threshold ``eps_m``, otherwise substitution costs 1; insertions
and deletions cost 1.  The normalised form divides by ``max(n, m)``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import pairwise_distances
from repro.core.trajectory import Trajectory
from repro.errors import EmptyTrajectoryError, ValidationError


def edr_raw(p: Trajectory, q: Trajectory, eps_m: float) -> int:
    """Unnormalised EDR: the minimum number of edit operations."""
    n, m = len(p), len(q)
    if n == 0 or m == 0:
        raise EmptyTrajectoryError("edr needs non-empty trajectories")
    if eps_m < 0:
        raise ValidationError(f"eps_m must be >= 0, got {eps_m}")
    subcost = (pairwise_distances(p, q) > eps_m).astype(np.int64)
    dp = np.zeros((n + 1, m + 1), dtype=np.int64)
    dp[:, 0] = np.arange(n + 1)
    dp[0, :] = np.arange(m + 1)
    for k in range(2, n + m + 1):
        i = np.arange(max(1, k - m), min(n, k - 1) + 1)
        j = k - i
        sub = dp[i - 1, j - 1] + subcost[i - 1, j - 1]
        gap = np.minimum(dp[i - 1, j], dp[i, j - 1]) + 1
        dp[i, j] = np.minimum(sub, gap)
    return int(dp[n, m])


def edr_distance(p: Trajectory, q: Trajectory, eps_m: float) -> float:
    """EDR normalised by ``max(|p|, |q|)``, in [0, 1]."""
    return edr_raw(p, q, eps_m) / max(len(p), len(q))
