"""Trajectory-similarity baselines used in the paper's Section VII-E.

Four classic measures, implemented from their original definitions:

* :mod:`repro.baselines.p2t` — point-to-trajectory distance;
* :mod:`repro.baselines.dtw` — Dynamic Time Warping (Yi et al. [15]);
* :mod:`repro.baselines.lcss` — Longest Common Sub-Sequence
  (Vlachos et al. [16]);
* :mod:`repro.baselines.edr` — Edit Distance on Real sequence
  (Chen et al. [17]).

All expose ``<name>_distance(p, q, ...) -> float`` where smaller means
more similar, plus a shared top-k retrieval harness in
:mod:`repro.baselines.common`.
"""

from repro.baselines.common import SimilarityRetriever, rank_by_distance
from repro.baselines.dtw import dtw_distance
from repro.baselines.edr import edr_distance
from repro.baselines.lcss import lcss_distance, lcss_length, lcss_similarity
from repro.baselines.p2t import p2t_distance

__all__ = [
    "SimilarityRetriever",
    "dtw_distance",
    "edr_distance",
    "lcss_distance",
    "lcss_length",
    "lcss_similarity",
    "p2t_distance",
    "rank_by_distance",
]
