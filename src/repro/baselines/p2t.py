"""Point-to-trajectory (P2T) distance.

The simplest spatial similarity: the mean, over points of the query
trajectory, of the distance to the *closest* point of the candidate
trajectory.  Purely spatial — timestamps are ignored — which is exactly
why it degrades on sparse data (Fig. 8): with few candidate points, the
nearest one can be far even for the true match.
"""

from __future__ import annotations

import numpy as np

from repro.core.trajectory import Trajectory
from repro.errors import EmptyTrajectoryError


def p2t_distance(p: Trajectory, q: Trajectory, chunk: int = 2048) -> float:
    """Mean nearest-point distance from each point of ``p`` to ``q``.

    Computed in chunks to bound the pairwise-distance matrix memory at
    ``chunk * len(q)`` floats.
    """
    if len(p) == 0 or len(q) == 0:
        raise EmptyTrajectoryError("p2t_distance needs non-empty trajectories")
    qx = q.xs[np.newaxis, :]
    qy = q.ys[np.newaxis, :]
    total = 0.0
    for start in range(0, len(p), chunk):
        px = p.xs[start : start + chunk, np.newaxis]
        py = p.ys[start : start + chunk, np.newaxis]
        dists = np.hypot(px - qx, py - qy)
        total += float(dists.min(axis=1).sum())
    return total / len(p)
