"""Shared baseline machinery: pairwise distances and top-k retrieval.

The paper's Section VII-E protocol retrieves, for each query, the
``k`` most similar candidate trajectories under a distance measure and
checks whether the true match is among them.  The
:class:`SimilarityRetriever` wraps any ``distance(p, q) -> float``
callable in that protocol, with an optional per-trajectory point cap
(the similarity measures are quadratic in trajectory length; the paper
itself notes runs taking "days" on dense data).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError

DistanceFn = Callable[[Trajectory, Trajectory], float]


def pairwise_distances(p: Trajectory, q: Trajectory) -> np.ndarray:
    """``(|p|, |q|)`` matrix of planar point distances."""
    return np.hypot(
        p.xs[:, np.newaxis] - q.xs[np.newaxis, :],
        p.ys[:, np.newaxis] - q.ys[np.newaxis, :],
    )


def rank_by_distance(
    query: Trajectory,
    candidates: Iterable[Trajectory],
    distance: DistanceFn,
) -> list[tuple[object, float]]:
    """``(candidate_id, distance)`` pairs sorted by increasing distance.

    Ties are broken by candidate order (stable sort).
    """
    scored = [(c.traj_id, float(distance(query, c))) for c in candidates]
    scored.sort(key=lambda item: item[1])
    return scored


def _cap_length(traj: Trajectory, max_points: int | None) -> Trajectory:
    if max_points is None or len(traj) <= max_points:
        return traj
    keep_every = int(np.ceil(len(traj) / max_points))
    return traj.thin(keep_every)


class SimilarityRetriever:
    """Top-k retrieval over a candidate database with one distance measure.

    Parameters
    ----------
    distance:
        A ``(p, q) -> float`` trajectory distance (smaller = closer).
    max_points:
        When set, every trajectory is deterministically thinned to at
        most this many points before distance evaluation, bounding the
        quadratic DP cost.
    """

    def __init__(
        self, distance: DistanceFn, max_points: int | None = None
    ) -> None:
        if max_points is not None and max_points < 2:
            raise ValidationError(f"max_points must be >= 2, got {max_points}")
        self._distance = distance
        self._max_points = max_points

    def rank(
        self, query: Trajectory, candidates: TrajectoryDatabase | Iterable[Trajectory]
    ) -> list[tuple[object, float]]:
        """All candidates ranked by increasing distance from the query."""
        capped_query = _cap_length(query, self._max_points)
        capped = (
            _cap_length(c, self._max_points) for c in candidates if len(c) > 0
        )
        return rank_by_distance(capped_query, capped, self._distance)

    def top_k(
        self,
        query: Trajectory,
        candidates: TrajectoryDatabase | Iterable[Trajectory],
        k: int,
    ) -> list[object]:
        """Ids of the ``k`` nearest candidates."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        return [cid for cid, _d in self.rank(query, candidates)[:k]]
