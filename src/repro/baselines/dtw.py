"""Dynamic Time Warping distance between trajectories.

Classic DTW over 2-D point sequences (paper reference [15]): records
are matched monotonically with repetition allowed, and the distance is
the minimum total matched-pair distance.

The O(n*m) dynamic program is evaluated along anti-diagonals so each
step is a vectorised NumPy operation: every cell of diagonal ``k``
depends only on diagonals ``k-1`` and ``k-2``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import pairwise_distances
from repro.core.trajectory import Trajectory
from repro.errors import EmptyTrajectoryError, ValidationError


def dtw_distance(p: Trajectory, q: Trajectory, band: int | None = None) -> float:
    """DTW distance between two trajectories' point sequences.

    Parameters
    ----------
    band:
        Optional Sakoe-Chiba band half-width in index units around the
        (length-normalised) diagonal; cells outside are excluded.
        ``None`` means unconstrained.
    """
    n, m = len(p), len(q)
    if n == 0 or m == 0:
        raise EmptyTrajectoryError("dtw_distance needs non-empty trajectories")
    if band is not None and band < 0:
        raise ValidationError(f"band must be >= 0, got {band}")
    cost = pairwise_distances(p, q)
    dp = np.full((n + 1, m + 1), np.inf)
    dp[0, 0] = 0.0
    slope = m / n
    for k in range(2, n + m + 1):
        i = np.arange(max(1, k - m), min(n, k - 1) + 1)
        j = k - i
        if band is not None:
            inside = np.abs(i * slope - j) <= band + 1.0
            i, j = i[inside], j[inside]
            if i.size == 0:
                continue
        best = np.minimum(dp[i - 1, j - 1], np.minimum(dp[i - 1, j], dp[i, j - 1]))
        dp[i, j] = cost[i - 1, j - 1] + best
    result = float(dp[n, m])
    if not np.isfinite(result):
        raise ValidationError(
            "DTW band too narrow: no monotone path fits; widen `band`"
        )
    return result
