"""Longest Common Sub-Sequence similarity for trajectories.

LCSS (paper reference [16]) counts the longest order-preserving chain
of record pairs that match within a spatial threshold ``eps_m`` and an
index-offset threshold ``delta``.  Robust to noise and differing
sampling rates — but, as Fig. 8(b) shows, it still collapses once
trajectories become extremely sparse, because matching *points* stop
existing at all.

Similarity is normalised as ``LCSS / min(n, m)``; the associated
distance is ``1 - similarity``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import pairwise_distances
from repro.core.trajectory import Trajectory
from repro.errors import EmptyTrajectoryError, ValidationError


def lcss_length(
    p: Trajectory, q: Trajectory, eps_m: float, delta: int | None = None
) -> int:
    """Length of the longest common subsequence under the thresholds.

    Parameters
    ----------
    eps_m:
        Two records match when their distance is at most ``eps_m``.
    delta:
        Optional index-offset bound: records ``p_i`` and ``q_j`` may
        only match when ``|i - j| <= delta``.
    """
    n, m = len(p), len(q)
    if n == 0 or m == 0:
        raise EmptyTrajectoryError("lcss needs non-empty trajectories")
    if eps_m < 0:
        raise ValidationError(f"eps_m must be >= 0, got {eps_m}")
    if delta is not None and delta < 0:
        raise ValidationError(f"delta must be >= 0, got {delta}")
    match = pairwise_distances(p, q) <= eps_m
    if delta is not None:
        i_idx = np.arange(n)[:, np.newaxis]
        j_idx = np.arange(m)[np.newaxis, :]
        match &= np.abs(i_idx - j_idx) <= delta
    dp = np.zeros((n + 1, m + 1), dtype=np.int64)
    for k in range(2, n + m + 1):
        i = np.arange(max(1, k - m), min(n, k - 1) + 1)
        j = k - i
        take = dp[i - 1, j - 1] + match[i - 1, j - 1]
        skip = np.maximum(dp[i - 1, j], dp[i, j - 1])
        dp[i, j] = np.maximum(take, skip)
    return int(dp[n, m])


def lcss_similarity(
    p: Trajectory, q: Trajectory, eps_m: float, delta: int | None = None
) -> float:
    """``LCSS / min(|p|, |q|)`` in [0, 1]; larger is more similar."""
    return lcss_length(p, q, eps_m, delta) / min(len(p), len(q))


def lcss_distance(
    p: Trajectory, q: Trajectory, eps_m: float, delta: int | None = None
) -> float:
    """``1 - lcss_similarity`` — the distance used for retrieval."""
    return 1.0 - lcss_similarity(p, q, eps_m, delta)
