"""Local planar projection for lon/lat data.

FTL's internal convention is planar metres.  Real check-in / GPS
corpora come as (lon, lat) degrees; :class:`LocalProjection` maps them
into a local equirectangular plane centred on the data (accurate to
well under 0.5% at city scale, far below GPS noise), so any public
dataset can be run through the exact same pipeline as the simulator
output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.distance import EARTH_RADIUS_M


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection centred at ``(lon0, lat0)`` degrees.

    ``x`` grows eastward and ``y`` northward, both in metres, with the
    centre at the origin.
    """

    lon0: float
    lat0: float

    def __post_init__(self) -> None:
        if not -180.0 <= self.lon0 <= 180.0:
            raise ValidationError(f"lon0 out of range: {self.lon0}")
        if not -89.0 <= self.lat0 <= 89.0:
            raise ValidationError(
                f"lat0 must be within +-89 degrees, got {self.lat0}"
            )

    @classmethod
    def centered_on(
        cls, lons: np.ndarray, lats: np.ndarray
    ) -> "LocalProjection":
        """A projection centred at the centroid of the given points."""
        lons = np.asarray(lons, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        if lons.size == 0:
            raise ValidationError("cannot centre a projection on no points")
        return cls(float(lons.mean()), float(lats.mean()))

    # ------------------------------------------------------------------
    # Point transforms
    # ------------------------------------------------------------------
    def to_plane(
        self, lons: np.ndarray, lats: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(lon, lat) degrees -> planar (x, y) metres."""
        lons = np.asarray(lons, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        k = math.cos(math.radians(self.lat0))
        x = np.radians(lons - self.lon0) * EARTH_RADIUS_M * k
        y = np.radians(lats - self.lat0) * EARTH_RADIUS_M
        return x, y

    def to_lonlat(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Planar (x, y) metres -> (lon, lat) degrees (inverse transform)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        k = math.cos(math.radians(self.lat0))
        lons = self.lon0 + np.degrees(xs / (EARTH_RADIUS_M * k))
        lats = self.lat0 + np.degrees(ys / EARTH_RADIUS_M)
        return lons, lats

    # ------------------------------------------------------------------
    # Trajectory / database transforms
    # ------------------------------------------------------------------
    def project_trajectory(self, traj: Trajectory) -> Trajectory:
        """A lon/lat trajectory re-expressed in planar metres."""
        xs, ys = self.to_plane(traj.xs, traj.ys)
        return Trajectory(traj.ts, xs, ys, traj.traj_id)

    def unproject_trajectory(self, traj: Trajectory) -> Trajectory:
        """A planar trajectory re-expressed in lon/lat degrees."""
        lons, lats = self.to_lonlat(traj.xs, traj.ys)
        return Trajectory(traj.ts, lons, lats, traj.traj_id)

    def project_db(self, db: TrajectoryDatabase) -> TrajectoryDatabase:
        """Every trajectory of a lon/lat database projected to the plane."""
        return db.map(self.project_trajectory)


def projection_for_databases(*dbs: TrajectoryDatabase) -> LocalProjection:
    """A projection centred on the pooled records of the given databases.

    Convenience for the common "load two lon/lat CSVs, project both
    consistently" workflow.
    """
    lons: list[np.ndarray] = []
    lats: list[np.ndarray] = []
    for db in dbs:
        for traj in db:
            lons.append(np.asarray(traj.xs))
            lats.append(np.asarray(traj.ys))
    if not lons:
        raise ValidationError("no records found in the given databases")
    return LocalProjection.centered_on(
        np.concatenate(lons), np.concatenate(lats)
    )
