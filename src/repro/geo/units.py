"""Unit conversions used throughout the library.

The library's internal convention is SI: metres for distance, seconds for
time, metres/second for speed.  The paper quotes speeds in km/h (e.g.
``Vmax = 120 kph`` for Singapore taxis, ``140 kph`` as a loose city-wide
cap), so converters to/from those units live here.
"""

from __future__ import annotations

from repro.errors import ValidationError

#: Seconds in one minute / hour / day.
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: Kilometres in one statute mile (occasionally useful for imported data).
KM_PER_MILE = 1.609344


def _require_finite_nonnegative(value: float, name: str) -> float:
    number = float(value)
    if not number >= 0.0:  # also rejects NaN
        raise ValidationError(f"{name} must be a non-negative number, got {value!r}")
    return number


def kph_to_mps(kph: float) -> float:
    """Convert kilometres/hour to metres/second.

    >>> kph_to_mps(36.0)
    10.0
    """
    return _require_finite_nonnegative(kph, "kph") * 1000.0 / SECONDS_PER_HOUR


def mps_to_kph(mps: float) -> float:
    """Convert metres/second to kilometres/hour.

    >>> mps_to_kph(10.0)
    36.0
    """
    return _require_finite_nonnegative(mps, "mps") * SECONDS_PER_HOUR / 1000.0


def km_to_m(km: float) -> float:
    """Convert kilometres to metres."""
    return _require_finite_nonnegative(km, "km") * 1000.0


def m_to_km(m: float) -> float:
    """Convert metres to kilometres."""
    return _require_finite_nonnegative(m, "m") / 1000.0


def minutes_to_seconds(minutes: float) -> float:
    """Convert minutes to seconds."""
    return _require_finite_nonnegative(minutes, "minutes") * SECONDS_PER_MINUTE


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return _require_finite_nonnegative(hours, "hours") * SECONDS_PER_HOUR


def days_to_seconds(days: float) -> float:
    """Convert days to seconds."""
    return _require_finite_nonnegative(days, "days") * SECONDS_PER_DAY


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return _require_finite_nonnegative(seconds, "seconds") / SECONDS_PER_HOUR


def seconds_to_days(seconds: float) -> float:
    """Convert seconds to days."""
    return _require_finite_nonnegative(seconds, "seconds") / SECONDS_PER_DAY
