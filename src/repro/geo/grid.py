"""A uniform grid spatial index over planar points.

Used by the simulator (nearest cell tower lookup) and available as an
optional coarse candidate pre-filter.  The index maps each point into a
square cell of side ``cell_size`` and answers nearest-neighbour and
radius queries by scanning a growing ring of cells.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import ValidationError


class GridIndex:
    """Static uniform-grid index over a fixed point set.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of planar coordinates in metres.
    cell_size:
        Side length of a grid cell in metres.  A good default is the
        typical query radius.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValidationError(f"points must be (n, 2), got shape {points.shape}")
        if not cell_size > 0:
            raise ValidationError(f"cell_size must be positive, got {cell_size}")
        self._points = points
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, (x, y) in enumerate(points):
            self._cells[self._cell_of(x, y)].append(idx)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    @property
    def cell_size(self) -> float:
        return self._cell_size

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(np.floor(x / self._cell_size)), int(np.floor(y / self._cell_size)))

    def _ring_indices(self, cx: int, cy: int, ring: int) -> list[int]:
        """Point indices in the square ring at Chebyshev distance ``ring``."""
        found: list[int] = []
        if ring == 0:
            return list(self._cells.get((cx, cy), ()))
        for dx in range(-ring, ring + 1):
            for dy in range(-ring, ring + 1):
                if max(abs(dx), abs(dy)) != ring:
                    continue
                found.extend(self._cells.get((cx + dx, cy + dy), ()))
        return found

    def nearest(self, x: float, y: float) -> tuple[int, float]:
        """Index and distance of the point nearest to ``(x, y)``.

        Raises :class:`~repro.errors.ValidationError` if the index is empty.
        """
        if len(self._points) == 0:
            raise ValidationError("nearest() on an empty index")
        cx, cy = self._cell_of(x, y)
        best_idx = -1
        best_dist = np.inf
        ring = 0
        # Expand rings until the best candidate cannot be beaten by any
        # point in the next unexplored ring.
        while True:
            candidates = self._ring_indices(cx, cy, ring)
            if candidates:
                pts = self._points[candidates]
                dists = np.hypot(pts[:, 0] - x, pts[:, 1] - y)
                local_best = int(np.argmin(dists))
                if dists[local_best] < best_dist:
                    best_dist = float(dists[local_best])
                    best_idx = candidates[local_best]
            # Any point in ring r+1 is at least r * cell_size away.
            if best_idx >= 0 and best_dist <= ring * self._cell_size:
                return best_idx, best_dist
            ring += 1
            if ring * self._cell_size > self._max_extent() + 2 * self._cell_size:
                # The query is far outside the populated area; ring
                # expansion would crawl, so finish by brute force.
                dists = np.hypot(self._points[:, 0] - x, self._points[:, 1] - y)
                idx = int(np.argmin(dists))
                return idx, float(dists[idx])

    def _max_extent(self) -> float:
        mins = self._points.min(axis=0)
        maxs = self._points.max(axis=0)
        return float(np.hypot(*(maxs - mins)))

    def within(self, x: float, y: float, radius: float) -> list[int]:
        """Indices of all points within ``radius`` metres of ``(x, y)``."""
        if radius < 0:
            raise ValidationError(f"radius must be non-negative, got {radius}")
        cx, cy = self._cell_of(x, y)
        max_ring = int(np.ceil(radius / self._cell_size)) + 1
        found: list[int] = []
        for ring in range(max_ring + 1):
            for idx in self._ring_indices(cx, cy, ring):
                px, py = self._points[idx]
                if np.hypot(px - x, py - y) <= radius:
                    found.append(idx)
        return found

    def nearest_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`nearest` returning an index array."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise ValidationError("xs and ys must have identical shapes")
        flat_x = np.atleast_1d(xs).ravel()
        flat_y = np.atleast_1d(ys).ravel()
        out = np.empty(flat_x.shape[0], dtype=np.int64)
        for i, (x, y) in enumerate(zip(flat_x, flat_y)):
            out[i] = self.nearest(float(x), float(y))[0]
        return out.reshape(np.atleast_1d(xs).shape)
