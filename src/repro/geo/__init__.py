"""Geometry substrate: units, distance metrics, bounding boxes, grid index."""

from repro.geo.bbox import BoundingBox
from repro.geo.distance import (
    euclidean,
    euclidean_many,
    get_metric,
    haversine,
    haversine_many,
)
from repro.geo.grid import GridIndex
from repro.geo.units import (
    KM_PER_MILE,
    kph_to_mps,
    km_to_m,
    m_to_km,
    mps_to_kph,
    hours_to_seconds,
    days_to_seconds,
    minutes_to_seconds,
    seconds_to_hours,
)

__all__ = [
    "BoundingBox",
    "GridIndex",
    "KM_PER_MILE",
    "euclidean",
    "euclidean_many",
    "get_metric",
    "haversine",
    "haversine_many",
    "kph_to_mps",
    "km_to_m",
    "m_to_km",
    "mps_to_kph",
    "hours_to_seconds",
    "days_to_seconds",
    "minutes_to_seconds",
    "seconds_to_hours",
]
