"""Distance metrics between location points.

Two metrics are supported:

* ``"euclidean"`` — planar distance in metres between points expressed in a
  local metric projection (the library's default; all synthetic data uses
  planar city coordinates in metres).
* ``"haversine"`` — great-circle distance in metres between (lon, lat)
  points in degrees, for use with raw GPS / check-in data.

Scalar functions operate on four floats; ``*_many`` variants are
vectorised over NumPy arrays and are the ones used on the hot path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ValidationError

#: Mean Earth radius in metres (IUGG value).
EARTH_RADIUS_M = 6_371_008.8

MetricFn = Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Planar distance between ``(x1, y1)`` and ``(x2, y2)`` in input units."""
    dx = x2 - x1
    dy = y2 - y1
    return float(np.hypot(dx, dy))


def euclidean_many(
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray
) -> np.ndarray:
    """Vectorised planar distance; broadcasts like NumPy arithmetic."""
    return np.hypot(np.asarray(x2) - np.asarray(x1), np.asarray(y2) - np.asarray(y1))


def haversine(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two (lon, lat) degree points."""
    return float(haversine_many(np.float64(lon1), np.float64(lat1),
                                np.float64(lon2), np.float64(lat2)))


def haversine_many(
    lon1: np.ndarray, lat1: np.ndarray, lon2: np.ndarray, lat2: np.ndarray
) -> np.ndarray:
    """Vectorised haversine distance in metres.

    Inputs are degrees; the first coordinate of each pair is longitude so
    the argument order matches the planar ``(x, y)`` convention.
    """
    lon1r = np.radians(np.asarray(lon1, dtype=np.float64))
    lat1r = np.radians(np.asarray(lat1, dtype=np.float64))
    lon2r = np.radians(np.asarray(lon2, dtype=np.float64))
    lat2r = np.radians(np.asarray(lat2, dtype=np.float64))
    dlat = lat2r - lat1r
    dlon = lon2r - lon1r
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1r) * np.cos(lat2r) * np.sin(dlon / 2.0) ** 2
    # Clip guards against tiny negative values from floating-point rounding.
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


_METRICS: dict[str, MetricFn] = {
    "euclidean": euclidean_many,
    "haversine": haversine_many,
}


def get_metric(name: str) -> MetricFn:
    """Return the vectorised metric function registered under ``name``.

    Raises :class:`~repro.errors.ValidationError` for unknown names so a
    typo in a config fails fast rather than at query time.
    """
    try:
        return _METRICS[name]
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise ValidationError(f"unknown metric {name!r}; known metrics: {known}") from None


def metric_names() -> tuple[str, ...]:
    """Names of all registered metrics."""
    return tuple(sorted(_METRICS))
