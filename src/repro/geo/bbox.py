"""Axis-aligned bounding boxes for planar city coordinates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]`` in metres.

    Used as the extent of a simulated city and for spatial sanity checks on
    loaded data.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if not (self.max_x > self.min_x and self.max_y > self.min_y):
            raise ValidationError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_size(cls, width: float, height: float) -> "BoundingBox":
        """A box anchored at the origin with the given width/height in metres."""
        return cls(0.0, 0.0, float(width), float(height))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def diameter(self) -> float:
        """Length of the diagonal — the largest possible in-box distance."""
        return float(np.hypot(self.width, self.height))

    @property
    def center(self) -> tuple[float, float]:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside the box (boundaries inclusive)."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over coordinate arrays."""
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        return (
            (xs >= self.min_x)
            & (xs <= self.max_x)
            & (ys >= self.min_y)
            & (ys <= self.max_y)
        )

    def clip(self, x: float, y: float) -> tuple[float, float]:
        """The point moved to the nearest in-box location."""
        return (
            float(min(max(x, self.min_x), self.max_x)),
            float(min(max(y, self.min_y), self.max_y)),
        )

    def clip_many(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`clip`."""
        return (
            np.clip(np.asarray(xs, dtype=np.float64), self.min_x, self.max_x),
            np.clip(np.asarray(ys, dtype=np.float64), self.min_y, self.max_y),
        )

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """``n`` uniform points inside the box as an ``(n, 2)`` array."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        xs = rng.uniform(self.min_x, self.max_x, size=n)
        ys = rng.uniform(self.min_y, self.max_y, size=n)
        return np.column_stack([xs, ys])

    def expand(self, margin: float) -> "BoundingBox":
        """A box grown by ``margin`` metres on every side."""
        if margin < 0 and (self.width + 2 * margin <= 0 or self.height + 2 * margin <= 0):
            raise ValidationError(f"margin {margin} collapses the box")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
