"""Global configuration for the FTL algorithms.

A single frozen :class:`FTLConfig` carries every tunable the paper
exposes (``Vmax``, time-unit length, model horizon) plus implementation
knobs (metric, smoothing, Poisson–Binomial backend).  Passing one config
through the whole pipeline keeps experiments reproducible: the bucketing
of time differences, the speed threshold and the statistical backend are
all decided in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from functools import cached_property
from typing import Any, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.geo.distance import MetricFn, get_metric, metric_names
from repro.geo.units import kph_to_mps
from repro.kernels.backend import KERNEL_BACKENDS

#: Poisson-Binomial evaluation backends (see :mod:`repro.stats.poisson_binomial`).
PB_BACKENDS = ("dp", "recursive", "normal")


@dataclass(frozen=True)
class FTLConfig:
    """Parameters shared by model building, filtering and matching.

    Parameters
    ----------
    vmax_kph:
        Maximum plausible travel speed in km/h (paper Definition 3 uses
        ``Vmax``; 120 kph for Singapore taxi data, 140 kph as a loose
        city-wide cap).
    time_unit_s:
        Width of a time-difference bucket in seconds (paper: "half, one,
        or two minutes").  A mutual segment of gap ``dt`` is assigned to
        bucket ``round(dt / time_unit_s)``.
    horizon_s:
        Time difference beyond which any mutual segment is treated as
        always compatible (paper: "given enough time, one can always
        travel from one place to another").  One hour by default.
    metric:
        Name of the distance metric; ``"euclidean"`` for planar metres
        (default, used by the simulator) or ``"haversine"`` for lon/lat.
    smoothing:
        Pseudo-count added to both outcomes when estimating bucket
        incompatibility probabilities (Jeffreys prior by default).  Keeps
        Naive-Bayes log-likelihoods finite.
    min_bucket_count:
        Buckets with fewer observations than this are treated as empty
        and filled by interpolation between populated neighbours.
    max_acceptance_pairs:
        Cap on the number of different-person trajectory pairs sampled
        per database when building the acceptance model (Algorithm 2 is
        quadratic without a cap).
    pb_backend:
        Poisson-Binomial evaluation method: ``"dp"`` (exact convolution),
        ``"recursive"`` (the paper's Eq. 1; exact but numerically fragile
        for large n), or ``"normal"`` (refined normal approximation).
    prob_floor:
        Probabilities are clamped to ``[prob_floor, 1 - prob_floor]``
        before being used in likelihoods, guarding against log(0).
    kernel_backend:
        Hot-path kernel implementation: ``"auto"`` (numba when
        importable, else the batched NumPy kernels), ``"numba"``,
        ``"numpy"``, or ``"python"`` (the per-pair reference path).
        ``"auto"`` also honours the ``FTL_KERNEL_BACKEND`` environment
        variable; see :mod:`repro.kernels`.
    shard_cell_size_m:
        Geo-grid cell side (metres) used by the multi-worker daemon to
        assign each candidate a *home cell* for consistent-hash shard
        routing (see :mod:`repro.service.shard`).  Finer than the
        blocking index's reachability cell on purpose: shard placement
        only needs a stable spatial key, not a pruning guarantee, and a
        ~1 km cell spreads a city across shards evenly.
    """

    vmax_kph: float = 120.0
    time_unit_s: float = 60.0
    horizon_s: float = 3600.0
    metric: str = "euclidean"
    smoothing: float = 0.5
    min_bucket_count: int = 3
    max_acceptance_pairs: int = 200
    pb_backend: str = "dp"
    prob_floor: float = 1e-9
    kernel_backend: str = "auto"
    shard_cell_size_m: float = 1000.0

    def __post_init__(self) -> None:
        if not self.vmax_kph > 0:
            raise ValidationError(f"vmax_kph must be positive, got {self.vmax_kph}")
        if not self.time_unit_s > 0:
            raise ValidationError(f"time_unit_s must be positive, got {self.time_unit_s}")
        if not self.horizon_s >= self.time_unit_s:
            raise ValidationError(
                f"horizon_s ({self.horizon_s}) must be at least one time unit "
                f"({self.time_unit_s})"
            )
        if self.metric not in metric_names():
            raise ValidationError(
                f"unknown metric {self.metric!r}; known: {metric_names()}"
            )
        if self.smoothing < 0:
            raise ValidationError(f"smoothing must be >= 0, got {self.smoothing}")
        if self.min_bucket_count < 0:
            raise ValidationError(
                f"min_bucket_count must be >= 0, got {self.min_bucket_count}"
            )
        if self.max_acceptance_pairs < 1:
            raise ValidationError(
                f"max_acceptance_pairs must be >= 1, got {self.max_acceptance_pairs}"
            )
        if self.pb_backend not in PB_BACKENDS:
            raise ValidationError(
                f"unknown pb_backend {self.pb_backend!r}; known: {PB_BACKENDS}"
            )
        if not 0 < self.prob_floor < 0.5:
            raise ValidationError(
                f"prob_floor must be in (0, 0.5), got {self.prob_floor}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValidationError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"known: {KERNEL_BACKENDS}"
            )
        if not self.shard_cell_size_m > 0:
            raise ValidationError(
                f"shard_cell_size_m must be positive, got {self.shard_cell_size_m}"
            )

    @property
    def vmax_mps(self) -> float:
        """The speed cap in metres/second."""
        return kph_to_mps(self.vmax_kph)

    @cached_property
    def metric_fn(self) -> MetricFn:
        """The resolved vectorised metric function (cached per config).

        Hot paths call this instead of re-resolving
        :func:`repro.geo.distance.get_metric` per record pair; the
        cache lives in the instance ``__dict__`` and does not affect
        equality or hashing (both are field-based).
        """
        return get_metric(self.metric)

    @property
    def n_buckets(self) -> int:
        """Number of time buckets covered by the models (bucket 0 included).

        Bucket indices run ``0 .. n_buckets - 1``; gaps that round to a
        bucket at or beyond the horizon are "beyond the model" and always
        compatible.
        """
        return int(math.ceil(self.horizon_s / self.time_unit_s))

    def bucket_of(self, dt_s: float) -> int:
        """Bucket index of a single non-negative time difference."""
        if dt_s < 0:
            raise ValidationError(f"time difference must be >= 0, got {dt_s}")
        return int(round(dt_s / self.time_unit_s))

    def buckets_of(self, dt_s: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`bucket_of` (no negativity check; hot path)."""
        return np.rint(np.asarray(dt_s, dtype=np.float64) / self.time_unit_s).astype(
            np.int64
        )

    def with_updates(self, **changes: Any) -> "FTLConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot of every dataclass field.

        The single authoritative config serialisation: iterating
        :func:`dataclasses.fields` means a field added to the dataclass
        is serialised automatically — the snapshot can never silently
        drift from the class the way a hand-maintained dict can.
        (``metric_fn`` is a ``cached_property`` living in the instance
        ``__dict__``, not a field, so it is naturally excluded.)
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FTLConfig":
        """Rebuild a config saved by :meth:`to_dict`.

        Missing keys take the dataclass defaults (snapshots written by
        *older* versions load cleanly).  Unknown keys are rejected with
        an error that names them — a snapshot carrying fields this
        version does not know about was written by a *newer* version,
        and silently dropping its settings would load a different
        config than the one saved.
        """
        if not isinstance(payload, Mapping):
            raise ValidationError(
                f"config snapshot must be a mapping, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"config snapshot has unknown field(s) {unknown}; it was "
                "saved by a newer version of this software — upgrade before "
                "loading it"
            )
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise ValidationError(f"malformed config snapshot: {exc}") from exc


#: Paper default for the Singapore taxi evaluation (Section VII-B).
DEFAULT_CONFIG = FTLConfig()
