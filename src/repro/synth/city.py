"""The simulated city: extent, POIs and cell towers.

A :class:`CityModel` is shared by all agents of a scenario so that
their movements, POI choices and CDR tower snapping are mutually
consistent.  The default dimensions approximate Singapore's main island
(~45 km x 25 km), the city the paper's primary dataset comes from.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geo.bbox import BoundingBox
from repro.geo.grid import GridIndex
from repro.synth.pois import generate_pois, generate_tower_grid

#: Default extent, metres (Singapore-like).
DEFAULT_WIDTH_M = 45_000.0
DEFAULT_HEIGHT_M = 25_000.0


class CityModel:
    """A city with POIs and a cell-tower grid.

    Use :meth:`generate` to build one from a random generator; the
    constructor accepts explicit geometry for tests.

    Parameters
    ----------
    bbox:
        City extent in metres.
    pois:
        ``(n, 2)`` POI coordinates.
    towers:
        ``(m, 2)`` cell-tower coordinates.
    """

    def __init__(
        self, bbox: BoundingBox, pois: np.ndarray, towers: np.ndarray
    ) -> None:
        pois = np.asarray(pois, dtype=np.float64)
        towers = np.asarray(towers, dtype=np.float64)
        if pois.ndim != 2 or pois.shape[1] != 2 or pois.shape[0] < 2:
            raise ValidationError("pois must be an (n >= 2, 2) array")
        if towers.ndim != 2 or towers.shape[1] != 2 or towers.shape[0] < 1:
            raise ValidationError("towers must be an (m >= 1, 2) array")
        self._bbox = bbox
        self._pois = pois
        self._towers = towers
        self._tower_index = GridIndex(towers, cell_size=max(bbox.diameter / 20.0, 1.0))

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        width_m: float = DEFAULT_WIDTH_M,
        height_m: float = DEFAULT_HEIGHT_M,
        n_pois: int = 120,
        tower_spacing_m: float = 1_500.0,
    ) -> "CityModel":
        """A random city with clustered POIs and a jittered tower grid."""
        bbox = BoundingBox.from_size(width_m, height_m)
        pois = generate_pois(bbox, n_pois, rng)
        towers = generate_tower_grid(bbox, tower_spacing_m, rng)
        return cls(bbox, pois, towers)

    @property
    def bbox(self) -> BoundingBox:
        return self._bbox

    @property
    def pois(self) -> np.ndarray:
        view = self._pois.view()
        view.flags.writeable = False
        return view

    @property
    def towers(self) -> np.ndarray:
        view = self._towers.view()
        view.flags.writeable = False
        return view

    @property
    def n_pois(self) -> int:
        return int(self._pois.shape[0])

    @property
    def diameter_m(self) -> float:
        """The largest possible in-city distance."""
        return self._bbox.diameter

    def random_poi(self, rng: np.random.Generator) -> tuple[float, float]:
        """Coordinates of a uniformly random POI."""
        idx = int(rng.integers(0, self.n_pois))
        return (float(self._pois[idx, 0]), float(self._pois[idx, 1]))

    def random_poi_indices(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` uniformly random POI indices (with replacement)."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        return rng.integers(0, self.n_pois, size=n)

    def nearest_tower(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """``(n, 2)`` coordinates of the tower nearest to each point."""
        idx = self._tower_index.nearest_many(np.atleast_1d(xs), np.atleast_1d(ys))
        return self._towers[idx]

    def min_horizon_s(self, vmax_mps: float) -> float:
        """Smallest model horizon guaranteeing beyond-horizon compatibility.

        Any two in-city points are within ``diameter_m``; after
        ``diameter_m / vmax_mps`` seconds every segment is compatible.
        """
        if not vmax_mps > 0:
            raise ValidationError(f"vmax_mps must be positive, got {vmax_mps}")
        return self.diameter_m / vmax_mps
