"""Road-network mobility: agents that drive on streets, not bee-lines.

The straight-line mobility of :mod:`repro.synth.mobility` is a
conservative substrate (real travel distance is longer than the
geodesic, which the paper leans on: "the real traveling distance is
usually longer than d as no one can travel in exactly straight lines").
This module provides the more realistic variant: a random planar road
graph over the city, with agents travelling along shortest paths.

The network is a jittered grid with random diagonal shortcuts and a
small fraction of removed edges — enough irregularity that shortest
paths meaningfully exceed straight-line distance, while staying
connected by construction checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ValidationError
from repro.geo.units import kph_to_mps
from repro.synth.city import CityModel
from repro.synth.mobility import GroundTruthPath, _WaypointBuilder


@dataclass(frozen=True)
class RoadNetwork:
    """A connected planar road graph over a city.

    Attributes
    ----------
    graph:
        ``networkx.Graph`` whose nodes carry ``pos=(x, y)`` metres and
        whose edges carry ``length`` metres.
    node_positions:
        ``(n, 2)`` array of node coordinates, indexed by node id.
    """

    graph: nx.Graph
    node_positions: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.node_positions.shape[0])

    def nearest_node(self, x: float, y: float) -> int:
        """Graph node closest to a planar point."""
        dists = np.hypot(
            self.node_positions[:, 0] - x, self.node_positions[:, 1] - y
        )
        return int(np.argmin(dists))

    def shortest_path_nodes(self, source: int, target: int) -> list[int]:
        """Node sequence of the length-weighted shortest path."""
        return nx.shortest_path(
            self.graph, source, target, weight="length"
        )

    def path_length_m(self, nodes: list[int]) -> float:
        """Total metres along a node sequence."""
        total = 0.0
        for a, b in zip(nodes, nodes[1:]):
            total += self.graph[a][b]["length"]
        return total


def build_road_network(
    city: CityModel,
    rng: np.random.Generator,
    spacing_m: float = 1_500.0,
    jitter_fraction: float = 0.2,
    removal_fraction: float = 0.08,
    diagonal_fraction: float = 0.15,
) -> RoadNetwork:
    """A jittered-grid road network covering the city's bounding box.

    Parameters
    ----------
    spacing_m:
        Grid pitch of intersections.
    jitter_fraction:
        Node position jitter as a fraction of the pitch.
    removal_fraction:
        Fraction of grid edges randomly removed (only removals that
        keep the graph connected are applied).
    diagonal_fraction:
        Fraction of grid cells given one diagonal shortcut.
    """
    if spacing_m <= 0:
        raise ValidationError(f"spacing_m must be positive, got {spacing_m}")
    if not 0 <= jitter_fraction < 0.5:
        raise ValidationError("jitter_fraction must be in [0, 0.5)")
    if not 0 <= removal_fraction < 1:
        raise ValidationError("removal_fraction must be in [0, 1)")
    if not 0 <= diagonal_fraction <= 1:
        raise ValidationError("diagonal_fraction must be in [0, 1]")

    bbox = city.bbox
    n_cols = max(int(np.floor(bbox.width / spacing_m)) + 1, 2)
    n_rows = max(int(np.floor(bbox.height / spacing_m)) + 1, 2)

    graph = nx.Graph()
    positions = np.empty((n_rows * n_cols, 2))

    def node_id(r: int, c: int) -> int:
        return r * n_cols + c

    for r in range(n_rows):
        for c in range(n_cols):
            x = bbox.min_x + c * spacing_m + rng.uniform(
                -jitter_fraction, jitter_fraction
            ) * spacing_m
            y = bbox.min_y + r * spacing_m + rng.uniform(
                -jitter_fraction, jitter_fraction
            ) * spacing_m
            x, y = bbox.clip(x, y)
            nid = node_id(r, c)
            positions[nid] = (x, y)
            graph.add_node(nid, pos=(x, y))

    def add_edge(a: int, b: int) -> None:
        ax, ay = positions[a]
        bx, by = positions[b]
        graph.add_edge(a, b, length=float(np.hypot(bx - ax, by - ay)))

    for r in range(n_rows):
        for c in range(n_cols):
            if c + 1 < n_cols:
                add_edge(node_id(r, c), node_id(r, c + 1))
            if r + 1 < n_rows:
                add_edge(node_id(r, c), node_id(r + 1, c))
            if (
                c + 1 < n_cols
                and r + 1 < n_rows
                and rng.random() < diagonal_fraction
            ):
                if rng.random() < 0.5:
                    add_edge(node_id(r, c), node_id(r + 1, c + 1))
                else:
                    add_edge(node_id(r, c + 1), node_id(r + 1, c))

    # Remove a fraction of edges, refusing removals that disconnect.
    edges = list(graph.edges())
    rng.shuffle(edges)
    to_remove = int(removal_fraction * len(edges))
    removed = 0
    for a, b in edges:
        if removed >= to_remove:
            break
        data = graph[a][b].copy()
        graph.remove_edge(a, b)
        if nx.is_connected(graph):
            removed += 1
        else:
            graph.add_edge(a, b, **data)

    return RoadNetwork(graph=graph, node_positions=positions)


def build_road_taxi_path(
    city: CityModel,
    network: RoadNetwork,
    duration_s: float,
    rng: np.random.Generator,
    speed_low_kph: float = 25.0,
    speed_high_kph: float = 70.0,
    dwell_max_s: float = 600.0,
    start_time: float = 0.0,
) -> GroundTruthPath:
    """Taxi wandering along the road network's shortest paths.

    Like :func:`repro.synth.mobility.build_taxi_path`, but every trip
    follows street geometry: the agent drives node-to-node along the
    shortest road path between the intersections nearest to the origin
    and destination POIs.
    """
    if duration_s <= 0:
        raise ValidationError(f"duration_s must be positive, got {duration_s}")
    if not 0 < speed_low_kph <= speed_high_kph:
        raise ValidationError("need 0 < speed_low_kph <= speed_high_kph")
    start_poi = city.random_poi(rng)
    current = network.nearest_node(*start_poi)
    x0, y0 = network.node_positions[current]
    builder = _WaypointBuilder.start(start_time, float(x0), float(y0))
    end = start_time + duration_s
    while builder.now < end:
        dest_poi = city.random_poi(rng)
        target = network.nearest_node(*dest_poi)
        if target != current:
            speed = kph_to_mps(float(rng.uniform(speed_low_kph, speed_high_kph)))
            for node in network.shortest_path_nodes(current, target)[1:]:
                nx_, ny_ = network.node_positions[node]
                builder.travel_to(float(nx_), float(ny_), speed)
            current = target
        builder.dwell_until(builder.now + float(rng.uniform(0.0, dwell_max_s)))
    builder.dwell_until(end)
    return builder.build()


def detour_ratio(
    network: RoadNetwork, rng: np.random.Generator, n_samples: int = 50
) -> float:
    """Mean road-distance / straight-line-distance over random node pairs.

    A sanity metric for generated networks: > 1 by construction, and
    typically 1.1-1.4 for jittered grids — matching the paper's remark
    that real travel exceeds the geometric distance.
    """
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1")
    ratios = []
    n = network.n_nodes
    while len(ratios) < n_samples:
        a, b = rng.integers(0, n, size=2)
        if a == b:
            continue
        ax, ay = network.node_positions[a]
        bx, by = network.node_positions[b]
        straight = float(np.hypot(bx - ax, by - ay))
        if straight < 1.0:
            continue
        road = network.path_length_m(
            network.shortest_path_nodes(int(a), int(b))
        )
        ratios.append(road / straight)
    return float(np.mean(ratios))
