"""Scenario builders: paired trajectory databases with ground truth.

Two protocols, mirroring the paper's two datasets:

* :func:`make_paired_databases` — every agent is observed by two
  independent services (the Singapore taxi log/trip situation: "when a
  taxi reports its trip location to the trip database, it probably does
  not report its current status to the log database").
* :func:`make_split_databases` — one dense trajectory per agent is
  split record-by-record into two databases with equal probability
  (the paper's T-Drive protocol).

Both return a :class:`ScenarioPair` holding the query database ``P``,
the candidate database ``Q`` and the ground-truth id mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.synth.observation import ObservationService
from repro.synth.population import Agent


@dataclass(frozen=True)
class ScenarioPair:
    """A (P, Q) database pair with ground truth.

    Attributes
    ----------
    p_db:
        Query database (the paper's ``P``).
    q_db:
        Candidate database (the paper's ``Q``).
    truth:
        Mapping from ``P`` trajectory id to the matching ``Q`` id; only
        queries that *have* a match appear.
    """

    p_db: TrajectoryDatabase
    q_db: TrajectoryDatabase
    truth: Mapping[object, object]

    def matched_query_ids(self) -> list[object]:
        """Query ids that have a ground-truth match present in both DBs."""
        return [
            pid
            for pid, qid in self.truth.items()
            if pid in self.p_db and qid in self.q_db
        ]

    def sample_queries(
        self, n: int, rng: np.random.Generator
    ) -> list[object]:
        """``n`` random matched query ids without replacement."""
        ids = self.matched_query_ids()
        if n > len(ids):
            raise ValidationError(
                f"cannot sample {n} queries; only {len(ids)} matched queries exist"
            )
        chosen = rng.choice(len(ids), size=n, replace=False)
        return [ids[i] for i in chosen]


def make_paired_databases(
    agents: Sequence[Agent],
    service_p: ObservationService,
    service_q: ObservationService,
    rng: np.random.Generator,
    min_records: int = 2,
) -> ScenarioPair:
    """Observe every agent with two services to form a (P, Q) pair.

    Agents whose observation in either database has fewer than
    ``min_records`` records are dropped from the ground truth (but a
    non-empty lone trajectory still enters its database, acting as a
    distractor — exactly what happens with real partial coverage).
    """
    if not agents:
        raise ValidationError("need at least one agent")
    p_db = TrajectoryDatabase(name=service_p.name)
    q_db = TrajectoryDatabase(name=service_q.name)
    truth: dict[object, object] = {}
    for agent in agents:
        p_id = f"P{agent.agent_id}"
        q_id = f"Q{agent.agent_id}"
        p_traj = service_p.observe(agent.path, rng, traj_id=p_id)
        q_traj = service_q.observe(agent.path, rng, traj_id=q_id)
        if len(p_traj) > 0:
            p_db.add(p_traj)
        if len(q_traj) > 0:
            q_db.add(q_traj)
        if len(p_traj) >= min_records and len(q_traj) >= min_records:
            truth[p_id] = q_id
    if len(p_db) == 0 or len(q_db) == 0:
        raise ValidationError(
            "observation produced an empty database; increase rates or duration"
        )
    return ScenarioPair(p_db, q_db, truth)


def make_split_databases(
    trajectories: Iterable[Trajectory],
    rng: np.random.Generator,
    split_probability: float = 0.5,
    min_records: int = 2,
) -> ScenarioPair:
    """Split each dense trajectory into two databases, record by record.

    Each record lands in ``P`` with probability ``split_probability``
    and in ``Q`` otherwise (the paper's T-Drive protocol: "each
    individual record is randomly dropped into one of the two datasets
    with the same probability", doubling the mean sampling interval).
    """
    if not 0.0 < split_probability < 1.0:
        raise ValidationError(
            f"split_probability must be in (0, 1), got {split_probability}"
        )
    p_db = TrajectoryDatabase(name="split-P")
    q_db = TrajectoryDatabase(name="split-Q")
    truth: dict[object, object] = {}
    n_seen = 0
    for traj in trajectories:
        n_seen += 1
        to_p = rng.random(len(traj)) < split_probability
        p_id = f"P{traj.traj_id}"
        q_id = f"Q{traj.traj_id}"
        p_traj = Trajectory(
            traj.ts[to_p], traj.xs[to_p], traj.ys[to_p], p_id
        )
        q_traj = Trajectory(
            traj.ts[~to_p], traj.xs[~to_p], traj.ys[~to_p], q_id
        )
        if len(p_traj) > 0:
            p_db.add(p_traj)
        if len(q_traj) > 0:
            q_db.add(q_traj)
        if len(p_traj) >= min_records and len(q_traj) >= min_records:
            truth[p_id] = q_id
    if n_seen == 0:
        raise ValidationError("need at least one trajectory to split")
    if len(p_db) == 0 or len(q_db) == 0:
        raise ValidationError("split produced an empty database")
    return ScenarioPair(p_db, q_db, truth)
