"""Continuous ground-truth motion of simulated agents.

A :class:`GroundTruthPath` is a piecewise-linear function of time built
from waypoints.  Builders produce two mobility styles:

* :func:`build_taxi_path` — continuous wandering between random POIs
  with short dwells, approximating the paper's taxi traces;
* :func:`build_commuter_path` — a home/work daily schedule with an
  optional evening errand, approximating the commuter/CDR populations
  the paper's introduction motivates.

All travel is along straight lines at speeds strictly below the
configured true maximum, which in turn should sit below the FTL
``Vmax``; this reproduces the paper's argument that the loose speed cap
never rejects true positives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.geo.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, kph_to_mps
from repro.synth.city import CityModel


class GroundTruthPath:
    """A piecewise-linear trajectory of one agent over a time window.

    Parameters
    ----------
    waypoint_ts, waypoint_xs, waypoint_ys:
        Strictly sorted waypoint timestamps (seconds) and coordinates
        (metres).  Between waypoints the agent moves linearly; outside
        the window it stays at the nearest endpoint.
    """

    __slots__ = ("_ts", "_xs", "_ys")

    def __init__(
        self,
        waypoint_ts: np.ndarray,
        waypoint_xs: np.ndarray,
        waypoint_ys: np.ndarray,
    ) -> None:
        ts = np.asarray(waypoint_ts, dtype=np.float64)
        xs = np.asarray(waypoint_xs, dtype=np.float64)
        ys = np.asarray(waypoint_ys, dtype=np.float64)
        if ts.ndim != 1 or ts.shape != xs.shape or ts.shape != ys.shape:
            raise ValidationError("waypoint arrays must be equal-length 1-D")
        if ts.shape[0] < 2:
            raise ValidationError("a path needs at least two waypoints")
        if np.any(np.diff(ts) < 0):
            raise ValidationError("waypoint timestamps must be non-decreasing")
        self._ts = ts
        self._xs = xs
        self._ys = ys

    @property
    def start_time(self) -> float:
        return float(self._ts[0])

    @property
    def end_time(self) -> float:
        return float(self._ts[-1])

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def n_waypoints(self) -> int:
        return int(self._ts.shape[0])

    @property
    def waypoints(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (ts, xs, ys) waypoint arrays (copies)."""
        return (self._ts.copy(), self._xs.copy(), self._ys.copy())

    def position_at(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Interpolated ``(xs, ys)`` at the given absolute times.

        Vectorised; times outside the window clamp to the endpoints.
        """
        times = np.asarray(times, dtype=np.float64)
        return (
            np.interp(times, self._ts, self._xs),
            np.interp(times, self._ts, self._ys),
        )

    def max_speed_mps(self) -> float:
        """The largest leg speed of the path (0 if all legs are dwells)."""
        dts = np.diff(self._ts)
        dists = np.hypot(np.diff(self._xs), np.diff(self._ys))
        moving = dts > 0
        if not np.any(moving):
            return 0.0
        return float((dists[moving] / dts[moving]).max())


@dataclass(frozen=True)
class _WaypointBuilder:
    """Accumulates waypoints while enforcing speed-bounded travel."""

    ts: list
    xs: list
    ys: list

    @classmethod
    def start(cls, t: float, x: float, y: float) -> "_WaypointBuilder":
        return cls([t], [x], [y])

    @property
    def now(self) -> float:
        return self.ts[-1]

    @property
    def here(self) -> tuple[float, float]:
        return (self.xs[-1], self.ys[-1])

    def dwell_until(self, t: float) -> None:
        """Stay in place until absolute time ``t`` (no-op if in the past)."""
        if t > self.now:
            self.ts.append(t)
            self.xs.append(self.xs[-1])
            self.ys.append(self.ys[-1])

    def travel_to(self, x: float, y: float, speed_mps: float) -> None:
        """Move in a straight line to ``(x, y)`` at the given speed."""
        if not speed_mps > 0:
            raise ValidationError(f"speed must be positive, got {speed_mps}")
        dist = float(np.hypot(x - self.xs[-1], y - self.ys[-1]))
        arrival = self.now + dist / speed_mps
        self.ts.append(arrival)
        self.xs.append(x)
        self.ys.append(y)

    def build(self) -> GroundTruthPath:
        return GroundTruthPath(
            np.asarray(self.ts), np.asarray(self.xs), np.asarray(self.ys)
        )


def _sample_speed(
    rng: np.random.Generator, low_kph: float, high_kph: float
) -> float:
    return kph_to_mps(float(rng.uniform(low_kph, high_kph)))


def build_taxi_path(
    city: CityModel,
    duration_s: float,
    rng: np.random.Generator,
    speed_low_kph: float = 25.0,
    speed_high_kph: float = 70.0,
    dwell_max_s: float = 600.0,
    start_time: float = 0.0,
) -> GroundTruthPath:
    """Continuous POI-to-POI wandering, taxi style.

    The agent repeatedly picks a uniformly random POI, drives there in a
    straight line at a uniform random speed in
    ``[speed_low_kph, speed_high_kph]``, dwells up to ``dwell_max_s``
    seconds, and repeats until ``duration_s`` is covered.
    """
    if duration_s <= 0:
        raise ValidationError(f"duration_s must be positive, got {duration_s}")
    if not 0 < speed_low_kph <= speed_high_kph:
        raise ValidationError("need 0 < speed_low_kph <= speed_high_kph")
    x0, y0 = city.random_poi(rng)
    builder = _WaypointBuilder.start(start_time, x0, y0)
    end = start_time + duration_s
    while builder.now < end:
        x, y = city.random_poi(rng)
        builder.travel_to(x, y, _sample_speed(rng, speed_low_kph, speed_high_kph))
        dwell = float(rng.uniform(0.0, dwell_max_s))
        builder.dwell_until(builder.now + dwell)
    builder.dwell_until(end)
    return builder.build()


def build_commuter_path(
    city: CityModel,
    duration_s: float,
    rng: np.random.Generator,
    speed_low_kph: float = 20.0,
    speed_high_kph: float = 60.0,
    errand_probability: float = 0.35,
    start_time: float = 0.0,
) -> GroundTruthPath:
    """A home/work daily schedule with optional evening errands.

    Each simulated day the agent leaves home around 08:00 (+- 1 h),
    works until around 18:00 (+- 1 h), optionally visits one random POI
    on the way back, and spends the night at home.  Home and work are
    two fixed POIs chosen per agent.
    """
    if duration_s <= 0:
        raise ValidationError(f"duration_s must be positive, got {duration_s}")
    if not 0 <= errand_probability <= 1:
        raise ValidationError(
            f"errand_probability must be in [0, 1], got {errand_probability}"
        )
    home = city.random_poi(rng)
    work = city.random_poi(rng)
    builder = _WaypointBuilder.start(start_time, *home)
    end = start_time + duration_s
    n_days = int(np.ceil(duration_s / SECONDS_PER_DAY))
    for day in range(n_days):
        day_start = start_time + day * SECONDS_PER_DAY
        leave_home = day_start + 8.0 * SECONDS_PER_HOUR + rng.normal(0, 0.5 * SECONDS_PER_HOUR)
        leave_work = day_start + 18.0 * SECONDS_PER_HOUR + rng.normal(0, 0.5 * SECONDS_PER_HOUR)
        builder.dwell_until(min(leave_home, end))
        if builder.now >= end:
            break
        builder.travel_to(*work, _sample_speed(rng, speed_low_kph, speed_high_kph))
        builder.dwell_until(min(max(leave_work, builder.now), end))
        if builder.now >= end:
            break
        if rng.random() < errand_probability:
            errand = city.random_poi(rng)
            builder.travel_to(*errand, _sample_speed(rng, speed_low_kph, speed_high_kph))
            builder.dwell_until(builder.now + float(rng.uniform(900.0, 5400.0)))
        builder.travel_to(*home, _sample_speed(rng, speed_low_kph, speed_high_kph))
    builder.dwell_until(end)
    return builder.build()
