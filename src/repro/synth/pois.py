"""Points of interest: clustered destinations inside a city.

POIs are drawn from a Gaussian mixture whose cluster centres are uniform
in the city box — a simple stand-in for the dense activity centres
(malls, stations, business districts) that real taxi trips connect.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geo.bbox import BoundingBox


def generate_pois(
    bbox: BoundingBox,
    n_pois: int,
    rng: np.random.Generator,
    n_clusters: int = 8,
    cluster_std_fraction: float = 0.06,
) -> np.ndarray:
    """``(n_pois, 2)`` POI coordinates clustered inside ``bbox``.

    Parameters
    ----------
    n_clusters:
        Number of Gaussian activity centres.
    cluster_std_fraction:
        Cluster standard deviation as a fraction of the box diameter.

    Points falling outside the box are clipped to its boundary.
    """
    if n_pois < 1:
        raise ValidationError(f"n_pois must be >= 1, got {n_pois}")
    if n_clusters < 1:
        raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0 < cluster_std_fraction < 1:
        raise ValidationError(
            f"cluster_std_fraction must be in (0, 1), got {cluster_std_fraction}"
        )
    centres = bbox.sample(rng, n_clusters)
    assignments = rng.integers(0, n_clusters, size=n_pois)
    std = cluster_std_fraction * bbox.diameter
    points = centres[assignments] + rng.normal(0.0, std, size=(n_pois, 2))
    xs, ys = bbox.clip_many(points[:, 0], points[:, 1])
    return np.column_stack([xs, ys])


def generate_tower_grid(
    bbox: BoundingBox,
    spacing_m: float,
    rng: np.random.Generator,
    jitter_fraction: float = 0.25,
) -> np.ndarray:
    """Cell-tower locations on a jittered square grid.

    Used by :class:`~repro.synth.noise.TowerSnapNoise` to reproduce
    CDR-style localisation, where the recorded location is the serving
    tower rather than the user ("can be hundreds of meters away from
    the real user's location").
    """
    if not spacing_m > 0:
        raise ValidationError(f"spacing_m must be positive, got {spacing_m}")
    if not 0 <= jitter_fraction < 0.5:
        raise ValidationError(
            f"jitter_fraction must be in [0, 0.5), got {jitter_fraction}"
        )
    xs = np.arange(bbox.min_x + spacing_m / 2.0, bbox.max_x, spacing_m)
    ys = np.arange(bbox.min_y + spacing_m / 2.0, bbox.max_y, spacing_m)
    grid_x, grid_y = np.meshgrid(xs, ys)
    towers = np.column_stack([grid_x.ravel(), grid_y.ravel()])
    towers += rng.uniform(
        -jitter_fraction * spacing_m, jitter_fraction * spacing_m, size=towers.shape
    )
    cx, cy = bbox.clip_many(towers[:, 0], towers[:, 1])
    return np.column_stack([cx, cy])
