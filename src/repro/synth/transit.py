"""Transit lines and commuting-card taps.

The paper's flagship pairing is *anonymous commuting-card taps* against
*eponymous CDR pings*.  Taps are not Poisson samples of a continuous
path — they happen exactly when a rider boards or alights a vehicle.
This module models that faithfully:

* a :class:`TransitSystem` of bus routes laid over a
  :class:`~repro.synth.roads.RoadNetwork`, each route a shortest road
  path with a stop at every traversed intersection, fixed headway and
  vehicle speed;
* :func:`build_transit_commuter` — an agent whose days are walk -> wait
  -> ride -> walk, returning both the continuous ground-truth path
  (what a CDR service samples) and the discrete tap events (what the
  card database records);
* :func:`make_transit_scenario` — the paired databases: P holds tap
  trajectories, Q holds CDR-style observations of the same people.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.records import Record
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, kph_to_mps
from repro.synth.city import CityModel
from repro.synth.mobility import GroundTruthPath, _WaypointBuilder
from repro.synth.observation import ObservationService
from repro.synth.roads import RoadNetwork
from repro.synth.scenario import ScenarioPair

#: Pedestrian speed for access/egress walks.
WALK_SPEED_KPH = 5.0


@dataclass(frozen=True)
class TransitRoute:
    """One bus route: an ordered stop sequence with a timetable.

    Attributes
    ----------
    route_id:
        Index within the transit system.
    stops:
        ``(k, 2)`` stop coordinates in metres (road intersections).
    leg_seconds:
        ``(k-1,)`` riding time between consecutive stops.
    headway_s:
        Departure interval from the first stop.
    phase_s:
        Offset of the first departure of each day.
    """

    route_id: int
    stops: np.ndarray
    leg_seconds: np.ndarray
    headway_s: float
    phase_s: float

    @property
    def n_stops(self) -> int:
        return int(self.stops.shape[0])

    def nearest_stop(self, x: float, y: float) -> int:
        """Index of the stop closest to a point."""
        dists = np.hypot(self.stops[:, 0] - x, self.stops[:, 1] - y)
        return int(np.argmin(dists))

    def departure_after(self, stop_index: int, t: float) -> float:
        """First departure from ``stop_index`` at or after time ``t``.

        Vehicles leave the first stop every ``headway_s`` starting at
        ``phase_s`` past midnight (of day zero) and take the cumulative
        leg time to reach later stops.
        """
        if not 0 <= stop_index < self.n_stops:
            raise ValidationError(f"stop index {stop_index} out of range")
        offset = float(self.leg_seconds[:stop_index].sum())
        first = self.phase_s + offset
        if t <= first:
            return float(first)
        k = np.ceil((t - first) / self.headway_s)
        return float(first + k * self.headway_s)

    def ride_times(self, board: int, alight: int) -> np.ndarray:
        """Cumulative seconds from ``board`` to each stop up to ``alight``."""
        if not 0 <= board < alight < self.n_stops:
            raise ValidationError(
                f"need 0 <= board < alight < {self.n_stops}, "
                f"got {board}, {alight}"
            )
        return np.concatenate(
            [[0.0], np.cumsum(self.leg_seconds[board:alight])]
        )


class TransitSystem:
    """A set of routes over one road network."""

    def __init__(self, routes: list[TransitRoute]) -> None:
        if not routes:
            raise ValidationError("a transit system needs at least one route")
        self._routes = list(routes)

    def __len__(self) -> int:
        return len(self._routes)

    @property
    def routes(self) -> list[TransitRoute]:
        return list(self._routes)

    def route(self, route_id: int) -> TransitRoute:
        try:
            return self._routes[route_id]
        except IndexError:
            raise ValidationError(f"no route {route_id}") from None

    def random_route(self, rng: np.random.Generator) -> TransitRoute:
        return self._routes[int(rng.integers(0, len(self._routes)))]


def build_transit_system(
    network: RoadNetwork,
    rng: np.random.Generator,
    n_routes: int = 6,
    min_stops: int = 5,
    headway_s: float = 600.0,
    speed_kph: float = 35.0,
) -> TransitSystem:
    """Routes as shortest road paths between random distant intersections."""
    if n_routes < 1:
        raise ValidationError(f"n_routes must be >= 1, got {n_routes}")
    if min_stops < 2:
        raise ValidationError(f"min_stops must be >= 2, got {min_stops}")
    if headway_s <= 0 or speed_kph <= 0:
        raise ValidationError("headway_s and speed_kph must be positive")
    speed = kph_to_mps(speed_kph)
    routes: list[TransitRoute] = []
    attempts = 0
    while len(routes) < n_routes:
        attempts += 1
        if attempts > 50 * n_routes:
            raise ValidationError(
                "could not find enough long routes; lower min_stops"
            )
        a, b = rng.integers(0, network.n_nodes, size=2)
        if a == b:
            continue
        nodes = network.shortest_path_nodes(int(a), int(b))
        if len(nodes) < min_stops:
            continue
        stops = network.node_positions[nodes]
        leg_m = np.hypot(
            np.diff(stops[:, 0]), np.diff(stops[:, 1])
        )
        routes.append(
            TransitRoute(
                route_id=len(routes),
                stops=stops.copy(),
                leg_seconds=leg_m / speed,
                headway_s=float(headway_s),
                phase_s=float(rng.uniform(0.0, headway_s)),
            )
        )
    return TransitSystem(routes)


@dataclass(frozen=True)
class TransitCommute:
    """One agent's transit life: continuous truth + discrete tap events."""

    path: GroundTruthPath
    taps: tuple[Record, ...]

    def tap_trajectory(self, traj_id: object) -> Trajectory:
        """The commuting-card trajectory: one record per tap."""
        return Trajectory.from_records(self.taps, traj_id, sort=True)


def build_transit_commuter(
    city: CityModel,
    transit: TransitSystem,
    duration_s: float,
    rng: np.random.Generator,
    tap_on_alight: bool = True,
    home_spread_m: float = 400.0,
) -> TransitCommute:
    """A commuter who rides one transit route between home and work.

    Each simulated day: walk from home to the boarding stop, wait for
    the next departure (tap on boarding), ride to the alighting stop
    (tap on alighting when distance-based fares apply), walk to work;
    mirror the trip in the evening.  Home and work sit near the two
    ends of a randomly chosen route.
    """
    if duration_s <= 0:
        raise ValidationError("duration_s must be positive")
    route = transit.random_route(rng)
    n = route.n_stops
    board = int(rng.integers(0, n // 2))
    alight = int(rng.integers(max(board + 1, n - n // 2), n))
    home = route.stops[board] + rng.normal(0.0, home_spread_m, 2)
    work = route.stops[alight] + rng.normal(0.0, home_spread_m, 2)
    home = city.bbox.clip(*home)
    work = city.bbox.clip(*work)
    walk = kph_to_mps(WALK_SPEED_KPH)

    builder = _WaypointBuilder.start(0.0, *home)
    taps: list[Record] = []
    end = duration_s
    n_days = int(np.ceil(duration_s / SECONDS_PER_DAY))

    def ride(from_stop: int, to_stop: int) -> None:
        """Walk to from_stop, wait, ride to to_stop (either direction)."""
        stop_xy = route.stops[from_stop]
        builder.travel_to(float(stop_xy[0]), float(stop_xy[1]), walk)
        # Both directions run on the same headway grid (anchored at the
        # boarding stop for the forward direction; the reverse service
        # is approximated by the same grid).
        depart = max(
            route.departure_after(min(from_stop, to_stop), builder.now),
            builder.now,
        )
        builder.dwell_until(depart)
        taps.append(Record(builder.now, float(stop_xy[0]), float(stop_xy[1])))
        lo, hi = sorted((from_stop, to_stop))
        legs = route.leg_seconds[lo:hi]
        if from_stop < to_stop:
            ordered = list(range(lo, hi + 1))
            cumulative = np.concatenate([[0.0], np.cumsum(legs)])
        else:
            ordered = list(range(hi, lo - 1, -1))
            cumulative = np.concatenate([[0.0], np.cumsum(legs[::-1])])
        for offset, stop_idx in zip(cumulative[1:], ordered[1:]):
            xy = route.stops[stop_idx]
            builder.ts.append(depart + float(offset))
            builder.xs.append(float(xy[0]))
            builder.ys.append(float(xy[1]))
        if tap_on_alight:
            last = route.stops[ordered[-1]]
            taps.append(Record(builder.now, float(last[0]), float(last[1])))

    for day in range(n_days):
        day_start = day * SECONDS_PER_DAY
        leave_home = day_start + 8.0 * SECONDS_PER_HOUR + float(
            rng.normal(0.0, 0.5 * SECONDS_PER_HOUR)
        )
        leave_work = day_start + 18.0 * SECONDS_PER_HOUR + float(
            rng.normal(0.0, 0.5 * SECONDS_PER_HOUR)
        )
        builder.dwell_until(min(max(leave_home, builder.now), end))
        if builder.now >= end:
            break
        ride(board, alight)
        builder.travel_to(float(work[0]), float(work[1]), walk)
        builder.dwell_until(min(max(leave_work, builder.now), end))
        if builder.now >= end:
            break
        ride(alight, board)
        builder.travel_to(float(home[0]), float(home[1]), walk)
    builder.dwell_until(end)
    taps = [t for t in taps if t.t <= end]
    return TransitCommute(path=builder.build(), taps=tuple(taps))


def make_transit_scenario(
    city: CityModel,
    transit: TransitSystem,
    n_agents: int,
    duration_s: float,
    rng: np.random.Generator,
    cdr_service: ObservationService,
    min_records: int = 2,
) -> ScenarioPair:
    """The paper's flagship pairing: card taps (P) vs CDR pings (Q)."""
    if n_agents < 1:
        raise ValidationError("n_agents must be >= 1")
    p_db = TrajectoryDatabase(name="card-taps")
    q_db = TrajectoryDatabase(name=cdr_service.name)
    truth: dict[object, object] = {}
    for i in range(n_agents):
        commute = build_transit_commuter(city, transit, duration_s, rng)
        p_id, q_id = f"card{i}", f"sub{i}"
        taps = commute.tap_trajectory(p_id)
        pings = cdr_service.observe(commute.path, rng, traj_id=q_id)
        if len(taps) > 0:
            p_db.add(taps)
        if len(pings) > 0:
            q_db.add(pings)
        if len(taps) >= min_records and len(pings) >= min_records:
            truth[p_id] = q_id
    if len(p_db) == 0 or len(q_db) == 0:
        raise ValidationError("transit scenario produced an empty database")
    return ScenarioPair(p_db, q_db, truth)
