"""Scenario-level sparsity and duration transforms.

The paper's evaluation sweeps two knobs over fixed raw data: the
*sampling rate* (fraction of records kept) and the *duration* (prefix of
the observation window kept).  These helpers apply either knob to a
whole :class:`~repro.synth.scenario.ScenarioPair`, re-deriving the
ground truth so queries whose trajectory became unusably short drop out,
exactly as in the paper's Table I derivation of SA..SF / TA..TF.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.synth.scenario import ScenarioPair


def _rebuild_truth(pair: ScenarioPair, min_records: int) -> dict[object, object]:
    truth: dict[object, object] = {}
    for p_id, q_id in pair.truth.items():
        p_traj = pair.p_db.get(p_id)
        q_traj = pair.q_db.get(q_id)
        if p_traj is None or q_traj is None:
            continue
        if len(p_traj) >= min_records and len(q_traj) >= min_records:
            truth[p_id] = q_id
    return truth


def downsample_pair(
    pair: ScenarioPair,
    rate_p: float,
    rate_q: float,
    rng: np.random.Generator,
    min_records: int = 2,
) -> ScenarioPair:
    """Down-sample both databases at independent rates.

    ``rate_p`` / ``rate_q`` are record-keeping probabilities in
    ``(0, 1]``; trajectories losing all records are removed and the
    ground truth filtered accordingly.
    """
    for label, rate in (("rate_p", rate_p), ("rate_q", rate_q)):
        if not 0.0 < rate <= 1.0:
            raise ValidationError(f"{label} must be in (0, 1], got {rate}")
    thinned = ScenarioPair(
        p_db=pair.p_db.downsample(rate_p, rng),
        q_db=pair.q_db.downsample(rate_q, rng),
        truth=pair.truth,
    )
    return ScenarioPair(
        thinned.p_db, thinned.q_db, _rebuild_truth(thinned, min_records)
    )


def trim_pair(
    pair: ScenarioPair, duration_s: float, min_records: int = 2
) -> ScenarioPair:
    """Trim every trajectory to its first ``duration_s`` seconds."""
    if duration_s <= 0:
        raise ValidationError(f"duration_s must be positive, got {duration_s}")
    trimmed = ScenarioPair(
        p_db=pair.p_db.head_duration(duration_s),
        q_db=pair.q_db.head_duration(duration_s),
        truth=pair.truth,
    )
    return ScenarioPair(
        trimmed.p_db, trimmed.q_db, _rebuild_truth(trimmed, min_records)
    )
