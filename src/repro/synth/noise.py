"""Observation noise models.

Each service distorts the agent's true position in its own way (paper
Section I, "Inaccuracy"): GPS-based services add metre-scale jitter,
CDR-based services report the serving cell tower's location.  A noise
model is a callable object applied to arrays of true coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.synth.city import CityModel


class NoiseModel:
    """Interface: transform true coordinates into observed coordinates."""

    def apply(
        self, xs: np.ndarray, ys: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class NoNoise(NoiseModel):
    """Perfect observation (used in tests and ablations)."""

    def apply(
        self, xs: np.ndarray, ys: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(xs, dtype=np.float64), np.asarray(ys, dtype=np.float64)

    def __repr__(self) -> str:
        return "NoNoise()"


class GaussianNoise(NoiseModel):
    """Isotropic Gaussian jitter — GPS-style inaccuracy.

    Parameters
    ----------
    sigma_m:
        Standard deviation per axis in metres.
    """

    def __init__(self, sigma_m: float) -> None:
        if sigma_m < 0:
            raise ValidationError(f"sigma_m must be >= 0, got {sigma_m}")
        self._sigma = float(sigma_m)

    @property
    def sigma_m(self) -> float:
        return self._sigma

    def apply(
        self, xs: np.ndarray, ys: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if self._sigma == 0:
            return xs, ys
        return (
            xs + rng.normal(0.0, self._sigma, size=xs.shape),
            ys + rng.normal(0.0, self._sigma, size=ys.shape),
        )

    def __repr__(self) -> str:
        return f"GaussianNoise(sigma_m={self._sigma})"


class TowerSnapNoise(NoiseModel):
    """CDR-style localisation: report the nearest cell tower's position.

    "The user location in CDR data is usually the location of a nearby
    cell tower, which can be hundreds of meters away from the real
    user's location."
    """

    def __init__(self, city: CityModel) -> None:
        self._city = city

    def apply(
        self, xs: np.ndarray, ys: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0:
            return xs, ys
        towers = self._city.nearest_tower(xs, ys)
        return towers[:, 0].copy(), towers[:, 1].copy()

    def __repr__(self) -> str:
        return "TowerSnapNoise()"
