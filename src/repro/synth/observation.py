"""Observation services: how a provider samples an agent's motion.

An :class:`ObservationService` models one data-collecting service
(telco, transit operator, taxi dispatcher, check-in platform).  Its
access pattern is a Poisson process — exactly the Section VI model —
optionally modulated by a day/night intensity profile, and its location
readings pass through a :class:`~repro.synth.noise.NoiseModel`.
"""

from __future__ import annotations

import numpy as np

from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.units import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.stats.poisson_process import (
    sample_inhomogeneous_poisson,
    sample_poisson_process,
)
from repro.synth.mobility import GroundTruthPath
from repro.synth.noise import NoiseModel, NoNoise


class ObservationService:
    """One service observing agents at Poisson-random instants.

    Parameters
    ----------
    name:
        Label for the produced database (e.g. ``"CDR"``, ``"transit"``).
    rate_per_hour:
        Mean observations per hour per agent (the Section VI ``lambda``
        expressed per hour).
    noise:
        Location distortion applied to every reading.
    day_fraction:
        When not ``None``, the Poisson intensity is modulated so that
        this fraction of events falls in the 07:00-23:00 window (most
        human service usage is diurnal); ``None`` keeps the process
        homogeneous.
    burst_mean:
        When > 1, events arrive in bursts (a Neyman-Scott cluster
        process): Poisson "session starts" each spawn a geometric
        number of events with mean ``burst_mean``, spread over
        ``burst_span_s``.  The overall mean rate is preserved.  Bursty
        usage violates Section VI's Poisson assumption — useful for
        robustness studies.
    burst_span_s:
        Mean within-burst spread in seconds.
    rate_dispersion:
        When > 0, each observed agent gets a private rate multiplier
        drawn from a Gamma distribution with unit mean and this squared
        coefficient of variation — heavy users and light users instead
        of a homogeneous population.
    """

    def __init__(
        self,
        name: str,
        rate_per_hour: float,
        noise: NoiseModel | None = None,
        day_fraction: float | None = None,
        burst_mean: float = 1.0,
        burst_span_s: float = 300.0,
        rate_dispersion: float = 0.0,
    ) -> None:
        if rate_per_hour <= 0:
            raise ValidationError(
                f"rate_per_hour must be positive, got {rate_per_hour}"
            )
        if day_fraction is not None and not 0.0 < day_fraction <= 1.0:
            raise ValidationError(
                f"day_fraction must be in (0, 1], got {day_fraction}"
            )
        if burst_mean < 1.0:
            raise ValidationError(f"burst_mean must be >= 1, got {burst_mean}")
        if burst_span_s <= 0:
            raise ValidationError(
                f"burst_span_s must be positive, got {burst_span_s}"
            )
        if rate_dispersion < 0:
            raise ValidationError(
                f"rate_dispersion must be >= 0, got {rate_dispersion}"
            )
        self._name = name
        self._rate_per_s = float(rate_per_hour) / SECONDS_PER_HOUR
        self._noise = noise if noise is not None else NoNoise()
        self._day_fraction = day_fraction
        self._burst_mean = float(burst_mean)
        self._burst_span_s = float(burst_span_s)
        self._rate_dispersion = float(rate_dispersion)

    @property
    def name(self) -> str:
        return self._name

    @property
    def rate_per_hour(self) -> float:
        return self._rate_per_s * SECONDS_PER_HOUR

    @property
    def noise(self) -> NoiseModel:
        return self._noise

    def _effective_rate(self, rng: np.random.Generator) -> float:
        """This observation's base rate, with optional agent dispersion."""
        rate = self._rate_per_s
        if self._rate_dispersion > 0:
            # Gamma with unit mean and variance = rate_dispersion.
            shape = 1.0 / self._rate_dispersion
            rate *= float(rng.gamma(shape, 1.0 / shape))
        return rate

    def _burstify(
        self,
        session_starts: np.ndarray,
        start: float,
        duration: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Expand session starts into geometric event bursts."""
        events: list[np.ndarray] = []
        for t0 in session_starts:
            size = int(rng.geometric(1.0 / self._burst_mean))
            offsets = np.concatenate(
                [[0.0], rng.exponential(self._burst_span_s, size - 1)]
            ) if size > 1 else np.array([0.0])
            events.append(t0 + np.cumsum(offsets))
        if not events:
            return np.empty(0, dtype=np.float64)
        merged = np.concatenate(events)
        merged = merged[(merged >= start) & (merged < start + duration)]
        merged.sort()
        return merged

    def _sample_times(
        self, start: float, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        rate = self._effective_rate(rng)
        if self._burst_mean > 1.0:
            session_rate = rate / self._burst_mean
            starts = sample_poisson_process(
                session_rate, duration, rng, start=start
            )
            return self._burstify(starts, start, duration, rng)
        if self._day_fraction is None:
            return sample_poisson_process(rate, duration, rng, start=start)
        # Piecewise-constant diurnal profile: the 07:00-23:00 window (16 h)
        # carries day_fraction of the mass, the night the remainder, with
        # the overall mean rate preserved.
        day_hours, night_hours = 16.0, 8.0
        day_rate = rate * self._day_fraction * 24.0 / day_hours
        night_rate = rate * (1.0 - self._day_fraction) * 24.0 / night_hours
        max_rate = max(day_rate, night_rate)

        def rate_fn(times: np.ndarray) -> np.ndarray:
            hour_of_day = (np.asarray(times) % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            is_day = (hour_of_day >= 7.0) & (hour_of_day < 23.0)
            return np.where(is_day, day_rate, night_rate)

        times = sample_inhomogeneous_poisson(rate_fn, max_rate, duration, rng, start=start)
        return times

    def observe(
        self,
        path: GroundTruthPath,
        rng: np.random.Generator,
        traj_id: object = None,
    ) -> Trajectory:
        """Sample one agent's path into an observed trajectory.

        Observation times are drawn over the path's time window; true
        positions are interpolated from the path and passed through the
        service's noise model.
        """
        times = self._sample_times(path.start_time, path.duration, rng)
        xs, ys = path.position_at(times)
        noisy_x, noisy_y = self._noise.apply(xs, ys, rng)
        return Trajectory(times, noisy_x, noisy_y, traj_id)

    def __repr__(self) -> str:
        return (
            f"ObservationService(name={self._name!r}, "
            f"rate_per_hour={self.rate_per_hour:.3g}, noise={self._noise!r})"
        )
