"""Synthetic data substrate.

The paper evaluates on proprietary Singapore taxi databases and on the
T-Drive GPS corpus; neither is redistributable, so this package builds
the closest synthetic equivalent (see DESIGN.md, "Substitutions"):

* a planar :class:`~repro.synth.city.CityModel` with clustered POIs and
  a jittered cell-tower grid;
* per-agent continuous ground-truth motion
  (:mod:`repro.synth.mobility`) bounded by a true travel speed;
* two independent Poisson-sampled *observation services* with
  per-service noise (:mod:`repro.synth.observation`) producing the
  paired trajectory databases; and
* the T-Drive-style record-split protocol
  (:func:`~repro.synth.scenario.make_split_databases`).
"""

from repro.synth.city import CityModel
from repro.synth.mobility import (
    GroundTruthPath,
    build_commuter_path,
    build_taxi_path,
)
from repro.synth.noise import GaussianNoise, NoNoise, TowerSnapNoise
from repro.synth.observation import ObservationService
from repro.synth.population import Agent, generate_population
from repro.synth.scenario import (
    ScenarioPair,
    make_paired_databases,
    make_split_databases,
)
from repro.synth.downsample import downsample_pair, trim_pair
from repro.synth.roads import (
    RoadNetwork,
    build_road_network,
    build_road_taxi_path,
)
from repro.synth.transit import (
    TransitSystem,
    build_transit_commuter,
    build_transit_system,
    make_transit_scenario,
)

__all__ = [
    "Agent",
    "CityModel",
    "GaussianNoise",
    "GroundTruthPath",
    "NoNoise",
    "ObservationService",
    "RoadNetwork",
    "ScenarioPair",
    "TowerSnapNoise",
    "TransitSystem",
    "build_commuter_path",
    "build_road_network",
    "build_road_taxi_path",
    "build_taxi_path",
    "build_transit_commuter",
    "build_transit_system",
    "downsample_pair",
    "generate_population",
    "make_paired_databases",
    "make_split_databases",
    "make_transit_scenario",
    "trim_pair",
]
