"""Populations of simulated agents."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.synth.city import CityModel
from repro.synth.mobility import (
    GroundTruthPath,
    build_commuter_path,
    build_taxi_path,
)

MOBILITY_STYLES = ("taxi", "commuter", "road-taxi")


@dataclass(frozen=True)
class Agent:
    """One simulated person/vehicle with its ground-truth motion."""

    agent_id: int
    path: GroundTruthPath


def generate_population(
    city: CityModel,
    n_agents: int,
    duration_s: float,
    rng: np.random.Generator,
    mobility: str = "taxi",
    **mobility_kwargs,
) -> list[Agent]:
    """``n_agents`` agents with independent paths over ``[0, duration_s)``.

    Parameters
    ----------
    mobility:
        ``"taxi"`` (continuous POI wandering, straight-line travel),
        ``"commuter"`` (home/work schedule), or ``"road-taxi"`` (POI
        wandering along a generated road network's shortest paths).
    mobility_kwargs:
        Forwarded to the path builder (speed range, dwell times, ...).
    """
    if n_agents < 1:
        raise ValidationError(f"n_agents must be >= 1, got {n_agents}")
    if mobility not in MOBILITY_STYLES:
        raise ValidationError(
            f"unknown mobility {mobility!r}; known: {MOBILITY_STYLES}"
        )
    if mobility == "road-taxi":
        from repro.synth.roads import build_road_network, build_road_taxi_path

        network = build_road_network(city, rng)
        return [
            Agent(
                agent_id=i,
                path=build_road_taxi_path(
                    city, network, duration_s, rng, **mobility_kwargs
                ),
            )
            for i in range(n_agents)
        ]
    builder = build_taxi_path if mobility == "taxi" else build_commuter_path
    return [
        Agent(agent_id=i, path=builder(city, duration_s, rng, **mobility_kwargs))
        for i in range(n_agents)
    ]
