"""The streaming pipeline glue between the store and a serving daemon.

:class:`StreamRuntime` owns the per-daemon streaming state: the store's
:class:`~repro.stream.deltas.DeltaLog`, the
:class:`~repro.stream.standing.StandingQueryRegistry`, and the
background-merge policy.  The service layer calls exactly these hooks:

* :meth:`append_flush` — appends an ingest session's record deltas to
  the store **and** runs the incremental pipeline (delta block, pool
  refresh, targeted profile-cache invalidation, standing-query
  re-scoring) atomically under the runtime locks, so a concurrent
  flush or eviction can never stamp a delta block with another
  commit's generation.  (:meth:`after_flush` is the low-level form for
  callers that already appended — single-threaded tests and tools.)
* :meth:`evict_before` — sliding-window eviction.  Raises the store
  watermark, records the eviction in the delta log (keeping the union
  view's generation coverage contiguous), then refreshes/invalidates/
  re-scores exactly like a flush.
* :meth:`maybe_merge` — folds the delta log into the main index once
  enough blocks accumulated (the daemon's sweep task calls this off
  the event loop; ``ftl store index --incremental`` is the CLI form).

All hooks run under one re-entrant lock so store appends, log writes,
pool refreshes and merges never interleave; the hooks additionally
take the (injectable) engine lock that serialises scoring against the
daemon's batch thread, always engine lock first, runtime lock second.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.geo.units import kph_to_mps
from repro.stream.deltas import DeltaLog, merge_index_deltas
from repro.stream.standing import StandingQueryRegistry

_LOG = logging.getLogger("ftl.stream")

#: Delta blocks accumulated before the background merge folds them.
DEFAULT_MERGE_MIN_BLOCKS = 4


class StreamRuntime:
    """Continuous-linkage state for one daemon over one store."""

    def __init__(
        self,
        store,
        engine,
        pool: list,
        options,
        metrics=None,
        clock=time.monotonic,
        scorer=None,
        engine_lock=None,
        merge_min_blocks: int = DEFAULT_MERGE_MIN_BLOCKS,
    ) -> None:
        self._store = store
        self._engine = engine
        self._pool = pool
        self._metrics = metrics
        self._clock = clock
        self._lock = threading.RLock()
        # Serialises scoring against the daemon's batch thread; always
        # taken *before* the runtime lock (consistent order, no deadlock).
        self._engine_lock = (
            engine_lock if engine_lock is not None else threading.RLock()
        )
        self._merge_min_blocks = int(merge_min_blocks)
        self.delta_log = DeltaLog(store)
        self._params = self._resolve_params()
        self.registry = StandingQueryRegistry(
            engine,
            pool,
            options,
            horizon_s=engine.config.horizon_s,
            metrics=metrics,
            clock=clock,
            scorer=scorer,
        )
        if metrics is not None:
            # Pre-register so /metrics exposes the empty families before
            # the first flush (the CI smoke asserts on them).
            metrics.histogram("standing_staleness")
            metrics.counter("standing_rescored_pairs_total")
            metrics.counter("standing_full_pairs_total")
            metrics.counter("stream_flushes_total")
            metrics.counter("stream_evictions_total")
            metrics.counter("stream_delta_merges_total")

    def _resolve_params(self) -> dict:
        """Delta-block build parameters: the main index's, or defaults.

        Blocks must probe identically to the main index, so its
        persisted parameters win when one exists; otherwise the engine
        config's ``Vmax`` and horizon give the same conservative
        defaults ``ftl store index`` would use.
        """
        from repro.store.format import INDEX_DIR
        from repro.store.stindex import SpatioTemporalIndex

        index_dir = self._store.path / INDEX_DIR
        if (index_dir / "meta.json").is_file():
            return SpatioTemporalIndex.load_params(index_dir)
        config = self._engine.config
        reach_gap_s = float(config.horizon_s)
        return {
            "cell_size_m": kph_to_mps(config.vmax_kph) * reach_gap_s,
            "vmax_kph": float(config.vmax_kph),
            "reach_gap_s": reach_gap_s,
        }

    # ------------------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        return self._lock

    def n_delta_blocks(self) -> int:
        return len(self.delta_log.block_dirs())

    def swap_engine(self, engine) -> None:
        """Rebind the scoring engine after a model hot-swap.

        The caller must hold the daemon's engine lock with the batcher
        drained (the admin hot-swap path does), so no scoring is in
        flight; only the runtime and registry locks are taken here —
        the engine lock is a plain ``Lock`` and must not be re-taken.
        Delta-block build parameters are *not* re-resolved: blocks must
        keep probing identically to the persisted main index regardless
        of which model pair scores the results.
        """
        with self._lock:
            self._engine = engine
            self.registry.swap_engine(engine)

    def gauges(self) -> dict:
        """Streaming gauges merged into the /metrics exposition."""
        return {
            "standing_queries": float(len(self.registry)),
            "index_delta_blocks": float(self.n_delta_blocks()),
        }

    def _refresh(self, changed_ids) -> None:
        self._pool[:] = list(self._store.load())
        self._engine.invalidate_profiles(changed_ids)
        self.registry.refresh_pool_view()
        if self._metrics is not None:
            self._metrics.inc("pool_refreshes_total")

    # ------------------------------------------------------------------
    # Standing-query surface (engine-lock wrapped)
    # ------------------------------------------------------------------
    def register_query(self, trajectory, query_id=None, options=None) -> dict:
        with self._engine_lock:
            return self.registry.register(
                trajectory, query_id=query_id, options=options
            )

    def unregister_query(self, query_id) -> bool:
        return self.registry.unregister(query_id)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def append_flush(self, deltas) -> tuple[int, str | None]:
        """Append ``deltas`` to the store and run the flush pipeline.

        The store append and the matching delta-block write happen
        under one critical section, so concurrent session flushes (or
        a racing :meth:`evict_before`) can never stamp a block with
        another commit's generation or leave a coverage gap in the
        delta log.  Returns ``(records appended, new segment dirname
        or None when nothing was written)``; a failed store append
        propagates with nothing committed.
        """
        live = [t for t in deltas if len(t)]
        started = self._clock()
        with self._engine_lock, self._lock:
            flushed = self._store.append(deltas)
            if not flushed:
                return 0, None
            segment = self._store.manifest.segments[-1].dirname
            try:
                self._flush_pipeline(live, self._store.generation, started)
            except Exception:  # noqa: BLE001 - records ARE persisted
                # The append committed, so the served state must stay
                # consistent even though the delta block is missing
                # (the union view reports the coverage gap as stale and
                # a rebuild heals it).  Refresh the pool and re-score
                # the flushed ids conservatively, then keep serving.
                _LOG.warning(
                    "stream flush pipeline failed after store append",
                    exc_info=True,
                )
                changed = [str(t.traj_id) for t in live]
                self._refresh(changed)
                self.registry.apply_update(
                    evicted_ids=changed, started_s=started
                )
                if self._metrics is not None:
                    self._metrics.inc("stream_flush_pipeline_errors_total")
            return flushed, segment

    def after_flush(self, deltas, generation: int | None = None) -> int:
        """Run the incremental pipeline for freshly appended deltas.

        The store append already committed; ``generation`` is the
        generation that append produced (defaults to the store's
        current one, which is only safe when the caller serialises
        flushes itself — the service layer uses :meth:`append_flush`
        instead).  Writes the matching delta block, refreshes the pool
        to the merged view, drops stale cached profiles for exactly
        the flushed ids, and re-scores affected standing-query pairs.
        Returns the number of pairs re-scored.
        """
        live = [t for t in deltas if len(t)]
        if not live:
            return 0
        started = self._clock()
        with self._engine_lock, self._lock:
            if generation is None:
                generation = self._store.generation
            return self._flush_pipeline(live, generation, started)

    def _flush_pipeline(self, live, generation: int, started: float) -> int:
        """Delta block + refresh + re-score; caller holds both locks."""
        block = self.delta_log.append_block(
            live, generation=generation, **self._params
        )
        self._refresh([str(t.traj_id) for t in live])
        rescored = self.registry.apply_update(block=block, started_s=started)
        if self._metrics is not None:
            self._metrics.inc("stream_flushes_total")
        return rescored

    def evict_before(self, cutoff_t: float) -> int:
        """Slide the window: evict records older than ``cutoff_t``.

        Returns the number of records newly masked out of the store.
        A no-op (no generation bump, no log entry) when the watermark
        already covers the cutoff.
        """
        with self._engine_lock, self._lock:
            affected = [
                str(t.traj_id) for t in self._pool
                if len(t) and float(t.ts[0]) < cutoff_t
            ]
            started = self._clock()
            before = self._store.generation
            evicted = self._store.expire_before(cutoff_t)
            if self._store.generation == before:
                return 0
            self.delta_log.record_eviction(
                self._store.generation, cutoff_t
            )
            self._refresh(affected)
            self.registry.apply_update(
                evicted_ids=affected, started_s=started
            )
            if self._metrics is not None:
                self._metrics.inc("stream_evictions_total")
                self._metrics.inc("stream_evicted_records_total", evicted)
            return evicted

    def maybe_merge(self, force: bool = False) -> bool:
        """Fold the delta log into the main index when it grew enough.

        Skips silently when the store has no main index (nothing to
        fold into) or too few blocks accumulated (unless ``force``).
        """
        from repro.store.format import INDEX_DIR
        from repro.store.stindex import SpatioTemporalIndex

        with self._lock:
            index_dir = self._store.path / INDEX_DIR
            if not (index_dir / "meta.json").is_file():
                return False
            n = self.n_delta_blocks()
            current = SpatioTemporalIndex.load_generation(index_dir)
            if n == 0 and current == self._store.generation:
                return False
            if not force and n < self._merge_min_blocks:
                return False
            merge_index_deltas(self._store)
            if self._metrics is not None:
                self._metrics.inc("stream_delta_merges_total")
            return True
