"""Append-only ST-index delta blocks, the union probe, incremental merge.

The persisted :class:`~repro.store.stindex.SpatioTemporalIndex` is
stamped with the store manifest's ``generation`` and goes stale on every
append — fine for batch rebuilds, fatal for a daemon flushing ingest
sessions every few seconds.  This module keeps blocking *incremental*:

* :class:`DeltaLog` — an append-only log under ``store/index/deltas/``.
  Each ingest-session flush writes one **delta block**
  (``delta-NNNNNN/``): the same flat columnar arrays as the main index,
  built over just the flushed record deltas and stamped with the store
  generation that append produced.  Sliding-window evictions write a
  tiny ``evict-NNNNNN.json`` marker instead (eviction only removes
  records, so no index content is needed — the probe's database filter
  hides vanished trajectories).
* :class:`StreamIndexView` — the main index *plus* the delta blocks
  probed as one unit.  The view is **valid** exactly when the log
  covers every generation between the main index's stamp and the
  store's current generation; any gap (e.g. an out-of-band append)
  raises :class:`~repro.errors.StaleIndexError` just like the
  single-index path would.
* :func:`merge_index_deltas` — folds the delta blocks into the main
  index (windows are min/max-merged, cell sets unioned, postings
  rebuilt) and persists the result stamped at the current generation
  via the same atomic ``meta.json`` swap the store relies on, then
  prunes the folded log entries.  Exposed as ``ftl store index
  --incremental`` and run in the background by the serving daemon.

**Contract.**  The union probe preserves the main index's property-
tested superset contract.  The temporal screen must use each
candidate's *merged* window (min start / max end across main + blocks):
a candidate whose old and new records individually miss the query
window can still overlap it with the merged window, which is what
``TimeOverlapPrefilter`` sees after merge-on-read.  The spatial screen
is the OR of the per-structure screens — a reachable record pair lives
in *some* structure, whose dilated lookup admits it.  Windows surviving
eviction are conservative (they may still cover evicted records), which
can only admit extra candidates, never drop one.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np

from repro.core.trajectory import Trajectory
from repro.errors import StaleIndexError, StoreFormatError, ValidationError
from repro.store.format import INDEX_DIR, write_json_atomic
from repro.store.stindex import (
    SpatioTemporalIndex,
    build_index_arrays,
    invert_cell_postings,
)

#: Subdirectory of ``store/index/`` holding the delta log.
DELTAS_DIRNAME = "deltas"

_BLOCK_RE = re.compile(r"^delta-(\d{6,})$")
_EVICT_RE = re.compile(r"^evict-(\d{6,})\.json$")


class DeltaLog:
    """The append-only stream-index log of one trajectory store."""

    def __init__(self, store) -> None:
        self._store = store
        self._dir = Path(store.path) / INDEX_DIR / DELTAS_DIRNAME

    @property
    def path(self) -> Path:
        return self._dir

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def entries(self) -> list[tuple[int, str, Path]]:
        """All log entries as ``(generation, kind, path)``, oldest first.

        ``kind`` is ``"block"`` or ``"evict"``; every committed store
        generation has at most one entry (one commit per generation).
        """
        if not self._dir.is_dir():
            return []
        found: list[tuple[int, str, Path]] = []
        for child in self._dir.iterdir():
            m = _BLOCK_RE.match(child.name)
            if m and child.is_dir() and (child / "meta.json").is_file():
                found.append((int(m.group(1)), "block", child))
                continue
            m = _EVICT_RE.match(child.name)
            if m and child.is_file():
                found.append((int(m.group(1)), "evict", child))
        found.sort()
        return found

    def block_dirs(self) -> list[Path]:
        """Delta-block directories only, oldest first."""
        return [path for _gen, kind, path in self.entries() if kind == "block"]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_block(
        self,
        deltas: list[Trajectory],
        generation: int,
        cell_size_m: float,
        vmax_kph: float,
        reach_gap_s: float,
    ) -> SpatioTemporalIndex | None:
        """Index the flushed record deltas as one block at ``generation``.

        ``generation`` is the store generation the corresponding append
        committed; the block is fsynced with ``meta.json`` written last
        (the same publish-by-rename discipline as the main index), so a
        crash mid-write leaves an unreferenced directory the next merge
        sweeps up.  Returns the in-memory block (``None`` when the
        deltas hold no records) for immediate change-probing.
        """
        live = [t for t in deltas if len(t)]
        if not live:
            return None
        ids, starts, ends, cells, offsets, postings = build_index_arrays(
            live, cell_size_m
        )
        block = SpatioTemporalIndex(
            _BlockDatabase(live),
            ids,
            starts,
            ends,
            cells,
            offsets,
            postings,
            cell_size_m,
            vmax_kph,
            reach_gap_s,
        )
        block_dir = self._dir / f"delta-{int(generation):06d}"
        if block_dir.exists():
            raise ValidationError(
                f"{block_dir}: delta block already exists for generation "
                f"{generation}"
            )
        block.save(block_dir, generation=int(generation))
        return block

    def record_eviction(self, generation: int, cutoff_t: float) -> None:
        """Mark ``generation`` as a sliding-window eviction commit."""
        self._dir.mkdir(parents=True, exist_ok=True)
        write_json_atomic(
            self._dir / f"evict-{int(generation):06d}.json",
            {"generation": int(generation), "cutoff_t": float(cutoff_t)},
        )

    def prune_through(self, generation: int) -> int:
        """Drop entries folded into a main index at ``generation``."""
        import shutil

        dropped = 0
        for gen, kind, path in self.entries():
            if gen <= generation:
                if kind == "block":
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    path.unlink(missing_ok=True)
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def covered_entries(self) -> list[tuple[int, str, Path]]:
        """The entries bridging the main index to the store's generation.

        Raises :class:`StaleIndexError` when no main index exists or
        when some intermediate generation has neither a delta block nor
        an eviction marker (an out-of-band append happened: the union
        view would silently miss candidates, so it must not open).
        """
        index_dir = Path(self._store.path) / INDEX_DIR
        if not (index_dir / "meta.json").is_file():
            raise StoreFormatError(
                f"{self._store.path}: no blocking index "
                f"(run build_index / `ftl store index`)"
            )
        main_gen = SpatioTemporalIndex.load_generation(index_dir)
        store_gen = self._store.generation
        wanted = {g: None for g in range(main_gen + 1, store_gen + 1)}
        kept: list[tuple[int, str, Path]] = []
        for gen, kind, path in self.entries():
            if gen in wanted and wanted[gen] is None:
                wanted[gen] = kind
                kept.append((gen, kind, path))
        missing = [g for g, kind in wanted.items() if kind is None]
        if missing:
            raise StaleIndexError(
                f"{index_dir}: delta log does not cover store generation"
                f"(s) {missing} (main index at {main_gen}, store at "
                f"{store_gen}); rebuild with build_index() or re-run the "
                f"flush pipeline"
            )
        return kept


class _BlockDatabase:
    """Minimal id->trajectory mapping backing an in-memory delta block."""

    def __init__(self, trajectories: list[Trajectory]) -> None:
        self._by_id = {str(t.traj_id): t for t in trajectories}

    def __contains__(self, traj_id) -> bool:
        return str(traj_id) in self._by_id

    def __getitem__(self, traj_id) -> Trajectory:
        return self._by_id[str(traj_id)]

    def __iter__(self):
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)


class StreamIndexView:
    """The main index unioned with its delta blocks, probed as one.

    Open with :meth:`open`; probes mirror the
    :class:`SpatioTemporalIndex` query surface.  Candidates fully aged
    out by the eviction watermark are filtered at probe time (their
    rows stay in the main index until the next merge or rebuild).
    """

    def __init__(
        self,
        db,
        structures: list[SpatioTemporalIndex],
        ids: list[str],
        starts: np.ndarray,
        ends: np.ndarray,
        rowmaps: list[np.ndarray],
        present: np.ndarray,
    ) -> None:
        self._db = db
        self._structures = structures
        self._ids = ids
        self._starts = starts
        self._ends = ends
        self._rowmaps = rowmaps
        self._present = present

    @classmethod
    def open(cls, store, db=None) -> "StreamIndexView":
        """Open the store's main index plus every covering delta block.

        ``db`` defaults to ``store.load()``; pass a pre-loaded database
        to share the pool the engine already serves from.
        """
        log = DeltaLog(store)
        covered = log.covered_entries()
        index_dir = Path(store.path) / INDEX_DIR
        if db is None:
            db = store.load()
        main = SpatioTemporalIndex.open(
            index_dir, db, expected_generation=None, strict_ids=False
        )
        params = main.params()
        structures = [main]
        for _gen, kind, path in covered:
            if kind != "block":
                continue
            block = SpatioTemporalIndex.open(
                path, db, expected_generation=None, strict_ids=False
            )
            if block.params() != params:
                raise StaleIndexError(
                    f"{path}: delta block parameters {block.params()} differ "
                    f"from the main index {params}; rebuild the index"
                )
            structures.append(block)
        ids: list[str] = []
        pos: dict[str, int] = {}
        starts_parts: list[float] = []
        ends_parts: list[float] = []
        rowmaps: list[np.ndarray] = []
        starts = ends = None
        for s in structures:
            s_starts, s_ends = s.windows()
            rows = np.empty(len(s.id_list), dtype=np.int64)
            for j, sid in enumerate(s.id_list):
                at = pos.get(sid)
                if at is None:
                    at = pos[sid] = len(ids)
                    ids.append(sid)
                    starts_parts.append(float(s_starts[j]))
                    ends_parts.append(float(s_ends[j]))
                else:
                    starts_parts[at] = min(starts_parts[at], float(s_starts[j]))
                    ends_parts[at] = max(ends_parts[at], float(s_ends[j]))
                rows[j] = at
            rowmaps.append(rows)
        starts = np.asarray(starts_parts, dtype=np.float64)
        ends = np.asarray(ends_parts, dtype=np.float64)
        present = np.fromiter(
            (sid in db for sid in ids), dtype=bool, count=len(ids)
        )
        return cls(db, structures, ids, starts, ends, rowmaps, present)

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self._structures) - 1

    def __len__(self) -> int:
        return int(self._present.sum())

    def _mask(self, query: Trajectory, min_overlap_s: float) -> np.ndarray:
        overlap = np.minimum(self._ends, query.end_time) - np.maximum(
            self._starts, query.start_time
        )
        keep = overlap >= min_overlap_s
        spatial = np.zeros(len(self._ids), dtype=bool)
        for s, rows in zip(self._structures, self._rowmaps):
            # Coarse per-block screen first: each block's bounding
            # cells are recorded in its meta at flush time, so a block
            # provably outside the query's dilated reach is skipped
            # without probing its postings.  Exactly equivalent — a
            # screened-out block's spatial_mask is all-False — so the
            # union superset contract is untouched (the screen answers
            # True for empty / out-of-range queries, where the mask
            # falls back to keeping everything).
            if rows.size and s.overlaps_query_reach(query):
                spatial[rows] |= s.spatial_mask(query)
        return keep & spatial & self._present

    def candidates_for(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> list[Trajectory]:
        """Union-probe form of ``SpatioTemporalIndex.candidates_for``."""
        if min_overlap_s < 0:
            raise ValidationError(
                f"min_overlap_s must be >= 0, got {min_overlap_s}"
            )
        if len(query) == 0 or not self._ids:
            return []
        keep = self._mask(query, min_overlap_s)
        return [self._db[self._ids[i]] for i in np.nonzero(keep)[0]]

    def ids_for(
        self, query: Trajectory, min_overlap_s: float = 0.0
    ) -> list[object]:
        """Like :meth:`candidates_for` but returning ids only."""
        return [
            t.traj_id for t in self.candidates_for(query, min_overlap_s)
        ]


def merge_index_deltas(store) -> SpatioTemporalIndex:
    """Fold the delta log into the main index at the current generation.

    Windows are min/max-merged per candidate, cell sets unioned, and the
    posting lists rebuilt; candidates no longer in the store (fully
    evicted) are dropped.  The result is persisted over the main index —
    ``meta.json`` is written last via atomic rename, which *is* the
    generation swap readers key on — and the folded log entries are
    pruned.  A no-op returning the opened index when the log is empty
    and the main index is already current.
    """
    log = DeltaLog(store)
    covered = log.covered_entries()
    index_dir = Path(store.path) / INDEX_DIR
    main_gen = SpatioTemporalIndex.load_generation(index_dir)
    db = store.load()
    if main_gen == store.generation and not covered:
        return SpatioTemporalIndex.open(
            index_dir, db, expected_generation=store.generation
        )
    main = SpatioTemporalIndex.open(
        index_dir, db, expected_generation=None, strict_ids=False
    )
    params = main.params()
    ids: list[str] = []
    pos: dict[str, int] = {}
    starts: list[float] = []
    ends: list[float] = []
    cell_sets: list[list[np.ndarray]] = []

    def fold(structure: SpatioTemporalIndex) -> None:
        s_starts, s_ends = structure.windows()
        for j, (sid, cells) in enumerate(
            zip(structure.id_list, structure.cell_sets())
        ):
            at = pos.get(sid)
            if at is None:
                at = pos[sid] = len(ids)
                ids.append(sid)
                starts.append(float(s_starts[j]))
                ends.append(float(s_ends[j]))
                cell_sets.append([cells])
            else:
                starts[at] = min(starts[at], float(s_starts[j]))
                ends[at] = max(ends[at], float(s_ends[j]))
                cell_sets[at].append(cells)

    fold(main)
    for _gen, kind, path in covered:
        if kind != "block":
            continue
        block = SpatioTemporalIndex.open(
            path, db, expected_generation=None, strict_ids=False
        )
        if block.params() != params:
            raise StaleIndexError(
                f"{path}: delta block parameters {block.params()} differ "
                f"from the main index {params}; rebuild the index"
            )
        fold(block)

    keep = [i for i, sid in enumerate(ids) if sid in db]
    key_parts: list[np.ndarray] = []
    idx_parts: list[np.ndarray] = []
    kept_ids: list[str] = []
    kept_starts: list[float] = []
    kept_ends: list[float] = []
    for new_idx, i in enumerate(keep):
        kept_ids.append(ids[i])
        kept_starts.append(starts[i])
        kept_ends.append(ends[i])
        parts = cell_sets[i]
        uniq = parts[0] if len(parts) == 1 else np.unique(
            np.concatenate(parts)
        )
        key_parts.append(np.asarray(uniq, dtype=np.int64))
        idx_parts.append(np.full(len(uniq), new_idx, dtype=np.int64))
    cells, cell_offsets, postings = invert_cell_postings(key_parts, idx_parts)
    merged = SpatioTemporalIndex(
        db,
        kept_ids,
        np.asarray(kept_starts, dtype=np.float64),
        np.asarray(kept_ends, dtype=np.float64),
        cells,
        cell_offsets,
        postings,
        **params,
    )
    merged.save(index_dir, generation=store.generation)
    log.prune_through(store.generation)
    return merged
