"""Continuous streaming linkage: incremental indexing, eviction, watch.

The subsystem that turns the batch reproduction into a continuously
serving linker (ROADMAP item 3):

* :mod:`repro.stream.deltas` — append-only ST-index delta blocks, the
  main-index union probe, and the incremental merge.
* :mod:`repro.stream.standing` — standing queries with warm top-k
  rankings, incremental re-scoring, and ``/v1/watch`` event buffers.
* :mod:`repro.stream.runtime` — the flush/evict/merge pipeline a
  daemon drives.
"""

from repro.stream.deltas import (
    DeltaLog,
    StreamIndexView,
    merge_index_deltas,
)
from repro.stream.runtime import StreamRuntime
from repro.stream.standing import StandingQuery, StandingQueryRegistry

__all__ = [
    "DeltaLog",
    "StandingQuery",
    "StandingQueryRegistry",
    "StreamIndexView",
    "StreamRuntime",
    "merge_index_deltas",
]
