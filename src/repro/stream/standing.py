"""Standing queries: warm top-k rankings updated incrementally.

A *standing query* is a registered trajectory whose ranked candidate
list the daemon keeps warm: instead of recomputing every pair on each
``/v1/link``, the registry scores the full pool **once** at
registration and thereafter re-scores only pairs whose evidence
changed — the flushed delta block's dilated temporal probe
(:meth:`~repro.store.stindex.SpatioTemporalIndex.affected_ids`) names
the changed candidates on ingest, and the eviction pipeline names
candidates that lost records.

**Bit-identity invariant** (property-tested in ``tests/test_stream.py``):
after every update, the registry's ranking equals a from-scratch
``LinkEngine`` run over the current pool.  This holds because each
candidate's statistics depend only on (query records, candidate
records, options), the engine's rank stage is a stable sort by
``-score`` over pool order — i.e. the key ``(-score, pool_index)`` —
and the registry re-sorts its full scored set by exactly that key,
truncating to ``top_k`` only at the output edge.

Updates are fan-out events carrying monotonically increasing sequence
numbers per query; ``/v1/watch`` long-polls :meth:`wait_events` with a
``since`` cursor to resume.  A cursor older than the bounded event
buffer gets a fresh snapshot (``resync``) instead of a gap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.engine import Candidate, LinkEngine, LinkOptions, LinkRequest
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError

#: Events retained per standing query for `/v1/watch` resume.
DEFAULT_EVENT_BUFFER = 64


def _candidate_wire(c: Candidate) -> dict:
    return c.to_dict()


@dataclass
class StandingQuery:
    """One registered query and its warm full scored set."""

    query_id: str
    trajectory: Trajectory
    options: LinkOptions
    full_options: LinkOptions
    created_at: float
    seq: int = 0
    #: Full matched set (no top-k truncation), keyed by candidate id.
    scored: dict = field(default_factory=dict)
    events: deque = field(default_factory=lambda: deque(maxlen=DEFAULT_EVENT_BUFFER))
    n_updates: int = 0
    n_rescored_pairs: int = 0


class StandingQueryRegistry:
    """Thread-safe registry of standing queries for a serving daemon.

    ``pool`` is the daemon's *live* candidate list (mutated in place by
    pool refreshes); call :meth:`refresh_pool_view` after each refresh
    so rankings use current pool order.  ``scorer`` overrides how
    changed pairs are scored — the sharded supervisor routes them to
    the workers owning each candidate — and must return the engine's
    ``Candidate`` objects for exactly the matched subset; ``None``
    scores on the local engine.
    """

    def __init__(
        self,
        engine: LinkEngine,
        pool: list,
        options: LinkOptions,
        horizon_s: float,
        metrics=None,
        clock=time.monotonic,
        scorer=None,
        event_buffer: int = DEFAULT_EVENT_BUFFER,
    ) -> None:
        self._engine = engine
        self._pool = pool
        self._options = options
        self._horizon_s = float(horizon_s)
        self._metrics = metrics
        self._clock = clock
        self._scorer = scorer
        self._event_buffer = int(event_buffer)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._queries: dict[str, StandingQuery] = {}
        self._pool_by_id: dict[str, Trajectory] = {}
        self._pool_index: dict[str, int] = {}
        self._rebuild_pool_view()

    # ------------------------------------------------------------------
    # Pool view
    # ------------------------------------------------------------------
    def _rebuild_pool_view(self) -> None:
        self._pool_by_id = {str(t.traj_id): t for t in self._pool}
        self._pool_index = {
            str(t.traj_id): i for i, t in enumerate(self._pool)
        }

    def refresh_pool_view(self) -> None:
        """Re-snapshot pool order after the daemon refreshed its pool."""
        with self._lock:
            self._rebuild_pool_view()

    def swap_engine(self, engine: LinkEngine) -> None:
        """Rebind the scoring engine (model hot-swap; no scoring in flight)."""
        with self._lock:
            self._engine = engine

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)

    def counts(self) -> dict:
        """Aggregate counters for /metrics gauges."""
        with self._lock:
            return {
                "standing_queries": len(self._queries),
                "n_updates": sum(q.n_updates for q in self._queries.values()),
            }

    def summaries(self) -> list[dict]:
        with self._lock:
            return [
                {
                    "query_id": q.query_id,
                    "seq": q.seq,
                    "n_tracked": len(q.scored),
                    "top_k": q.options.top_k,
                    "n_updates": q.n_updates,
                    "n_rescored_pairs": q.n_rescored_pairs,
                    "created_at": q.created_at,
                }
                for q in self._queries.values()
            ]

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def _ranking(self, q: StandingQuery) -> list[Candidate]:
        """The engine-identical ranking from the full scored set.

        Candidates that fell out of the pool entirely (full eviction)
        are dropped lazily here; the sort key mirrors the engine's
        stable ``-score`` sort over pool order.
        """
        live = [
            c for c in q.scored.values()
            if str(c.candidate_id) in self._pool_index
        ]
        live.sort(
            key=lambda c: (-c.score, self._pool_index[str(c.candidate_id)])
        )
        if q.options.top_k is not None:
            live = live[: q.options.top_k]
        return live

    def _snapshot_locked(self, q: StandingQuery) -> dict:
        return {
            "query_id": q.query_id,
            "seq": q.seq,
            "n_tracked": len(q.scored),
            "ranking": [_candidate_wire(c) for c in self._ranking(q)],
        }

    def snapshot(self, query_id: str) -> dict:
        with self._lock:
            q = self._require(query_id)
            return self._snapshot_locked(q)

    def _require(self, query_id: str) -> StandingQuery:
        q = self._queries.get(str(query_id))
        if q is None:
            raise ValidationError(f"unknown standing query {query_id!r}")
        return q

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        trajectory: Trajectory,
        query_id: str | None = None,
        options: LinkOptions | None = None,
    ) -> dict:
        """Register (or replace) a standing query; scores the full pool.

        Returns the initial snapshot (seq 1, kind ``"snapshot"``).

        The full-pool scoring pass runs *outside* the registry lock —
        a large pool would otherwise block every concurrent
        ``/v1/watch`` poll for its duration.  Callers must hold the
        engine lock (:meth:`StreamRuntime.register_query` does), which
        already serialises the scoring against pool-mutating flush and
        eviction updates; only the install + snapshot event take the
        registry lock.
        """
        if len(trajectory) == 0:
            raise ValidationError("standing query trajectory is empty")
        qid = str(query_id if query_id is not None else trajectory.traj_id)
        opts = options if options is not None else self._options
        full_opts = opts.with_updates(top_k=None)
        result = self._engine.link_requests(
            [LinkRequest(trajectory, options=full_opts)],
            default_pool=self._pool,
        )[0]
        with self._lock:
            q = StandingQuery(
                query_id=qid,
                trajectory=trajectory,
                options=opts,
                full_options=full_opts,
                created_at=time.time(),
                events=deque(maxlen=self._event_buffer),
            )
            q.scored = {str(c.candidate_id): c for c in result.candidates}
            q.seq = 1
            self._queries[qid] = q
            if self._metrics is not None:
                self._metrics.inc(
                    "standing_full_pairs_total", len(self._pool)
                )
            event = {
                "seq": q.seq,
                "kind": "snapshot",
                "changed": [],
                "evicted": [],
                "ranking": [_candidate_wire(c) for c in self._ranking(q)],
            }
            q.events.append(event)
            self._cond.notify_all()
            return self._snapshot_locked(q)

    def close(self) -> None:
        """Wake every parked watcher; later waits return immediately.

        Called on daemon drain so long-poll threads release promptly
        instead of running out their full ``wait_ms``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def unregister(self, query_id: str) -> bool:
        with self._lock:
            gone = self._queries.pop(str(query_id), None)
            if gone is not None:
                self._cond.notify_all()
            return gone is not None

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def apply_update(
        self,
        block=None,
        evicted_ids=(),
        started_s: float | None = None,
    ) -> int:
        """Re-score only the pairs whose evidence changed.

        ``block`` is the just-flushed delta block (its dilated temporal
        probe names the candidates whose new records can alter each
        query's evidence — spatial screening is deliberately absent,
        see ``SpatioTemporalIndex.affected_ids``); ``evicted_ids`` are
        pool ids that lost records to the sliding window.  Must be
        called *after* the pool refresh and profile-cache invalidation.
        Returns the total pairs re-scored across all standing queries.
        """
        total = 0
        with self._lock:
            self._rebuild_pool_view()
            for q in self._queries.values():
                changed: dict[str, None] = {}
                if block is not None:
                    for cid in block.affected_ids(
                        q.trajectory, self._horizon_s
                    ):
                        changed.setdefault(str(cid), None)
                for cid in evicted_ids:
                    changed.setdefault(str(cid), None)
                if not changed:
                    continue
                rescore = [
                    cid for cid in changed if cid in self._pool_by_id
                ]
                vanished = [
                    cid for cid in changed if cid not in self._pool_by_id
                ]
                fresh: list[Candidate] = []
                if rescore:
                    trajs = [self._pool_by_id[cid] for cid in rescore]
                    if self._scorer is not None:
                        fresh = self._scorer(
                            q.trajectory, trajs, q.full_options, rescore
                        )
                    else:
                        fresh = list(self._engine.link_requests(
                            [LinkRequest(
                                q.trajectory,
                                candidates=tuple(trajs),
                                options=q.full_options,
                            )]
                        )[0].candidates)
                for cid in changed:
                    q.scored.pop(cid, None)
                for c in fresh:
                    q.scored[str(c.candidate_id)] = c
                q.seq += 1
                q.n_updates += 1
                q.n_rescored_pairs += len(rescore)
                total += len(rescore)
                event = {
                    "seq": q.seq,
                    "kind": "update",
                    "changed": sorted(rescore),
                    "evicted": sorted(vanished),
                    "ranking": [
                        _candidate_wire(c) for c in self._ranking(q)
                    ],
                }
                if started_s is not None:
                    staleness = max(0.0, self._clock() - started_s)
                    event["staleness_s"] = staleness
                    if self._metrics is not None:
                        self._metrics.observe(
                            "standing_staleness", staleness
                        )
                q.events.append(event)
            if self._metrics is not None and total:
                self._metrics.inc("standing_rescored_pairs_total", total)
            self._cond.notify_all()
        return total

    # ------------------------------------------------------------------
    # Watch (long-poll)
    # ------------------------------------------------------------------
    def wait_events(
        self,
        query_id: str,
        since: int = 0,
        timeout_s: float = 0.0,
    ) -> dict:
        """Events with ``seq > since``, long-polling up to ``timeout_s``.

        Returns ``{"query_id", "seq", "events", "resync"}``.  When the
        cursor predates the bounded event buffer, ``resync`` is true
        and ``events`` holds one fresh snapshot instead of a gap — the
        client re-bases and continues from the returned ``seq``.
        """
        since = int(since)
        deadline = self._clock() + max(0.0, float(timeout_s))
        with self._cond:
            q = self._require(query_id)
            while q.seq <= since and not self._closed:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                q = self._queries.get(str(query_id))
                if q is None:
                    raise ValidationError(
                        f"standing query {query_id!r} was unregistered"
                    )
            pending = [e for e in q.events if e["seq"] > since]
            covered = (
                not pending or pending[0]["seq"] == since + 1
                or since >= q.seq
            )
            if q.seq > since and not covered:
                snap = self._snapshot_locked(q)
                return {
                    "query_id": q.query_id,
                    "seq": q.seq,
                    "resync": True,
                    "events": [{
                        "seq": q.seq,
                        "kind": "snapshot",
                        "changed": [],
                        "evicted": [],
                        "ranking": snap["ranking"],
                    }],
                }
            return {
                "query_id": q.query_id,
                "seq": q.seq,
                "resync": False,
                "events": pending,
            }
