"""Named dataset configurations mirroring the paper's Table I grid."""

from repro.datasets.catalog import (
    CatalogEntry,
    build_scenario,
    catalog,
    catalog_entry,
)

__all__ = ["CatalogEntry", "build_scenario", "catalog", "catalog_entry"]
