"""The dataset catalog: named, seeded scenario configurations.

The paper derives 12 database pairs (Table I): ``SA``-``SC`` sweep the
query-side sampling rate on the Singapore taxi data at fixed 31-day
duration, ``SD``-``SF`` sweep duration at fixed rate, and ``TA``-``TF``
apply the analogous grid to the split T-Drive data.  This module defines
synthetic analogues of all twelve at two scales:

* full-scale entries (``SA`` ... ``TF``) keep the paper's durations and
  per-trajectory record counts;
* ``*-mini`` entries shrink population and duration for laptop-speed
  tests and benches while preserving the qualitative ordering (higher
  rate => better linking; longer duration => better linking).

Every entry pins a seed, so two builds of the same name produce
identical databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.geo.units import days_to_seconds
from repro.synth.city import CityModel
from repro.synth.downsample import downsample_pair, trim_pair
from repro.synth.noise import GaussianNoise, NoiseModel, NoNoise, TowerSnapNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import (
    ScenarioPair,
    make_paired_databases,
    make_split_databases,
)

PROTOCOLS = ("paired", "split", "transit")


def _parse_noise(spec: str, city: CityModel) -> NoiseModel:
    """Parse a noise spec: ``"none"``, ``"gps:<sigma_m>"`` or ``"tower"``."""
    if spec == "none":
        return NoNoise()
    if spec == "tower":
        return TowerSnapNoise(city)
    if spec.startswith("gps:"):
        try:
            sigma = float(spec.split(":", 1)[1])
        except ValueError:
            raise ValidationError(f"bad gps noise spec {spec!r}") from None
        return GaussianNoise(sigma)
    raise ValidationError(
        f"unknown noise spec {spec!r}; expected none | tower | gps:<sigma>"
    )


@dataclass(frozen=True)
class CatalogEntry:
    """One named scenario configuration.

    Attributes
    ----------
    protocol:
        ``"paired"`` — two independent observation services over the
        same agents (Singapore-style); ``"split"`` — one dense
        trajectory per agent split record-by-record (T-Drive-style).
    n_agents, duration_days, mobility:
        Population parameters.
    rate_p_per_hour, rate_q_per_hour, noise_p, noise_q:
        Paired-protocol observation parameters.
    dense_rate_per_hour, sampling_rate, trim_days:
        Split-protocol parameters: density of the pre-split trace, the
        post-split down-sampling rate, and an optional duration trim.
    seed:
        Seed of the default generator, pinning the built databases.
    """

    name: str
    protocol: str
    description: str
    n_agents: int
    duration_days: float
    mobility: str = "taxi"
    rate_p_per_hour: float | None = None
    rate_q_per_hour: float | None = None
    noise_p: str = "gps:50"
    noise_q: str = "gps:50"
    dense_rate_per_hour: float | None = None
    sampling_rate: float | None = None
    trim_days: float | None = None
    dwell_max_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValidationError(
                f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}"
            )
        if self.n_agents < 2:
            raise ValidationError("n_agents must be >= 2")
        if self.duration_days <= 0:
            raise ValidationError("duration_days must be positive")
        if self.protocol == "paired":
            if self.rate_p_per_hour is None or self.rate_q_per_hour is None:
                raise ValidationError("paired entries need both service rates")
        elif self.protocol == "split":
            if self.dense_rate_per_hour is None:
                raise ValidationError("split entries need dense_rate_per_hour")
        else:  # transit
            if self.rate_q_per_hour is None:
                raise ValidationError(
                    "transit entries need rate_q_per_hour (the CDR side)"
                )

    def build(self, rng: np.random.Generator | None = None) -> ScenarioPair:
        """Generate the scenario (deterministic when ``rng`` is omitted)."""
        if rng is None:
            rng = np.random.default_rng(self.seed)
        city = CityModel.generate(rng)
        duration_s = days_to_seconds(self.duration_days)
        if self.protocol == "transit":
            from repro.synth.roads import build_road_network
            from repro.synth.transit import (
                build_transit_system,
                make_transit_scenario,
            )

            network = build_road_network(city, rng)
            transit = build_transit_system(network, rng)
            pair = make_transit_scenario(
                city, transit, self.n_agents, duration_s, rng,
                ObservationService(
                    "CDR", self.rate_q_per_hour, _parse_noise(self.noise_q, city)
                ),
            )
            if self.trim_days is not None:
                pair = trim_pair(pair, days_to_seconds(self.trim_days))
            return pair
        mobility_kwargs = (
            {} if self.dwell_max_s is None else {"dwell_max_s": self.dwell_max_s}
        )
        agents = generate_population(
            city, self.n_agents, duration_s, rng,
            mobility=self.mobility, **mobility_kwargs,
        )
        if self.protocol == "paired":
            pair = make_paired_databases(
                agents,
                ObservationService(
                    "P", self.rate_p_per_hour, _parse_noise(self.noise_p, city)
                ),
                ObservationService(
                    "Q", self.rate_q_per_hour, _parse_noise(self.noise_q, city)
                ),
                rng,
            )
        else:
            dense = ObservationService(
                "dense", self.dense_rate_per_hour, _parse_noise(self.noise_p, city)
            )
            trajs = [
                dense.observe(agent.path, rng, traj_id=agent.agent_id)
                for agent in agents
            ]
            pair = make_split_databases(trajs, rng)
            if self.sampling_rate is not None and self.sampling_rate < 1.0:
                pair = downsample_pair(
                    pair, self.sampling_rate, self.sampling_rate, rng
                )
        if self.trim_days is not None:
            pair = trim_pair(pair, days_to_seconds(self.trim_days))
        return pair


def _s_entry(name, desc, rate_p, days, *, n_agents, rate_q, seed):
    return CatalogEntry(
        name=name,
        protocol="paired",
        description=desc,
        n_agents=n_agents,
        duration_days=days,
        rate_p_per_hour=rate_p,
        rate_q_per_hour=rate_q,
        seed=seed,
    )


def _t_entry(name, desc, sampling_rate, trim_days, *, n_agents, seed):
    return CatalogEntry(
        name=name,
        protocol="split",
        description=desc,
        n_agents=n_agents,
        duration_days=7.0,
        dense_rate_per_hour=12.0,
        noise_p="gps:30",
        sampling_rate=sampling_rate,
        trim_days=trim_days,
        seed=seed,
    )


def _build_catalog() -> dict[str, CatalogEntry]:
    entries: list[CatalogEntry] = []

    # Full-scale S-configs: the paper's rates/durations.  Record counts
    # per trajectory match Table I (|P| ~ 154/205/255 over 31 days,
    # |Q| ~ 67).
    s_full = dict(n_agents=300, rate_q=0.090, seed=11)
    entries += [
        _s_entry("SA", "S-data, lowest query rate, 31 days", 0.207, 31.0, **s_full),
        _s_entry("SB", "S-data, middle query rate, 31 days", 0.276, 31.0, **s_full),
        _s_entry("SC", "S-data, highest query rate, 31 days", 0.343, 31.0, **s_full),
        _s_entry("SD", "S-data, SC rate, 7 days", 0.343, 7.0, **s_full),
        _s_entry("SE", "S-data, SC rate, 14 days", 0.343, 14.0, **s_full),
        _s_entry("SF", "S-data, SC rate, 21 days", 0.343, 21.0, **s_full),
    ]

    # Mini S-configs: 60 agents, rates scaled up so the linking problem
    # stays in the informative regime.  The rate sweep runs on a 10-day
    # window; the duration sweep (3/5/7 days) uses the highest rate, so
    # every config is distinct, as in the paper.
    s_mini = dict(n_agents=60, rate_q=0.18, seed=11)
    entries += [
        _s_entry("SA-mini", "mini S-data, lowest rate, 10 days", 0.35, 10.0, **s_mini),
        _s_entry("SB-mini", "mini S-data, middle rate, 10 days", 0.45, 10.0, **s_mini),
        _s_entry("SC-mini", "mini S-data, highest rate, 10 days", 0.55, 10.0, **s_mini),
        _s_entry("SD-mini", "mini S-data, SC rate, 3 days", 0.55, 3.0, **s_mini),
        _s_entry("SE-mini", "mini S-data, SC rate, 5 days", 0.55, 5.0, **s_mini),
        _s_entry("SF-mini", "mini S-data, SC rate, 7 days", 0.55, 7.0, **s_mini),
    ]

    # Full-scale T-configs: split protocol at the paper's sampling
    # rates and durations.
    t_full = dict(n_agents=250, seed=23)
    entries += [
        _t_entry("TA", "T-data, rate 0.06, 7 days", 0.06, None, **t_full),
        _t_entry("TB", "T-data, rate 0.07, 7 days", 0.07, None, **t_full),
        _t_entry("TC", "T-data, rate 0.08, 7 days", 0.08, None, **t_full),
        _t_entry("TD", "T-data, rate 0.08, 2 days", 0.08, 2.0, **t_full),
        _t_entry("TE", "T-data, rate 0.08, 4 days", 0.08, 4.0, **t_full),
        _t_entry("TF", "T-data, rate 0.08, 6 days", 0.08, 6.0, **t_full),
    ]

    # Mini T-configs: 50 agents.
    t_mini = dict(n_agents=50, seed=23)
    entries += [
        _t_entry("TA-mini", "mini T-data, rate 0.05", 0.05, None, **t_mini),
        _t_entry("TB-mini", "mini T-data, rate 0.065", 0.065, None, **t_mini),
        _t_entry("TC-mini", "mini T-data, rate 0.08", 0.08, None, **t_mini),
        _t_entry("TD-mini", "mini T-data, rate 0.08, 2 days", 0.08, 2.0, **t_mini),
        _t_entry("TE-mini", "mini T-data, rate 0.08, 4 days", 0.08, 4.0, **t_mini),
        _t_entry("TF-mini", "mini T-data, rate 0.08, 6 days", 0.08, 6.0, **t_mini),
    ]

    # Dense split pairs for the Fig. 8 comparison against similarity
    # baselines (no pre-down-sampling; the precision harness applies its
    # own rate sweep).  FIG8A feeds the high-rate grid with a short,
    # dense window so the thinned sequences stay temporally dense;
    # FIG8B feeds the low-rate grid with a long, very dense window so
    # that even a 0.02 rate leaves FTL enough mutual segments — the
    # same role the paper's month-long Singapore data plays.  Longer
    # taxi dwells (25 min max) reflect the original data's stop-heavy
    # urban traces and give point-matching measures a fair shot on
    # dense data.
    def _fig8_entry(name, desc, days, dense_rate, n_agents, seed=37):
        return CatalogEntry(
            name=name,
            protocol="split",
            description=desc,
            n_agents=n_agents,
            duration_days=days,
            dense_rate_per_hour=dense_rate,
            noise_p="gps:30",
            dwell_max_s=1500.0,
            seed=seed,
        )

    # The paper's flagship pairing, modelled faithfully: anonymous card
    # taps at transit stops (P) against tower-snapped CDR pings (Q).
    entries += [
        CatalogEntry(
            name="CARD-mini",
            protocol="transit",
            description="commuting-card taps vs CDR (transit simulator)",
            n_agents=30,
            duration_days=14.0,
            rate_q_per_hour=1.1,
            noise_q="tower",
            seed=77,
        ),
    ]

    # Road-network variant of SB-mini: agents drive along a generated
    # street graph instead of straight lines, stressing the paper's
    # point that real travel exceeds the geodesic distance.
    entries += [
        CatalogEntry(
            name="SB-road-mini",
            protocol="paired",
            description="mini S-data on a road network (shortest-path travel)",
            n_agents=50,
            duration_days=7.0,
            mobility="road-taxi",
            rate_p_per_hour=0.45,
            rate_q_per_hour=0.18,
            seed=11,
        ),
    ]

    entries += [
        _fig8_entry("FIG8A", "dense 2-day split pair, high-rate grid", 2.0, 20.0, 250),
        _fig8_entry("FIG8A-mini", "mini dense split pair, high-rate grid", 2.0, 20.0, 80),
        _fig8_entry("FIG8B", "very dense 7-day split pair, low-rate grid", 7.0, 40.0, 250),
        _fig8_entry("FIG8B-mini", "mini very dense split pair, low-rate grid", 7.0, 40.0, 80),
    ]
    return {entry.name: entry for entry in entries}


_CATALOG = _build_catalog()


def catalog() -> dict[str, CatalogEntry]:
    """All catalog entries by name (a copy; mutating it is harmless)."""
    return dict(_CATALOG)


def catalog_entry(name: str) -> CatalogEntry:
    """Look up one entry; raises with the known names on a miss."""
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise ValidationError(f"unknown dataset {name!r}; known: {known}") from None


def build_scenario(
    name: str, rng: np.random.Generator | None = None
) -> ScenarioPair:
    """Build the named scenario (seed-pinned when ``rng`` is omitted)."""
    return catalog_entry(name).build(rng)
