"""Defense evaluation: linkability vs utility sweeps.

Threat model: the *query* database P is published under a defense; the
adversary holds the raw candidate database Q and is **adaptive** — it
re-fits both FTL models on the defended data before attacking (a
non-adaptive attacker, fitted on clean data, would be even weaker).
For each defense strength the sweep reports:

* **linkability** — the adversary's perceptiveness with a fixed
  Naive-Bayes prior;
* **mean candidates** — how many candidates the adversary must sift;
* the defense's spatial/temporal **distortion** (utility loss).

A good defense pushes linkability toward the random-guess floor while
keeping distortion small; the sweep quantifies that tradeoff exactly as
the paper's future-work question asks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import FTLConfig
from repro.core.models import CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.errors import ValidationError
from repro.privacy.defenses import Defense
from repro.synth.scenario import ScenarioPair


@dataclass(frozen=True)
class DefensePoint:
    """The sweep outcome at one defense strength."""

    defense: str
    strength: float
    linkability: float
    mean_candidates: float
    spatial_distortion_m: float
    temporal_distortion_s: float
    n_queries: int


def _attack(
    pair: ScenarioPair,
    config: FTLConfig,
    query_ids: Sequence[object],
    phi_r: float,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """Adaptive attacker's (perceptiveness, mean candidate count)."""
    mr = CompatibilityModel.fit_rejection([pair.p_db, pair.q_db], config)
    ma = CompatibilityModel.fit_acceptance([pair.p_db, pair.q_db], config, rng)
    matcher = NaiveBayesMatcher(mr, ma, phi_r)
    hits = 0
    returned = 0
    usable = 0
    for qid in query_ids:
        query = pair.p_db.get(qid)
        if query is None or len(query) == 0:
            continue
        usable += 1
        matches = {d.candidate_id for d in matcher.query(query, pair.q_db)}
        returned += len(matches)
        if pair.truth.get(qid) in matches:
            hits += 1
    if usable == 0:
        return 0.0, 0.0
    return hits / usable, returned / usable


def evaluate_defense_sweep(
    pair: ScenarioPair,
    defenses: Sequence[Defense],
    config: FTLConfig,
    rng: np.random.Generator,
    n_queries: int = 30,
    phi_r: float = 0.2,
) -> list[DefensePoint]:
    """Attack the published data under each defense in turn.

    The first returned point is always the undefended baseline
    (``defense="none"``, strength 0) so callers can normalise.
    """
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    if not defenses:
        raise ValidationError("need at least one defense")
    n = min(n_queries, len(pair.matched_query_ids()))
    query_ids = pair.sample_queries(n, rng)

    points: list[DefensePoint] = []
    base_link, base_cands = _attack(pair, config, query_ids, phi_r, rng)
    points.append(
        DefensePoint(
            defense="none",
            strength=0.0,
            linkability=base_link,
            mean_candidates=base_cands,
            spatial_distortion_m=0.0,
            temporal_distortion_s=0.0,
            n_queries=n,
        )
    )
    for defense in defenses:
        defended = ScenarioPair(
            p_db=defense.apply_db(pair.p_db, rng),
            q_db=pair.q_db,
            truth=pair.truth,
        )
        link, cands = _attack(defended, config, query_ids, phi_r, rng)
        points.append(
            DefensePoint(
                defense=type(defense).__name__,
                strength=defense.strength,
                linkability=link,
                mean_candidates=cands,
                spatial_distortion_m=defense.spatial_distortion_m(),
                temporal_distortion_s=defense.temporal_distortion_s(),
                n_queries=n,
            )
        )
    return points


def format_defense_sweep(points: Sequence[DefensePoint]) -> str:
    """Monospace rendering of a defense sweep."""
    lines = [
        f"{'defense':<22} {'strength':>9} {'linkability':>12} "
        f"{'cands/query':>12} {'spatial m':>10} {'temporal s':>11}"
    ]
    for point in points:
        lines.append(
            f"{point.defense:<22} {point.strength:>9g} "
            f"{point.linkability:>12.3f} {point.mean_candidates:>12.2f} "
            f"{point.spatial_distortion_m:>10.1f} "
            f"{point.temporal_distortion_s:>11.1f}"
        )
    return "\n".join(lines)
