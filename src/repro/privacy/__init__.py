"""Privacy defenses against FTL (the paper's second future-work item).

The paper frames FTL as both an opportunity and a privacy threat and
closes with *"we would like to study the privacy issues brought by
FTL"*.  This package provides that study's toolkit:

* :mod:`repro.privacy.defenses` — data-publisher defenses that degrade
  the mutual-segment signal: temporal cloaking (timestamp coarsening),
  spatial cloaking (grid generalisation), record suppression, and
  Gaussian location perturbation;
* :mod:`repro.privacy.evaluation` — a sweep harness measuring how each
  defense trades linkability (perceptiveness of an adaptive attacker
  who re-fits the FTL models on the defended data) against utility loss
  (spatial/temporal distortion of the published records).
"""

from repro.privacy.defenses import (
    GaussianPerturbation,
    RecordSuppression,
    SpatialCloaking,
    TemporalCloaking,
)
from repro.privacy.evaluation import DefensePoint, evaluate_defense_sweep

__all__ = [
    "DefensePoint",
    "GaussianPerturbation",
    "RecordSuppression",
    "SpatialCloaking",
    "TemporalCloaking",
    "evaluate_defense_sweep",
]
